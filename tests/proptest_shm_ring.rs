//! Property tests of the shared-memory SPSC ring transport.
//!
//! The shm backend moves protocol frames through fixed-slot rings with
//! free-running cursors: a datagram spans one or more contiguous slots, a
//! pad record covers the array seam, and the producer drops (UDP-style)
//! when the ring is full. These tests hammer exactly the states unit
//! tests pick by hand — wrap-around at arbitrary offsets, the full and
//! empty boundaries, pooled-lease recycling across the transport hop —
//! and check the transport is byte-transparent: an interleaved stream of
//! token and data frames received over shm parses identically to the
//! same bytes on the UDP wire (mirroring `proptest_pooled_wire`).

use accelring::core::{
    wire, BufferPool, DataMessage, ParticipantId, RingId, Round, Seq, Service, Token,
};
use accelring::transport::{DatagramSocket, ShmCounters, ShmSocket};
use bytes::Bytes;
use proptest::prelude::*;

/// One shm link with per-side counters, fresh per proptest case.
fn link() -> (
    ShmSocket,
    ShmSocket,
    std::sync::Arc<ShmCounters>,
    std::sync::Arc<ShmCounters>,
) {
    let tx_counters = ShmCounters::new();
    let rx_counters = ShmCounters::new();
    let tx = ShmSocket::bind_ephemeral(tx_counters.clone()).expect("bind tx");
    let rx = ShmSocket::bind_ephemeral(rx_counters.clone()).expect("bind rx");
    (tx, rx, tx_counters, rx_counters)
}

fn drain(rx: &ShmSocket) -> Vec<Vec<u8>> {
    let mut buf = vec![0u8; 70_000];
    let mut out = Vec::new();
    while let Ok((len, _)) = rx.recv_from(&mut buf) {
        out.push(buf[..len].to_vec());
    }
    out
}

fn service_strategy() -> impl Strategy<Value = Service> {
    prop_oneof![
        Just(Service::Reliable),
        Just(Service::Fifo),
        Just(Service::Causal),
        Just(Service::Agreed),
        Just(Service::Safe),
    ]
}

fn data_message_strategy() -> impl Strategy<Value = DataMessage> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
        any::<u64>(),
        service_strategy(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(
            |(rep, counter, seq, pid, round, service, post_token, retransmission, payload)| {
                DataMessage {
                    ring_id: RingId::new(ParticipantId::new(rep), counter),
                    seq: Seq::new(seq),
                    pid: ParticipantId::new(pid),
                    round: Round::new(round),
                    service,
                    post_token,
                    retransmission,
                    payload: Bytes::from(payload),
                }
            },
        )
}

fn token_strategy() -> impl Strategy<Value = Token> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u64..1_000_000,
        proptest::option::of(any::<u16>()),
        any::<u32>(),
        proptest::collection::vec(any::<u64>(), 0..64),
    )
        .prop_map(
            |(rep, counter, token_id, round, seq, aru_id, fcc, rtr)| Token {
                ring_id: RingId::new(ParticipantId::new(rep), counter),
                token_id,
                round: Round::new(round),
                seq: Seq::new(seq),
                aru: Seq::new(seq / 2),
                aru_id: aru_id.map(ParticipantId::new),
                fcc,
                rtr: rtr.into_iter().map(Seq::new).collect(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wrap-around: bursts of arbitrary-size datagrams (including
    /// multi-slot jumbos) alternate with drains so the cursors lap the
    /// 256-slot ring many times at payload-dependent offsets. Everything
    /// must come out byte-exact and in FIFO order, with nothing dropped.
    #[test]
    fn wraparound_roundtrips_arbitrary_sizes(
        bursts in proptest::collection::vec(
            proptest::collection::vec(1usize..6_000, 1..20),
            1..12,
        ),
    ) {
        let (tx, rx, tx_counters, rx_counters) = link();
        let dest = rx.local_addr();
        let mut sent_total = 0u64;
        for (b, burst) in bursts.iter().enumerate() {
            let mut expected: Vec<Vec<u8>> = Vec::new();
            for (i, &len) in burst.iter().enumerate() {
                let fill = (b * 31 + i) as u8;
                let msg = vec![fill; len];
                tx.send_to(&msg, dest).expect("send");
                expected.push(msg);
                sent_total += 1;
            }
            let got = drain(&rx);
            prop_assert_eq!(&got, &expected, "burst {} must roundtrip in order", b);
        }
        let txs = tx_counters.snapshot();
        let rxs = rx_counters.snapshot();
        prop_assert_eq!(txs.ring_full_drops, 0, "drained bursts never fill the ring");
        prop_assert_eq!(txs.datagrams_published, sent_total);
        prop_assert_eq!(rxs.datagrams_consumed, sent_total);
        prop_assert_eq!(txs.slots_published, rxs.slots_consumed, "no slot leaks");
    }

    /// Full/empty boundaries: an undrained flood hits the ring-full drop
    /// path at an arbitrary fill level. The receiver must get exactly the
    /// accepted prefix (publishes are FIFO, drops are tail drops), the
    /// counters must balance, and the ring must be fully reusable after
    /// the drain empties it.
    #[test]
    fn full_ring_drops_tail_and_recovers(
        len in 1usize..4_000,
        sends in 200usize..600,
    ) {
        let (tx, rx, tx_counters, rx_counters) = link();
        let dest = rx.local_addr();
        for i in 0..sends {
            let msg = vec![(i % 251) as u8; len];
            tx.send_to(&msg, dest).expect("send never errors on full");
        }
        let txs = tx_counters.snapshot();
        prop_assert_eq!(txs.datagrams_published + txs.ring_full_drops, sends as u64);
        // Pad records at the array seam only cost extra capacity, so a
        // flood whose raw slot demand exceeds the ring must overflow.
        let slots_per_msg = (8 + len).div_ceil(2048);
        if sends * slots_per_msg > 256 {
            prop_assert!(txs.ring_full_drops > 0,
                "an undrained flood of {} x {}B must overflow a 256-slot ring", sends, len);
        }

        let got = drain(&rx);
        prop_assert_eq!(got.len() as u64, txs.datagrams_published);
        for (i, msg) in got.iter().enumerate() {
            prop_assert_eq!(msg.len(), len);
            prop_assert!(msg.iter().all(|&b| b == (i % 251) as u8),
                "accepted prefix arrives unreordered and untorn");
        }
        let rxs = rx_counters.snapshot();
        prop_assert_eq!(rxs.datagrams_consumed, txs.datagrams_published);
        prop_assert_eq!(rxs.slots_consumed, txs.slots_published);

        // Empty again: the same ring carries a fresh burst unharmed.
        tx.send_to(b"after the flood", dest).expect("send");
        let got = drain(&rx);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].as_slice(), b"after the flood");
    }

    /// Lease recycle across the transport hop: frames are encoded into
    /// recycled pooled leases, cross the shm link, land in *other* pooled
    /// leases (written over stale bytes from earlier traffic), and parse
    /// in place — with payload slices of previous datagrams deliberately
    /// pinned across iterations. Every lease must come home.
    #[test]
    fn pooled_leases_recycle_across_the_link(
        msgs in proptest::collection::vec(data_message_strategy(), 1..24),
        stale in any::<u8>(),
    ) {
        let (tx, rx, _, _) = link();
        let dest = rx.local_addr();
        let send_pool = BufferPool::new(2048, 2);
        let recv_pool = BufferPool::new(2048, 2);
        let mut prev_payload: Option<Bytes> = None;
        for msg in &msgs {
            let mut lease = send_pool.acquire();
            lease.clear();
            wire::encode_data_into(msg, &mut lease);
            let encoded = lease.freeze();
            tx.send_to(&encoded, dest).expect("send");

            let mut lease = recv_pool.acquire();
            let space = lease.recv_space();
            space.fill(stale);
            let (len, from) = rx.recv_from(space).expect("one datagram pending");
            prop_assert_eq!(from, tx.local_addr(), "source address survives the ring");
            let mut datagram = lease.freeze_prefix(len);
            prop_assert_eq!(&datagram[..], &encoded[..], "transport is byte-transparent");
            let decoded = wire::decode_data(&mut datagram).unwrap();
            prop_assert_eq!(&decoded, msg);
            prev_payload = Some(decoded.payload.clone());
        }
        drop(prev_payload);
        prop_assert_eq!(send_pool.outstanding(), 0, "every send lease must come home");
        prop_assert_eq!(recv_pool.outstanding(), 0, "every recv lease must come home");
    }

    /// Interleaved token and data frames through one ring parse exactly
    /// as they would off the UDP wire: the shm hop neither reorders,
    /// truncates, nor perturbs a single byte of either frame type.
    #[test]
    fn interleaved_token_and_data_parse_as_on_the_wire(
        tokens in proptest::collection::vec(token_strategy(), 1..12),
        msgs in proptest::collection::vec(data_message_strategy(), 1..12),
    ) {
        let (tx, rx, _, _) = link();
        let dest = rx.local_addr();
        // Interleave: token, data, token, data, ... as on a live ring
        // where data bursts ride between token rotations.
        let mut wire_frames: Vec<(bool, Vec<u8>)> = Vec::new();
        let longest = tokens.len().max(msgs.len());
        for i in 0..longest {
            if let Some(token) = tokens.get(i) {
                wire_frames.push((true, wire::encode_token(token).to_vec()));
            }
            if let Some(msg) = msgs.get(i) {
                wire_frames.push((false, wire::encode_data(msg).to_vec()));
            }
        }
        for (_, frame) in &wire_frames {
            tx.send_to(frame, dest).expect("send");
        }
        let got = drain(&rx);
        prop_assert_eq!(got.len(), wire_frames.len());
        for (received, (is_token, sent)) in got.iter().zip(&wire_frames) {
            prop_assert_eq!(received, sent, "shm bytes identical to wire bytes");
            let mut bytes = Bytes::from(received.clone());
            if *is_token {
                wire::decode_token(&mut bytes).expect("token parses off shm");
            } else {
                wire::decode_data(&mut bytes).expect("data parses off shm");
            }
        }
    }
}
