//! Extended Virtual Synchrony properties of the membership algorithm under
//! randomized fault schedules (crashes, partitions, merges, token loss).

use accelring::core::{ParticipantId, ProtocolConfig, Service};
use accelring::membership::testing::Cluster;
use accelring::membership::MembershipConfig;
use bytes::Bytes;
use proptest::prelude::*;

const MS: u64 = 1_000_000;

fn cluster(n: u16) -> Cluster {
    Cluster::new(
        n,
        ProtocolConfig::accelerated(10, 5),
        MembershipConfig::for_simulation(),
    )
}

#[test]
fn sequential_crashes_always_reform() {
    let mut c = cluster(5);
    c.run_for(30 * MS);
    assert!(c.all_operational());
    for crashed in [4usize, 1] {
        c.crash(crashed);
        c.run_for(60 * MS);
        assert!(
            c.all_operational(),
            "survivors reform after crash of {crashed}"
        );
    }
    assert_eq!(c.ring_of(0).len(), 3);
    c.submit(0, Bytes::from_static(b"still alive"), Service::Safe);
    c.run_for(20 * MS);
    assert!(c.deliveries(3).iter().any(|d| d.payload == "still alive"));
}

#[test]
fn repeated_partition_heal_cycles_converge() {
    let mut c = cluster(4);
    c.run_for(30 * MS);
    for _ in 0..3 {
        c.partition(&[&[0, 1], &[2, 3]]);
        c.run_for(60 * MS);
        assert!(c.all_operational());
        c.heal();
        c.run_for(80 * MS);
        assert!(c.all_operational());
        assert_eq!(c.ring_of(0).len(), 4, "full ring after heal");
    }
    // Rings identical everywhere.
    for i in 1..4 {
        assert_eq!(c.ring_of(i), c.ring_of(0));
    }
}

#[test]
fn burst_token_loss_handled() {
    let mut c = cluster(3);
    c.run_for(30 * MS);
    // Lose several tokens in a row: either retransmission or a membership
    // change must restore an operational ring.
    c.drop_next_tokens(5);
    c.run_for(100 * MS);
    assert!(c.all_operational());
    c.submit(1, Bytes::from_static(b"recovered"), Service::Agreed);
    c.run_for(20 * MS);
    assert!(c.deliveries(0).iter().any(|d| d.payload == "recovered"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// EVS safety under arbitrary crash subsets: survivors agree on the
    /// final configuration, and the delivery sequences of any two survivors
    /// agree on their common prefix of each configuration's messages.
    #[test]
    fn survivors_agree_after_arbitrary_crashes(
        crash_mask in 0u8..15, // never crash everyone (node 3 survives mask<8... ensured below)
        traffic in 1usize..12,
    ) {
        let mut c = cluster(4);
        c.run_for(30 * MS);
        prop_assert!(c.all_operational());
        for i in 0..traffic {
            c.submit(i % 4, Bytes::from(format!("t{i}")), Service::Agreed);
        }
        c.run_for(5 * MS);
        let mut survivors = Vec::new();
        for i in 0..4usize {
            if crash_mask & (1 << i) != 0 && survivors.len() + (4 - i) > 1 {
                c.crash(i);
            } else {
                survivors.push(i);
            }
        }
        c.run_for(120 * MS);
        prop_assert!(c.all_operational(), "survivors {survivors:?} operational");
        let reference_ring = c.ring_of(survivors[0]);
        for &s in &survivors {
            prop_assert_eq!(c.ring_of(s), reference_ring.clone(), "ring at {}", s);
            prop_assert!(reference_ring.contains(&ParticipantId::new(s as u16)));
        }
        // Delivery agreement on the common prefix.
        let d0: Vec<Bytes> = c.deliveries(survivors[0]).iter().map(|d| d.payload.clone()).collect();
        for &s in &survivors[1..] {
            let ds: Vec<Bytes> = c.deliveries(s).iter().map(|d| d.payload.clone()).collect();
            let common = d0.len().min(ds.len());
            prop_assert_eq!(&ds[..common], &d0[..common], "prefix at {}", s);
        }
    }

    /// Configuration changes are properly bracketed: a transitional
    /// configuration's members are always a subset of the closing regular
    /// configuration, and regular configurations always contain the
    /// delivering node.
    #[test]
    fn config_changes_are_well_formed(
        split in 1usize..5,
        traffic in 0usize..8,
    ) {
        let mut c = cluster(6);
        c.run_for(30 * MS);
        for i in 0..traffic {
            c.submit(i % 6, Bytes::from(format!("x{i}")), Service::Safe);
        }
        c.run_for(3 * MS);
        let left: Vec<usize> = (0..split.min(5)).collect();
        let right: Vec<usize> = (split.min(5)..6).collect();
        c.partition(&[&left, &right]);
        c.run_for(80 * MS);
        c.heal();
        c.run_for(100 * MS);
        prop_assert!(c.all_operational());

        for node in 0..6usize {
            let me = ParticipantId::new(node as u16);
            let configs = c.configs(node);
            prop_assert!(!configs.is_empty());
            let mut last_regular_members: Option<Vec<ParticipantId>> = None;
            for cc in configs {
                if cc.transitional {
                    if let Some(reg) = &last_regular_members {
                        prop_assert!(
                            cc.members.iter().all(|m| reg.contains(m)),
                            "transitional members subset of preceding regular at {node}"
                        );
                    }
                    prop_assert!(cc.members.contains(&me));
                } else {
                    prop_assert!(cc.members.contains(&me), "regular config contains deliverer");
                    last_regular_members = Some(cc.members.clone());
                }
            }
            // Final regular config covers everyone after the heal.
            let last = configs.iter().rev().find(|cc| !cc.transitional).unwrap();
            prop_assert_eq!(last.members.len(), 6, "node {} final config", node);
        }
    }
}
