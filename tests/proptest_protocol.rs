//! Property-based tests of the core protocol invariants, under arbitrary
//! workloads and loss patterns.

use accelring::core::testing::{LossRule, TestNet};
use accelring::core::{
    wire, DataMessage, ParticipantId, ProtocolConfig, RingId, Round, Seq, Service, Token,
};
use bytes::Bytes;
use proptest::prelude::*;

fn service_strategy() -> impl Strategy<Value = Service> {
    prop_oneof![
        Just(Service::Reliable),
        Just(Service::Fifo),
        Just(Service::Causal),
        Just(Service::Agreed),
        Just(Service::Safe),
    ]
}

fn data_message_strategy() -> impl Strategy<Value = DataMessage> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
        any::<u64>(),
        service_strategy(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(
            |(rep, counter, seq, pid, round, service, post_token, retransmission, payload)| {
                DataMessage {
                    ring_id: RingId::new(ParticipantId::new(rep), counter),
                    seq: Seq::new(seq),
                    pid: ParticipantId::new(pid),
                    round: Round::new(round),
                    service,
                    post_token,
                    retransmission,
                    payload: Bytes::from(payload),
                }
            },
        )
}

fn token_strategy() -> impl Strategy<Value = Token> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u64..1_000_000,
        proptest::option::of(any::<u16>()),
        any::<u32>(),
        proptest::collection::vec(any::<u64>(), 0..64),
    )
        .prop_map(
            |(rep, counter, token_id, round, seq, aru_id, fcc, rtr)| Token {
                ring_id: RingId::new(ParticipantId::new(rep), counter),
                token_id,
                round: Round::new(round),
                seq: Seq::new(seq),
                aru: Seq::new(seq / 2),
                aru_id: aru_id.map(ParticipantId::new),
                fcc,
                rtr: rtr.into_iter().map(Seq::new).collect(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_data_roundtrip(msg in data_message_strategy()) {
        let mut encoded = wire::encode_data(&msg);
        prop_assert_eq!(encoded.len(), msg.wire_len());
        let decoded = wire::decode_data(&mut encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn codec_token_roundtrip(token in token_strategy()) {
        let mut encoded = wire::encode_token(&token);
        prop_assert_eq!(encoded.len(), token.wire_len());
        let decoded = wire::decode_token(&mut encoded).unwrap();
        prop_assert_eq!(decoded, token);
    }

    #[test]
    fn codec_rejects_arbitrary_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Random bytes must never decode (magic check) and never panic.
        let mut buf = Bytes::from(bytes);
        if buf.len() >= 4 && &buf[..4] == wire::MAGIC.to_le_bytes().as_slice() {
            // Even with the right magic, decoding must not panic.
            let _ = wire::decode_data(&mut buf.clone());
            let _ = wire::decode_token(&mut buf);
        } else {
            prop_assert!(wire::decode_data(&mut buf).is_err());
        }
    }
}

/// A randomized workload: who submits how many messages at which service.
fn workload_strategy() -> impl Strategy<Value = Vec<(usize, Service)>> {
    proptest::collection::vec((0usize..4, service_strategy()), 1..60)
}

/// Random single-shot loss rules over the first transmissions.
fn loss_strategy() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..4, 1u64..40), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental invariant: whatever the workload, loss pattern, and
    /// protocol variant, every participant delivers the identical sequence,
    /// FIFO per sender, and nothing is lost or duplicated.
    #[test]
    fn total_order_holds_under_arbitrary_loss(
        workload in workload_strategy(),
        losses in loss_strategy(),
        accelerated in any::<bool>(),
    ) {
        let cfg = if accelerated {
            ProtocolConfig::accelerated(8, 5)
        } else {
            ProtocolConfig::original(8)
        };
        let mut net = TestNet::new(4, cfg);
        for (receiver, seq) in losses {
            net.add_loss(LossRule::drop_seq_once(receiver, seq));
        }
        let mut per_sender_counts = [0u64; 4];
        for (i, &(sender, service)) in workload.iter().enumerate() {
            per_sender_counts[sender] += 1;
            net.submit(sender, Bytes::from(format!("{sender}:{i}")), service);
        }
        // Enough rounds for every window and every retransmission.
        net.run_tokens(40 + 4 * workload.len() as u64);

        let orders = net.delivery_orders();
        prop_assert_eq!(orders[0].len(), workload.len(), "everything delivered");
        for i in 1..4 {
            prop_assert_eq!(&orders[i], &orders[0], "node {} order", i);
        }
        // FIFO per sender: payload indices from one sender appear in
        // submission order.
        for sender in 0..4u16 {
            let indices: Vec<usize> = orders[0]
                .iter()
                .filter(|d| d.sender == ParticipantId::new(sender))
                .map(|d| {
                    std::str::from_utf8(&d.payload)
                        .unwrap()
                        .split(':')
                        .nth(1)
                        .unwrap()
                        .parse()
                        .unwrap()
                })
                .collect();
            prop_assert!(indices.windows(2).all(|w| w[0] < w[1]), "sender {} fifo", sender);
        }
        // No duplicates.
        let mut seqs: Vec<u64> = orders[0].iter().map(|d| d.seq.as_u64()).collect();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), orders[0].len());
    }

    /// Safe delivery implies stability: by the time any participant
    /// delivers a Safe message, every participant has received it.
    #[test]
    fn safe_delivery_implies_all_received(
        n_messages in 1usize..20,
        losses in loss_strategy(),
    ) {
        let mut net = TestNet::new(4, ProtocolConfig::accelerated(8, 5));
        for (receiver, seq) in losses {
            net.add_loss(LossRule::drop_seq_once(receiver, seq));
        }
        for i in 0..n_messages {
            net.submit(i % 4, Bytes::from(format!("m{i}")), Service::Safe);
        }
        net.run_tokens(60 + 4 * n_messages as u64);
        let orders = net.delivery_orders();
        // All delivered everywhere and identically (stability is then
        // witnessed by the fact that nothing was skipped anywhere).
        for i in 0..4 {
            prop_assert_eq!(orders[i].len(), n_messages, "node {}", i);
            prop_assert_eq!(&orders[i], &orders[0]);
        }
        // And the aru machinery discarded them everywhere.
        for s in net.stats() {
            prop_assert!(s.discarded > 0 || n_messages == 0);
        }
    }

    /// Flow control: the global window is never exceeded in any round.
    #[test]
    fn global_window_respected(burst in 1u32..120) {
        let cfg = ProtocolConfig::builder()
            .personal_window(10)
            .accelerated_window(6)
            .global_window(24)
            .build()
            .unwrap();
        let mut net = TestNet::new(4, cfg);
        for i in 0..burst {
            net.submit((i % 4) as usize, Bytes::from(vec![0u8; 16]), Service::Agreed);
        }
        // Run exactly one rotation and count what was sent.
        net.run_tokens(4);
        let sent: u64 = net.stats().iter().map(|s| s.messages_sent).sum();
        // One rotation can exceed the global window by at most one
        // participant's personal window (the fcc reflects the *previous*
        // round), exactly like Totem.
        prop_assert!(sent <= 24 + 10, "sent {} in one rotation", sent);
    }
}
