//! Cross-crate integration tests of the headline protocol claims, driven
//! through the performance simulator (core + sim crates together).

use accelring::core::{ProtocolConfig, Service};
use accelring::sim::{
    Curve, ExperimentSpec, ImplProfile, LossSpec, NetworkProfile, SimDuration, Workload,
};

fn quick(mut spec: ExperimentSpec) -> ExperimentSpec {
    spec.warmup = SimDuration::from_millis(20);
    spec.measure = SimDuration::from_millis(60);
    spec
}

#[test]
fn accelerated_improves_both_throughput_and_latency_on_1gb() {
    // The paper's central claim (Section IV-A1): at the original protocol's
    // knee, the accelerated protocol simultaneously has higher max
    // throughput and lower latency.
    let mut orig = quick(ExperimentSpec::baseline());
    orig.impl_profile = ImplProfile::spread();
    orig.protocol = ProtocolConfig::original(20);
    let mut accel = orig.clone();
    accel.protocol = ProtocolConfig::accelerated(20, 15);

    let orig_700 = orig.clone().at_rate_mbps(700).run();
    let accel_700 = accel.clone().at_rate_mbps(700).run();
    assert!(
        accel_700.latency.mean < orig_700.latency.mean,
        "accelerated latency {} must beat original {} at 700 Mbps",
        accel_700.latency.mean,
        orig_700.latency.mean
    );

    orig.workload = Workload::Saturating;
    accel.workload = Workload::Saturating;
    let orig_max = orig.run().goodput_mbps();
    let accel_max = accel.run().goodput_mbps();
    assert!(
        accel_max > orig_max * 1.05,
        "accelerated max {accel_max:.0} must exceed original max {orig_max:.0}"
    );
    assert!(
        accel_max > 880.0,
        "accelerated protocol must approach 1Gb line rate, got {accel_max:.0}"
    );
}

#[test]
fn implementation_overhead_ordering_on_10gb() {
    // Section IV-A2: on 10 Gb processing dominates, so library > daemon >
    // Spread in maximum throughput.
    let mut maxes = Vec::new();
    for profile in ImplProfile::all() {
        let mut spec = quick(ExperimentSpec::baseline());
        spec.network = NetworkProfile::ten_gigabit();
        spec.impl_profile = profile;
        spec.protocol = ProtocolConfig::accelerated(30, 30);
        spec.workload = Workload::Saturating;
        maxes.push((profile.name, spec.run().goodput_mbps()));
    }
    assert!(
        maxes[0].1 > maxes[1].1 && maxes[1].1 > maxes[2].1,
        "expected library > daemon > spread, got {maxes:?}"
    );
    // Rough magnitudes from the paper: 4.6 / 3.3 / 2.3 Gbps.
    assert!(maxes[0].1 > 3800.0, "library {maxes:?}");
    assert!(
        maxes[2].1 > 1800.0 && maxes[2].1 < 3000.0,
        "spread {maxes:?}"
    );
}

#[test]
fn safe_crossover_at_low_throughput_on_10gb() {
    // Figure 8: for Safe delivery at very low 10 Gb throughput the original
    // protocol has *lower* latency; by ~10% of capacity the accelerated
    // protocol wins again.
    let mut orig = quick(ExperimentSpec::baseline());
    orig.network = NetworkProfile::ten_gigabit();
    orig.impl_profile = ImplProfile::spread();
    orig.service = Service::Safe;
    orig.protocol = ProtocolConfig::original(20);
    let mut accel = orig.clone();
    accel.protocol = ProtocolConfig::accelerated(20, 15);

    let orig_low = orig.clone().at_rate_mbps(100).run().latency.mean;
    let accel_low = accel.clone().at_rate_mbps(100).run().latency.mean;
    assert!(
        orig_low < accel_low,
        "original {orig_low} must beat accelerated {accel_low} at 100 Mbps Safe"
    );

    let orig_high = orig.at_rate_mbps(1000).run().latency.mean;
    let accel_high = accel.at_rate_mbps(1000).run().latency.mean;
    assert!(
        accel_high < orig_high,
        "accelerated {accel_high} must beat original {orig_high} at 1000 Mbps Safe"
    );
}

#[test]
fn loss_recovery_sustains_goodput() {
    // Section IV-A4: with 15% per-daemon loss the retransmission machinery
    // still delivers the full offered rate.
    let mut spec = quick(ExperimentSpec::baseline());
    spec.network = NetworkProfile::ten_gigabit();
    spec.impl_profile = ImplProfile::daemon();
    spec.protocol = ProtocolConfig::accelerated(20, 15);
    spec.loss = LossSpec::bernoulli(0.15);
    let result = spec.at_rate_mbps(480).run();
    let goodput = result.goodput_mbps();
    assert!(
        (goodput - 480.0).abs() / 480.0 < 0.10,
        "goodput {goodput:.0} must stay near 480 Mbps under 15% loss"
    );
    assert!(result.retransmissions > 0);
    // Independent per-daemon loss multiplies the system retransmission rate
    // well above the per-daemon rate (the paper reports 5.5-6.8x).
    assert!(
        result.retransmission_rate > 0.15,
        "system retransmission rate {} should exceed per-daemon loss",
        result.retransmission_rate
    );
}

#[test]
fn larger_datagrams_raise_max_throughput_on_10gb() {
    // Section IV-A3: amortizing processing over 8850-byte payloads raises
    // the maximum throughput substantially.
    let mut spec = quick(ExperimentSpec::baseline());
    spec.network = NetworkProfile::ten_gigabit();
    spec.impl_profile = ImplProfile::daemon();
    spec.protocol = ProtocolConfig::accelerated(30, 30);
    spec.workload = Workload::Saturating;
    let small = spec.clone().run().goodput_mbps();
    spec.payload_len = 8850;
    let big = spec.run().goodput_mbps();
    assert!(
        big > small * 1.4,
        "8850B payloads ({big:.0}) must beat 1350B ({small:.0}) by a wide margin"
    );
}

#[test]
fn distance_of_lossy_pair_increases_latency() {
    // Figure 13: losing from the daemon 7 positions back costs nearly a
    // full extra token round compared with losing from the predecessor.
    let latency_at = |distance: usize| {
        let mut spec = quick(ExperimentSpec::baseline());
        spec.network = NetworkProfile::ten_gigabit();
        spec.impl_profile = ImplProfile::daemon();
        spec.protocol = ProtocolConfig::accelerated(20, 15);
        spec.loss = LossSpec::FromDistance {
            distance,
            rate: 0.2,
        };
        spec.at_rate_mbps(480).run().latency.mean
    };
    let near = latency_at(1);
    let far = latency_at(7);
    assert!(
        far > near,
        "distance 7 latency {far} must exceed distance 1 latency {near}"
    );
}

#[test]
fn sweep_helper_produces_consistent_series() {
    let spec = quick(ExperimentSpec::baseline());
    let curve = Curve::sweep_rates("t", &spec, &[100, 300]);
    assert_eq!(curve.points.len(), 2);
    for p in &curve.points {
        assert!(p.result.goodput_mbps() > p.x * 0.9);
        assert!(p.result.latency.count > 0);
    }
}
