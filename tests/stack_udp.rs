//! Full-stack integration: group clients over real UDP daemons, including
//! a daemon failure with client-visible configuration change and group
//! pruning.

use std::time::{Duration, Instant};

use accelring::core::{ProtocolConfig, Service};
use accelring::daemon::{ClientEvent, GroupDaemon};
use accelring::membership::MembershipConfig;
use accelring::transport::spawn_local_ring;
use bytes::Bytes;

fn fast_membership() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,
        token_retransmit_timeout: 80_000_000,
        join_interval: 30_000_000,
        consensus_timeout: 250_000_000,
        commit_timeout: 250_000_000,
        recovery_timeout: 1_000_000_000,
        presence_interval: 100_000_000,
        gather_settle: 60_000_000,
    }
}

fn wait_for_view(
    client: &accelring::daemon::GroupClient,
    group: &str,
    members: usize,
    deadline: Duration,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(ClientEvent::View {
            group: g,
            members: m,
        }) = client.events().recv_timeout(Duration::from_millis(200))
        {
            if g == group && m.len() == members {
                return true;
            }
        }
    }
    false
}

#[test]
fn group_messaging_and_daemon_failure() {
    let nodes =
        spawn_local_ring(3, ProtocolConfig::accelerated(20, 15), fast_membership()).unwrap();
    let daemons: Vec<GroupDaemon> = nodes.into_iter().map(GroupDaemon::start).collect();
    let clients: Vec<_> = daemons
        .iter()
        .enumerate()
        .map(|(i, d)| d.connect(&format!("c{i}")).unwrap())
        .collect();

    for c in &clients {
        c.join("work").unwrap();
    }
    assert!(
        wait_for_view(&clients[2], "work", 3, Duration::from_secs(15)),
        "all three clients must appear in the view"
    );

    // Ordered traffic flows to all members.
    clients[0]
        .multicast(&["work"], Bytes::from_static(b"task-1"), Service::Agreed)
        .unwrap();
    let start = Instant::now();
    let mut got = false;
    while start.elapsed() < Duration::from_secs(10) && !got {
        if let Ok(ClientEvent::Message { payload, .. }) =
            clients[1].events().recv_timeout(Duration::from_millis(200))
        {
            got = &payload[..] == b"task-1";
        }
    }
    assert!(got, "client 1 receives the task");

    // Kill daemon 2 (drop shuts down its thread and sockets). The ring
    // reforms; surviving clients see a Config event and a pruned view.
    let mut daemons = daemons;
    let dead = daemons.pop().unwrap();
    dead.shutdown();

    let start = Instant::now();
    let mut saw_shrunk_config = false;
    let mut saw_pruned_view = false;
    while start.elapsed() < Duration::from_secs(20) && !(saw_shrunk_config && saw_pruned_view) {
        match clients[0].events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::Config {
                daemons,
                transitional,
            }) if !transitional && daemons.len() == 2 => {
                saw_shrunk_config = true;
            }
            Ok(ClientEvent::View { group, members }) if group == "work" && members.len() == 2 => {
                saw_pruned_view = true;
            }
            _ => {}
        }
    }
    assert!(
        saw_shrunk_config,
        "surviving client sees the 2-daemon config"
    );
    assert!(
        saw_pruned_view,
        "dead daemon's client pruned from the group"
    );

    // The shrunken ring still orders traffic.
    clients[1]
        .multicast(&["work"], Bytes::from_static(b"task-2"), Service::Safe)
        .unwrap();
    let start = Instant::now();
    let mut got = false;
    while start.elapsed() < Duration::from_secs(10) && !got {
        if let Ok(ClientEvent::Message { payload, .. }) =
            clients[0].events().recv_timeout(Duration::from_millis(200))
        {
            got = &payload[..] == b"task-2";
        }
    }
    assert!(got, "post-failure traffic still delivered");
}
