//! Property-based tests of the membership control-message codec.

use std::collections::BTreeSet;

use accelring::core::{wire, DataMessage, ParticipantId, RingId, Round, Seq, Service};
use accelring::membership::{
    decode_control, encode_control, CommitToken, ControlMessage, MemberInfo,
};
use bytes::Bytes;
use proptest::prelude::*;

fn pid_strategy() -> impl Strategy<Value = ParticipantId> {
    any::<u16>().prop_map(ParticipantId::new)
}

fn pid_set_strategy() -> impl Strategy<Value = BTreeSet<ParticipantId>> {
    proptest::collection::btree_set(pid_strategy(), 0..16)
}

fn ring_id_strategy() -> impl Strategy<Value = RingId> {
    (pid_strategy(), any::<u64>()).prop_map(|(rep, c)| RingId::new(rep, c))
}

fn member_info_strategy() -> impl Strategy<Value = MemberInfo> {
    (
        pid_strategy(),
        ring_id_strategy(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(pid, old_ring, aru, held)| MemberInfo {
            pid,
            old_ring,
            local_aru: Seq::new(aru.min(held)),
            highest_held: Seq::new(held),
        })
}

fn data_message_strategy() -> impl Strategy<Value = DataMessage> {
    (
        ring_id_strategy(),
        any::<u64>(),
        pid_strategy(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..256),
        any::<bool>(),
    )
        .prop_map(
            |(ring_id, seq, pid, round, payload, post_token)| DataMessage {
                ring_id,
                seq: Seq::new(seq),
                pid,
                round: Round::new(round),
                service: Service::Safe,
                post_token,
                retransmission: false,
                payload: Bytes::from(payload),
            },
        )
}

fn control_strategy() -> impl Strategy<Value = ControlMessage> {
    prop_oneof![
        (
            pid_strategy(),
            pid_set_strategy(),
            pid_set_strategy(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(sender, proc_set, fail_set, ring_counter, epoch)| {
                ControlMessage::Join {
                    sender,
                    proc_set,
                    fail_set,
                    ring_counter,
                    epoch,
                }
            }),
        (
            ring_id_strategy(),
            proptest::collection::btree_set(pid_strategy(), 1..12),
            proptest::collection::vec(member_info_strategy(), 0..12),
            any::<u32>()
        )
            .prop_map(|(new_ring, members, infos, hop)| {
                ControlMessage::Commit(CommitToken {
                    new_ring,
                    members: members.into_iter().collect(),
                    infos,
                    hop,
                })
            }),
        (pid_strategy(), ring_id_strategy(), data_message_strategy()).prop_map(
            |(sender, old_ring, msg)| ControlMessage::Recovery {
                sender,
                old_ring,
                msg,
            }
        ),
        (
            pid_strategy(),
            ring_id_strategy(),
            ring_id_strategy(),
            proptest::collection::vec(any::<u64>(), 0..24)
        )
            .prop_map(|(sender, new_ring, old_ring, holds)| {
                ControlMessage::RecoveryDone {
                    sender,
                    new_ring,
                    old_ring,
                    holds: holds.into_iter().map(Seq::new).collect(),
                }
            }),
        (pid_strategy(), ring_id_strategy())
            .prop_map(|(sender, ring_id)| { ControlMessage::Presence { sender, ring_id } }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn control_message_roundtrip(msg in control_strategy()) {
        let mut framed = encode_control(&msg);
        prop_assert_eq!(wire::decode_kind(&mut framed).unwrap(), wire::Kind::Opaque);
        let decoded = decode_control(&mut framed).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_control_rejected(msg in control_strategy(), cut_frac in 0.0f64..1.0) {
        let mut framed = encode_control(&msg);
        let _ = wire::decode_kind(&mut framed).unwrap();
        let cut = ((framed.len() as f64) * cut_frac) as usize;
        if cut < framed.len() {
            let mut b = framed.slice(..cut);
            prop_assert!(decode_control(&mut b).is_err());
        }
    }

    #[test]
    fn garbage_control_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut b = Bytes::from(bytes);
        let _ = decode_control(&mut b); // any result is fine, panics are not
    }
}
