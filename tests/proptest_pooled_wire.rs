//! Property tests of the wire codec over *pooled* buffers.
//!
//! The batched datapath encodes into recycled [`BufLease`]s and parses
//! received datagrams in place from pooled buffers whose memory has been
//! written by arbitrary earlier traffic. These tests hammer exactly that
//! reuse: a small pool cycles the same few buffers through interleaved
//! encode and receive paths, with frozen slices deliberately held alive
//! across iterations, and every roundtrip must still be byte-exact.

use accelring::core::{
    wire, BufferPool, DataMessage, ParticipantId, RingId, Round, Seq, Service, Token,
};
use bytes::Bytes;
use proptest::prelude::*;

fn service_strategy() -> impl Strategy<Value = Service> {
    prop_oneof![
        Just(Service::Reliable),
        Just(Service::Fifo),
        Just(Service::Causal),
        Just(Service::Agreed),
        Just(Service::Safe),
    ]
}

fn data_message_strategy() -> impl Strategy<Value = DataMessage> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
        any::<u64>(),
        service_strategy(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(
            |(rep, counter, seq, pid, round, service, post_token, retransmission, payload)| {
                DataMessage {
                    ring_id: RingId::new(ParticipantId::new(rep), counter),
                    seq: Seq::new(seq),
                    pid: ParticipantId::new(pid),
                    round: Round::new(round),
                    service,
                    post_token,
                    retransmission,
                    payload: Bytes::from(payload),
                }
            },
        )
}

fn token_strategy() -> impl Strategy<Value = Token> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u64..1_000_000,
        proptest::option::of(any::<u16>()),
        any::<u32>(),
        proptest::collection::vec(any::<u64>(), 0..64),
    )
        .prop_map(
            |(rep, counter, token_id, round, seq, aru_id, fcc, rtr)| Token {
                ring_id: RingId::new(ParticipantId::new(rep), counter),
                token_id,
                round: Round::new(round),
                seq: Seq::new(seq),
                aru: Seq::new(seq / 2),
                aru_id: aru_id.map(ParticipantId::new),
                fcc,
                rtr: rtr.into_iter().map(Seq::new).collect(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode path: each message goes through a freshly acquired (and
    /// therefore dirty, recycled) lease; a sliding window of frozen
    /// encodings stays alive so the pool is forced to mix hot reuse with
    /// new allocations mid-sequence.
    #[test]
    fn pooled_encode_roundtrips(msgs in proptest::collection::vec(data_message_strategy(), 1..24)) {
        let pool = BufferPool::new(2048, 2);
        let mut pinned: Vec<Bytes> = Vec::new();
        for msg in &msgs {
            let mut lease = pool.acquire();
            lease.clear();
            wire::encode_data_into(msg, &mut lease);
            let encoded = lease.freeze();
            prop_assert_eq!(encoded.len(), msg.wire_len());
            let decoded = wire::decode_data(&mut encoded.clone()).unwrap();
            prop_assert_eq!(&decoded, msg);
            pinned.push(encoded);
            if pinned.len() > 3 {
                pinned.remove(0); // release the oldest, recycling its buffer
            }
        }
        drop(pinned);
        prop_assert_eq!(pool.outstanding(), 0, "every lease must come home");
    }

    /// Receive path: the encoded datagram lands somewhere inside a pooled
    /// buffer's recv window (simulating recvmmsg writing at offset 0 into
    /// a buffer full of stale bytes), is frozen to its prefix, and parsed
    /// in place — while the payload slice of the *previous* datagram is
    /// still pinning its own buffer.
    #[test]
    fn pooled_recv_parse_in_place_roundtrips(
        msgs in proptest::collection::vec(data_message_strategy(), 1..24),
        stale in any::<u8>(),
    ) {
        let pool = BufferPool::new(2048, 2);
        let mut prev_payload: Option<Bytes> = None;
        for msg in &msgs {
            let wire_bytes = wire::encode_data(msg);
            let mut lease = pool.acquire();
            let space = lease.recv_space();
            // Stale garbage beyond the datagram must never affect the parse.
            space.fill(stale);
            space[..wire_bytes.len()].copy_from_slice(&wire_bytes);
            let mut datagram = lease.freeze_prefix(wire_bytes.len());
            let decoded = wire::decode_data(&mut datagram).unwrap();
            prop_assert_eq!(&decoded, msg);
            // Hold the zero-copy payload slice across the next iteration.
            prev_payload = Some(decoded.payload.clone());
        }
        drop(prev_payload);
        prop_assert_eq!(pool.outstanding(), 0, "every lease must come home");
    }

    /// Tokens ride the same pooled encode path as data; interleave them
    /// through one shared pool to catch cross-type offset reuse bugs.
    #[test]
    fn pooled_token_and_data_interleave(
        tokens in proptest::collection::vec(token_strategy(), 1..12),
        msg in data_message_strategy(),
    ) {
        let pool = BufferPool::new(2048, 1);
        for token in &tokens {
            let mut lease = pool.acquire();
            lease.clear();
            wire::encode_token_into(token, &mut lease);
            let encoded = lease.freeze();
            prop_assert_eq!(encoded.len(), token.wire_len());
            let decoded = wire::decode_token(&mut encoded.clone()).unwrap();
            prop_assert_eq!(&decoded, token);

            let mut lease = pool.acquire();
            lease.clear();
            wire::encode_data_into(&msg, &mut lease);
            let decoded = wire::decode_data(&mut lease.freeze()).unwrap();
            prop_assert_eq!(&decoded, &msg);
        }
        prop_assert_eq!(pool.outstanding(), 0, "every lease must come home");
    }
}
