//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Benchmarks compile and run: each registered function is timed over a
//! small fixed number of iterations and a single mean per benchmark id is
//! printed. There is no warm-up calibration, outlier analysis, or HTML
//! report — swap in the real crate when a registry is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How many timed iterations the stub runs per benchmark.
const ITERS: u32 = 30;

/// How a batched input maps to iterations; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures; handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = ITERS;
    }

    fn report(&self, id: &str) {
        if self.iters > 0 {
            let per_iter = self.elapsed / self.iters;
            println!("bench {id:<40} {per_iter:>12?}/iter ({} iters)", self.iters);
        }
    }
}

/// The benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Compatibility no-op: the stub's iteration count is fixed.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Compatibility no-op: the stub's measurement time is fixed.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (ignored by the stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Declares the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export matching the real crate's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(8)).sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
