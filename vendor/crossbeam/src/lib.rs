//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: multi-producer multi-consumer
//! bounded and unbounded channels with the blocking, non-blocking, and
//! timeout receive forms the transport and daemon runtimes use, plus a
//! [`channel::Select`] readiness multiplexer over receivers. Built on a
//! `Mutex<VecDeque>` plus condvars — not lock-free like the real crate, but
//! semantically equivalent for these use sites.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// A latch a [`Select`] parks on; channels it observes trip it whenever
    /// receive-readiness may have changed (message pushed, or last sender
    /// gone).
    #[derive(Default)]
    struct SelectWaker {
        signaled: Mutex<bool>,
        cv: Condvar,
    }

    impl SelectWaker {
        fn wake(&self) {
            *self.signaled.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Wakers of selects currently parked on this channel.
        observers: Vec<Arc<SelectWaker>>,
    }

    impl<T> State<T> {
        fn notify_observers(&self) {
            for w in &self.observers {
                w.wake();
            }
        }
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item is pushed or all senders leave.
        recv_ready: Condvar,
        /// Signalled when an item is popped or all receivers leave.
        send_ready: Condvar,
        cap: Option<usize>,
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                observers: Vec::new(),
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// A zero capacity is treated as one (the real crate's rendezvous
    /// semantics are not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }
    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }
    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }
    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Sender::send_timeout`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum SendTimeoutError<T> {
        /// The channel was still at capacity when the timeout elapsed.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "Timeout(..)"),
                SendTimeoutError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }
    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "timed out sending on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }
    impl<T> std::error::Error for SendTimeoutError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }
    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on a channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }
    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                st.notify_observers();
                self.chan.recv_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.send_ready.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            st.notify_observers();
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Sends, blocking at most `timeout` while a bounded channel is
        /// full.
        ///
        /// # Errors
        ///
        /// [`SendTimeoutError::Timeout`] if still full at the deadline,
        /// [`SendTimeoutError::Disconnected`] if all receivers are gone.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                        let (guard, _res) = self
                            .chan
                            .send_ready
                            .wait_timeout(st, deadline - now)
                            .unwrap();
                        st = guard;
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            st.notify_observers();
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Sends without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] if at capacity, [`TrySendError::Disconnected`]
        /// if all receivers are gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            st.notify_observers();
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half; clonable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.recv_ready.wait(st).unwrap();
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .chan
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains whatever is currently queued (non-blocking iterator).
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Iterator over currently queued messages; see [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Type-erased view of a receiver a [`Select`] can park on.
    trait SelectTarget {
        fn attach(&self, waker: &Arc<SelectWaker>);
        fn detach(&self, waker: &Arc<SelectWaker>);
        /// A receive operation would not block: a message is queued, or
        /// the channel is disconnected (receive returns an error).
        fn ready(&self) -> bool;
    }

    impl<T> SelectTarget for Receiver<T> {
        fn attach(&self, waker: &Arc<SelectWaker>) {
            self.chan
                .state
                .lock()
                .unwrap()
                .observers
                .push(Arc::clone(waker));
        }

        fn detach(&self, waker: &Arc<SelectWaker>) {
            self.chan
                .state
                .lock()
                .unwrap()
                .observers
                .retain(|o| !Arc::ptr_eq(o, waker));
        }

        fn ready(&self) -> bool {
            let st = self.chan.state.lock().unwrap();
            !st.queue.is_empty() || st.senders == 0
        }
    }

    /// Error returned by [`Select::ready_timeout`] when no operation
    /// becomes ready before the deadline.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct ReadyTimeoutError;

    impl fmt::Display for ReadyTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "timed out waiting for a ready operation")
        }
    }
    impl std::error::Error for ReadyTimeoutError {}

    /// Readiness multiplexer over receive operations (the subset of the
    /// real crate's `Select` this workspace uses): register receivers with
    /// [`Select::recv`], then block in [`Select::ready`] /
    /// [`Select::ready_timeout`] until one of them would not block. The
    /// caller then completes the operation itself with `try_recv`.
    #[must_use]
    pub struct Select<'a> {
        targets: Vec<&'a dyn SelectTarget>,
    }

    impl fmt::Debug for Select<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Select {{ {} targets }}", self.targets.len())
        }
    }

    impl Default for Select<'_> {
        fn default() -> Self {
            Select::new()
        }
    }

    impl<'a> Select<'a> {
        /// Creates an empty selector.
        pub fn new() -> Select<'a> {
            Select {
                targets: Vec::new(),
            }
        }

        /// Registers a receive operation, returning its index.
        pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
            self.targets.push(rx);
            self.targets.len() - 1
        }

        /// Blocks until some registered operation is ready; returns its
        /// index. Readiness is a snapshot: complete the operation with the
        /// non-blocking form and handle `Empty` (another receiver may have
        /// won the race).
        pub fn ready(&mut self) -> usize {
            loop {
                if let Ok(i) = self.ready_timeout(Duration::from_secs(86_400)) {
                    return i;
                }
            }
        }

        /// Blocks up to `timeout` for a ready operation.
        ///
        /// # Errors
        ///
        /// [`ReadyTimeoutError`] if nothing became ready in time.
        pub fn ready_timeout(&mut self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
            let deadline = Instant::now() + timeout;
            // Register before scanning: any message pushed after the scan
            // trips the waker, any pushed before is seen by the scan.
            let waker = Arc::new(SelectWaker::default());
            for t in &self.targets {
                t.attach(&waker);
            }
            let result = loop {
                if let Some(i) = self.targets.iter().position(|t| t.ready()) {
                    break Ok(i);
                }
                let now = Instant::now();
                if now >= deadline {
                    break Err(ReadyTimeoutError);
                }
                let mut signaled = waker.signaled.lock().unwrap();
                if !*signaled {
                    let (guard, _res) = waker.cv.wait_timeout(signaled, deadline - now).unwrap();
                    signaled = guard;
                }
                *signaled = false;
            };
            for t in &self.targets {
                t.detach(&waker);
            }
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn select_wakes_on_send_from_another_thread() {
            let (tx_a, rx_a) = unbounded::<u8>();
            let (_tx_b, rx_b) = unbounded::<u8>();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx_a.send(7).unwrap();
            });
            let mut sel = Select::new();
            let ia = sel.recv(&rx_a);
            let _ib = sel.recv(&rx_b);
            let ready = sel.ready_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(ready, ia);
            assert_eq!(rx_a.try_recv(), Ok(7));
            t.join().unwrap();
        }

        #[test]
        fn select_reports_disconnection_as_ready() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            let mut sel = Select::new();
            sel.recv(&rx);
            assert!(sel.ready_timeout(Duration::from_millis(100)).is_ok());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn select_times_out_when_idle() {
            let (_tx, rx) = unbounded::<u8>();
            let mut sel = Select::new();
            sel.recv(&rx);
            assert_eq!(
                sel.ready_timeout(Duration::from_millis(10)),
                Err(ReadyTimeoutError)
            );
        }

        #[test]
        fn send_timeout_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.send_timeout(1, Duration::from_millis(5)).unwrap();
            assert_eq!(
                tx.send_timeout(2, Duration::from_millis(5)),
                Err(SendTimeoutError::Timeout(2))
            );
            drop(rx);
            assert_eq!(
                tx.send_timeout(3, Duration::from_millis(5)),
                Err(SendTimeoutError::Disconnected(3))
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(5));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
