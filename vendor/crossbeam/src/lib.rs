//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: multi-producer multi-consumer
//! bounded and unbounded channels with the blocking, non-blocking, and
//! timeout receive forms the transport and daemon runtimes use. Built on a
//! `Mutex<VecDeque>` plus condvars — not lock-free like the real crate, but
//! semantically equivalent for these use sites.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item is pushed or all senders leave.
        recv_ready: Condvar,
        /// Signalled when an item is popped or all receivers leave.
        send_ready: Condvar,
        cap: Option<usize>,
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// A zero capacity is treated as one (the real crate's rendezvous
    /// semantics are not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }
    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }
    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }
    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }
    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on a channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }
    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.recv_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.send_ready.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Sends without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] if at capacity, [`TrySendError::Disconnected`]
        /// if all receivers are gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half; clonable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.recv_ready.wait(st).unwrap();
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .chan
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains whatever is currently queued (non-blocking iterator).
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Iterator over currently queued messages; see [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(5));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
