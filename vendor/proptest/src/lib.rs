//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`,
//! `any::<T>()`, `Just`, ranges as strategies, tuple composition,
//! `prop_map`, and the `collection`/`option` modules. Cases are generated
//! from a deterministic per-case RNG, so failures are reproducible by
//! rerunning the test binary. Shrinking is not implemented: a failing case
//! reports its inputs un-minimized (acceptable for an offline stub — the
//! full crate is a drop-in replacement when a registry is available).

#![forbid(unsafe_code)]

/// Test-runner configuration and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Deterministic RNG for case number `case` of a property.
        pub fn for_case(case: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(
                0x5EED_CAFE_F00D_D00D ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion with this message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking; `generate`
    /// directly produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.0.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Boxes a strategy for use in [`Union::new`] (used by `prop_oneof!`).
    pub fn boxify<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.random()
                }
            }
        )*};
    }
    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.0.random()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.0.random_range(self.min..self.max)
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below `want`; retry a bounded number
            // of times to respect the minimum size like the real crate.
            let mut attempts = 0;
            while set.len() < want && attempts < want * 16 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates ordered sets of `element` with a size in `size` (best
    /// effort if the element domain is too small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`; see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.random_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs; supports the
/// `#![proptest_config(expr)]` header and `name(arg in strategy, ..)` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!` but failing the current proptest case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` but failing the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Like `assert_ne!` but failing the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxify($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(any::<u8>(), 2..9),
            o in crate::option::of(1u32..5),
            pick in prop_oneof![Just(1u8), Just(2u8), (3u8..9).prop_map(|x| x)],
        ) {
            prop_assert!((2..9).contains(&v.len()));
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!((1..9).contains(&pick));
        }

        #[test]
        fn sets_hit_min_size(s in crate::collection::btree_set(any::<u16>(), 4..8)) {
            prop_assert!(s.len() >= 4, "set size {}", s.len());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u64>(), 0..16);
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x is only {}", x);
            }
        }
        always_fails();
    }
}
