//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: cheaply
//! clonable shared byte buffers ([`Bytes`]), an append-only builder
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the wire codec needs. Semantics (including
//! panics on out-of-range reads) match the real crate for this subset.
//!
//! One deliberate extension beyond the real crate's API:
//! [`Bytes::with_recycler`] attaches a [`Recycle`] hook invoked with the
//! backing `Vec<u8>` when the last reference drops, which is what lets
//! `accelring-core`'s buffer pool reclaim datagram buffers the moment the
//! protocol discards the last message slice pointing into them.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A sink for the backing storage of a dropped [`Bytes`]: called exactly
/// once, with the full `Vec` (capacity intact), when the last reference
/// to a buffer created by [`Bytes::with_recycler`] goes away.
pub trait Recycle: Send + Sync {
    /// Takes back the backing store of a fully dropped buffer.
    fn recycle(&self, buf: Vec<u8>);
}

/// The shared backing store of a [`Bytes`]: the storage plus an optional
/// recycling hook that fires when the last reference drops.
#[derive(Default)]
struct Shared {
    data: Vec<u8>,
    recycler: Option<Arc<dyn Recycle>>,
}

impl Drop for Shared {
    fn drop(&mut self) {
        if let Some(r) = self.recycler.take() {
            r.recycle(std::mem::take(&mut self.data));
        }
    }
}

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Shared>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps `v` with a recycling hook: when the last clone/slice of the
    /// returned buffer drops, `recycler.recycle` receives the backing
    /// `Vec` (with its capacity intact) for reuse.
    pub fn with_recycler(v: Vec<u8>, recycler: Arc<dyn Recycle>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(Shared {
                data: v,
                recycler: Some(recycler),
            }),
            start: 0,
            end,
        }
    }

    /// Creates `Bytes` from a static slice (copied; the real crate borrows,
    /// which is indistinguishable through this API).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data.data[self.start..self.end]
    }

    /// Returns a sub-slice sharing the underlying storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` on; `self` keeps the prefix.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(Shared {
                data: v,
                recycler: None,
            }),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}
impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for str {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_slice()
    }
}

/// A unique, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.inner.clone()), f)
    }
}

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slicing() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(513);
        m.put_u64_le(u64::MAX - 1);
        let mut b = m.freeze();
        assert_eq!(b.len(), 11);
        let copy = b.clone();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.remaining(), 0);
        assert_eq!(copy.len(), 11, "clone untouched by reads");
    }

    #[test]
    fn split_and_eq() {
        let mut b = Bytes::from_static(b"hello world");
        let head = b.split_to(5);
        assert_eq!(head, "hello");
        assert_eq!(b.slice(1..), "world");
        assert_eq!(b.to_vec(), b" world");
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.advance(3);
    }

    #[test]
    fn recycler_fires_once_on_last_drop() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Sink(Mutex<Vec<Vec<u8>>>);
        impl Recycle for Sink {
            fn recycle(&self, buf: Vec<u8>) {
                self.0.lock().unwrap().push(buf);
            }
        }

        let sink = Arc::new(Sink::default());
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"pooled datagram");
        let b = Bytes::with_recycler(v, sink.clone());
        // Clones and slices share the backing store; no recycle yet.
        let payload = b.slice(7..);
        let clone = b.clone();
        drop(b);
        drop(clone);
        assert!(sink.0.lock().unwrap().is_empty(), "slice still alive");
        drop(payload);
        let got = sink.0.lock().unwrap();
        assert_eq!(got.len(), 1, "recycled exactly once");
        assert!(got[0].capacity() >= 64, "capacity survives the round trip");
    }
}
