//! Offline, API-compatible subset of the `rand` 0.9 crate.
//!
//! Provides the pieces this workspace uses: [`rngs::StdRng`] (implemented
//! as xoshiro256++, seeded via SplitMix64 like `rand`'s `seed_from_u64`),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, and uniform sampling for
//! the primitive types the simulator and chaos harness draw. Statistical
//! quality is more than sufficient for the loss models' tolerance tests;
//! sequences differ from the real crate's, which no test relies on.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `StandardUniform`
/// distribution of the real crate).
pub trait SampleUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`StandardUniform`).
    fn random<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `0..=1`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_uniform_enough() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(0usize..=4);
            assert!(w <= 4);
        }
    }
}
