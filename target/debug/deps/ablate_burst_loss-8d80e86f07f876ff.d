/root/repo/target/debug/deps/ablate_burst_loss-8d80e86f07f876ff.d: crates/bench/src/bin/ablate_burst_loss.rs

/root/repo/target/debug/deps/ablate_burst_loss-8d80e86f07f876ff: crates/bench/src/bin/ablate_burst_loss.rs

crates/bench/src/bin/ablate_burst_loss.rs:
