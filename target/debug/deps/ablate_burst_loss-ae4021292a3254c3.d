/root/repo/target/debug/deps/ablate_burst_loss-ae4021292a3254c3.d: crates/bench/src/bin/ablate_burst_loss.rs Cargo.toml

/root/repo/target/debug/deps/libablate_burst_loss-ae4021292a3254c3.rmeta: crates/bench/src/bin/ablate_burst_loss.rs Cargo.toml

crates/bench/src/bin/ablate_burst_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
