/root/repo/target/debug/deps/proptest_membership_codec-65b975696c791fc8.d: tests/proptest_membership_codec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_membership_codec-65b975696c791fc8.rmeta: tests/proptest_membership_codec.rs Cargo.toml

tests/proptest_membership_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
