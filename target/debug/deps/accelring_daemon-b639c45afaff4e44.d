/root/repo/target/debug/deps/accelring_daemon-b639c45afaff4e44.d: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_daemon-b639c45afaff4e44.rmeta: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs Cargo.toml

crates/daemon/src/lib.rs:
crates/daemon/src/engine.rs:
crates/daemon/src/groups.rs:
crates/daemon/src/packing.rs:
crates/daemon/src/proto.rs:
crates/daemon/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
