/root/repo/target/debug/deps/accelringd-9d7d1455da6cea99.d: src/bin/accelringd.rs

/root/repo/target/debug/deps/accelringd-9d7d1455da6cea99: src/bin/accelringd.rs

src/bin/accelringd.rs:
