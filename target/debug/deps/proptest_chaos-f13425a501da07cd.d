/root/repo/target/debug/deps/proptest_chaos-f13425a501da07cd.d: crates/chaos/tests/proptest_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_chaos-f13425a501da07cd.rmeta: crates/chaos/tests/proptest_chaos.rs Cargo.toml

crates/chaos/tests/proptest_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
