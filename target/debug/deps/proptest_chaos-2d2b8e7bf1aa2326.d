/root/repo/target/debug/deps/proptest_chaos-2d2b8e7bf1aa2326.d: crates/chaos/tests/proptest_chaos.rs

/root/repo/target/debug/deps/proptest_chaos-2d2b8e7bf1aa2326: crates/chaos/tests/proptest_chaos.rs

crates/chaos/tests/proptest_chaos.rs:
