/root/repo/target/debug/deps/ablate_priority-669b20449516b948.d: crates/bench/src/bin/ablate_priority.rs

/root/repo/target/debug/deps/ablate_priority-669b20449516b948: crates/bench/src/bin/ablate_priority.rs

crates/bench/src/bin/ablate_priority.rs:
