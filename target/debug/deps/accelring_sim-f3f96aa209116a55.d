/root/repo/target/debug/deps/accelring_sim-f3f96aa209116a55.d: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/accelring_sim-f3f96aa209116a55: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/fabric.rs:
crates/sim/src/harness.rs:
crates/sim/src/loss.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profiles.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
