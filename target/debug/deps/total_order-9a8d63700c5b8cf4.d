/root/repo/target/debug/deps/total_order-9a8d63700c5b8cf4.d: tests/total_order.rs

/root/repo/target/debug/deps/total_order-9a8d63700c5b8cf4: tests/total_order.rs

tests/total_order.rs:
