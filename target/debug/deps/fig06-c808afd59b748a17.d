/root/repo/target/debug/deps/fig06-c808afd59b748a17.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-c808afd59b748a17: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
