/root/repo/target/debug/deps/fig10-5d9a5c70726792c1.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-5d9a5c70726792c1: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
