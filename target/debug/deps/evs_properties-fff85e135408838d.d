/root/repo/target/debug/deps/evs_properties-fff85e135408838d.d: tests/evs_properties.rs Cargo.toml

/root/repo/target/debug/deps/libevs_properties-fff85e135408838d.rmeta: tests/evs_properties.rs Cargo.toml

tests/evs_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
