/root/repo/target/debug/deps/fig08-dbb0b1845c1f9e59.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-dbb0b1845c1f9e59: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
