/root/repo/target/debug/deps/stack_udp-a9a84b31503007f0.d: tests/stack_udp.rs

/root/repo/target/debug/deps/stack_udp-a9a84b31503007f0: tests/stack_udp.rs

tests/stack_udp.rs:
