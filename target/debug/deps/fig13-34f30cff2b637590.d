/root/repo/target/debug/deps/fig13-34f30cff2b637590.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-34f30cff2b637590: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
