/root/repo/target/debug/deps/accelring_transport-f4a8e4839a0691dd.d: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_transport-f4a8e4839a0691dd.rmeta: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/addr.rs:
crates/transport/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
