/root/repo/target/debug/deps/chaos_soak-36e640a54863e48b.d: crates/bench/src/bin/chaos_soak.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_soak-36e640a54863e48b.rmeta: crates/bench/src/bin/chaos_soak.rs Cargo.toml

crates/bench/src/bin/chaos_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
