/root/repo/target/debug/deps/accelring_bench-3f7c42ff5fc235fa.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccelring_bench-3f7c42ff5fc235fa.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccelring_bench-3f7c42ff5fc235fa.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
