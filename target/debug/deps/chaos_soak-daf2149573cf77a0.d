/root/repo/target/debug/deps/chaos_soak-daf2149573cf77a0.d: crates/bench/src/bin/chaos_soak.rs

/root/repo/target/debug/deps/chaos_soak-daf2149573cf77a0: crates/bench/src/bin/chaos_soak.rs

crates/bench/src/bin/chaos_soak.rs:
