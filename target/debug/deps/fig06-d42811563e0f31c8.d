/root/repo/target/debug/deps/fig06-d42811563e0f31c8.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-d42811563e0f31c8: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
