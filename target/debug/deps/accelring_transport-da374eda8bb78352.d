/root/repo/target/debug/deps/accelring_transport-da374eda8bb78352.d: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

/root/repo/target/debug/deps/accelring_transport-da374eda8bb78352: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

crates/transport/src/lib.rs:
crates/transport/src/addr.rs:
crates/transport/src/node.rs:
