/root/repo/target/debug/deps/fig03-c9b8039a6f753b30.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-c9b8039a6f753b30: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
