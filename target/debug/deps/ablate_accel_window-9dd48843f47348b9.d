/root/repo/target/debug/deps/ablate_accel_window-9dd48843f47348b9.d: crates/bench/src/bin/ablate_accel_window.rs

/root/repo/target/debug/deps/ablate_accel_window-9dd48843f47348b9: crates/bench/src/bin/ablate_accel_window.rs

crates/bench/src/bin/ablate_accel_window.rs:
