/root/repo/target/debug/deps/ablate_rtr_delay-ce1ddb855f284a2c.d: crates/bench/src/bin/ablate_rtr_delay.rs

/root/repo/target/debug/deps/ablate_rtr_delay-ce1ddb855f284a2c: crates/bench/src/bin/ablate_rtr_delay.rs

crates/bench/src/bin/ablate_rtr_delay.rs:
