/root/repo/target/debug/deps/fig11-f6e8aa45ddc83990.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-f6e8aa45ddc83990: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
