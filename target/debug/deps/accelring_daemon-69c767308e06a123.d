/root/repo/target/debug/deps/accelring_daemon-69c767308e06a123.d: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

/root/repo/target/debug/deps/accelring_daemon-69c767308e06a123: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

crates/daemon/src/lib.rs:
crates/daemon/src/engine.rs:
crates/daemon/src/groups.rs:
crates/daemon/src/packing.rs:
crates/daemon/src/proto.rs:
crates/daemon/src/runtime.rs:
