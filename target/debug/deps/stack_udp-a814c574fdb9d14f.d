/root/repo/target/debug/deps/stack_udp-a814c574fdb9d14f.d: tests/stack_udp.rs Cargo.toml

/root/repo/target/debug/deps/libstack_udp-a814c574fdb9d14f.rmeta: tests/stack_udp.rs Cargo.toml

tests/stack_udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
