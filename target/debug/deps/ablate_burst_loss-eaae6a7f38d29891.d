/root/repo/target/debug/deps/ablate_burst_loss-eaae6a7f38d29891.d: crates/bench/src/bin/ablate_burst_loss.rs

/root/repo/target/debug/deps/ablate_burst_loss-eaae6a7f38d29891: crates/bench/src/bin/ablate_burst_loss.rs

crates/bench/src/bin/ablate_burst_loss.rs:
