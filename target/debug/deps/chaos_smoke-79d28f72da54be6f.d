/root/repo/target/debug/deps/chaos_smoke-79d28f72da54be6f.d: crates/chaos/tests/chaos_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_smoke-79d28f72da54be6f.rmeta: crates/chaos/tests/chaos_smoke.rs Cargo.toml

crates/chaos/tests/chaos_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
