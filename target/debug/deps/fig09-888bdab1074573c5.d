/root/repo/target/debug/deps/fig09-888bdab1074573c5.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-888bdab1074573c5: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
