/root/repo/target/debug/deps/accelring_chaos-8a79ad9df793d66f.d: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

/root/repo/target/debug/deps/accelring_chaos-8a79ad9df793d66f: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

crates/chaos/src/lib.rs:
crates/chaos/src/checker.rs:
crates/chaos/src/hook.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
