/root/repo/target/debug/deps/fig12-fd28a176721cd765.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-fd28a176721cd765: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
