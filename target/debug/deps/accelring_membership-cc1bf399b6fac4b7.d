/root/repo/target/debug/deps/accelring_membership-cc1bf399b6fac4b7.d: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_membership-cc1bf399b6fac4b7.rmeta: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs Cargo.toml

crates/membership/src/lib.rs:
crates/membership/src/config.rs:
crates/membership/src/daemon.rs:
crates/membership/src/msg.rs:
crates/membership/src/testing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
