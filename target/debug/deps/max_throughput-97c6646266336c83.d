/root/repo/target/debug/deps/max_throughput-97c6646266336c83.d: crates/bench/src/bin/max_throughput.rs

/root/repo/target/debug/deps/max_throughput-97c6646266336c83: crates/bench/src/bin/max_throughput.rs

crates/bench/src/bin/max_throughput.rs:
