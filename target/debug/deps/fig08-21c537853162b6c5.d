/root/repo/target/debug/deps/fig08-21c537853162b6c5.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-21c537853162b6c5: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
