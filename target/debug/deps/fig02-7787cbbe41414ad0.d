/root/repo/target/debug/deps/fig02-7787cbbe41414ad0.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-7787cbbe41414ad0: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
