/root/repo/target/debug/deps/fig13-00d545477846cf17.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-00d545477846cf17: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
