/root/repo/target/debug/deps/fig09-520748295b6c42ed.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-520748295b6c42ed: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
