/root/repo/target/debug/deps/fig02-c5b5273b47f7d77e.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-c5b5273b47f7d77e: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
