/root/repo/target/debug/deps/ablate_priority-cd4b1e5dce396ce9.d: crates/bench/src/bin/ablate_priority.rs

/root/repo/target/debug/deps/ablate_priority-cd4b1e5dce396ce9: crates/bench/src/bin/ablate_priority.rs

crates/bench/src/bin/ablate_priority.rs:
