/root/repo/target/debug/deps/fig05-8c062302b1764664.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-8c062302b1764664: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
