/root/repo/target/debug/deps/fig02-11c60281a67b8def.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-11c60281a67b8def: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
