/root/repo/target/debug/deps/accelring_sim-a9c5edcd15f45ba3.d: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_sim-a9c5edcd15f45ba3.rmeta: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/fabric.rs:
crates/sim/src/harness.rs:
crates/sim/src/loss.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profiles.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
