/root/repo/target/debug/deps/fig05-de7a593d44fcf285.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-de7a593d44fcf285: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
