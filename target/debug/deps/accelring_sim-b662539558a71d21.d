/root/repo/target/debug/deps/accelring_sim-b662539558a71d21.d: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libaccelring_sim-b662539558a71d21.rlib: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libaccelring_sim-b662539558a71d21.rmeta: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/fabric.rs:
crates/sim/src/harness.rs:
crates/sim/src/loss.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profiles.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
