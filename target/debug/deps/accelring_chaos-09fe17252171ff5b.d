/root/repo/target/debug/deps/accelring_chaos-09fe17252171ff5b.d: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

/root/repo/target/debug/deps/libaccelring_chaos-09fe17252171ff5b.rlib: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

/root/repo/target/debug/deps/libaccelring_chaos-09fe17252171ff5b.rmeta: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

crates/chaos/src/lib.rs:
crates/chaos/src/checker.rs:
crates/chaos/src/hook.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
