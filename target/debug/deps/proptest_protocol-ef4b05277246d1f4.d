/root/repo/target/debug/deps/proptest_protocol-ef4b05277246d1f4.d: tests/proptest_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_protocol-ef4b05277246d1f4.rmeta: tests/proptest_protocol.rs Cargo.toml

tests/proptest_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
