/root/repo/target/debug/deps/accelring-b0d30dd780da03e6.d: src/lib.rs

/root/repo/target/debug/deps/libaccelring-b0d30dd780da03e6.rlib: src/lib.rs

/root/repo/target/debug/deps/libaccelring-b0d30dd780da03e6.rmeta: src/lib.rs

src/lib.rs:
