/root/repo/target/debug/deps/ablate_priority-f4735f822e3dd9e8.d: crates/bench/src/bin/ablate_priority.rs

/root/repo/target/debug/deps/ablate_priority-f4735f822e3dd9e8: crates/bench/src/bin/ablate_priority.rs

crates/bench/src/bin/ablate_priority.rs:
