/root/repo/target/debug/deps/ablate_rtr_delay-5f0c121e06ea8a54.d: crates/bench/src/bin/ablate_rtr_delay.rs

/root/repo/target/debug/deps/ablate_rtr_delay-5f0c121e06ea8a54: crates/bench/src/bin/ablate_rtr_delay.rs

crates/bench/src/bin/ablate_rtr_delay.rs:
