/root/repo/target/debug/deps/criterion-a8cb7a3cb936b1bb.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-a8cb7a3cb936b1bb.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
