/root/repo/target/debug/deps/evs_properties-ac4d848c424a858e.d: tests/evs_properties.rs

/root/repo/target/debug/deps/evs_properties-ac4d848c424a858e: tests/evs_properties.rs

tests/evs_properties.rs:
