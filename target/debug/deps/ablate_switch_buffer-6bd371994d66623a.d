/root/repo/target/debug/deps/ablate_switch_buffer-6bd371994d66623a.d: crates/bench/src/bin/ablate_switch_buffer.rs

/root/repo/target/debug/deps/ablate_switch_buffer-6bd371994d66623a: crates/bench/src/bin/ablate_switch_buffer.rs

crates/bench/src/bin/ablate_switch_buffer.rs:
