/root/repo/target/debug/deps/udp_ring-3849e3d343e67de0.d: crates/transport/tests/udp_ring.rs

/root/repo/target/debug/deps/udp_ring-3849e3d343e67de0: crates/transport/tests/udp_ring.rs

crates/transport/tests/udp_ring.rs:
