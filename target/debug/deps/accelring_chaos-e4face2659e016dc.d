/root/repo/target/debug/deps/accelring_chaos-e4face2659e016dc.d: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_chaos-e4face2659e016dc.rmeta: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/checker.rs:
crates/chaos/src/hook.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
