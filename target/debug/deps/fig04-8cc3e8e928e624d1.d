/root/repo/target/debug/deps/fig04-8cc3e8e928e624d1.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-8cc3e8e928e624d1: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
