/root/repo/target/debug/deps/accelring-a2c8fde0a63db96e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring-a2c8fde0a63db96e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
