/root/repo/target/debug/deps/accelringd-af580f75be73c574.d: src/bin/accelringd.rs

/root/repo/target/debug/deps/accelringd-af580f75be73c574: src/bin/accelringd.rs

src/bin/accelringd.rs:
