/root/repo/target/debug/deps/fig09-98ddafbf0bfaef7b.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-98ddafbf0bfaef7b: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
