/root/repo/target/debug/deps/fig05-b9da8059f9fff9f3.d: crates/bench/src/bin/fig05.rs Cargo.toml

/root/repo/target/debug/deps/libfig05-b9da8059f9fff9f3.rmeta: crates/bench/src/bin/fig05.rs Cargo.toml

crates/bench/src/bin/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
