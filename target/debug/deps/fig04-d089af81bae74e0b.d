/root/repo/target/debug/deps/fig04-d089af81bae74e0b.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-d089af81bae74e0b: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
