/root/repo/target/debug/deps/ablate_rtr_delay-9268e053b1a30b0b.d: crates/bench/src/bin/ablate_rtr_delay.rs

/root/repo/target/debug/deps/ablate_rtr_delay-9268e053b1a30b0b: crates/bench/src/bin/ablate_rtr_delay.rs

crates/bench/src/bin/ablate_rtr_delay.rs:
