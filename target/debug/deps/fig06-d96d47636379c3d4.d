/root/repo/target/debug/deps/fig06-d96d47636379c3d4.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-d96d47636379c3d4: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
