/root/repo/target/debug/deps/accelring_daemon-521bbb9ee4be0782.d: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

/root/repo/target/debug/deps/libaccelring_daemon-521bbb9ee4be0782.rlib: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

/root/repo/target/debug/deps/libaccelring_daemon-521bbb9ee4be0782.rmeta: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

crates/daemon/src/lib.rs:
crates/daemon/src/engine.rs:
crates/daemon/src/groups.rs:
crates/daemon/src/packing.rs:
crates/daemon/src/proto.rs:
crates/daemon/src/runtime.rs:
