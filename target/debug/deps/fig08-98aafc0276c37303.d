/root/repo/target/debug/deps/fig08-98aafc0276c37303.d: crates/bench/src/bin/fig08.rs Cargo.toml

/root/repo/target/debug/deps/libfig08-98aafc0276c37303.rmeta: crates/bench/src/bin/fig08.rs Cargo.toml

crates/bench/src/bin/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
