/root/repo/target/debug/deps/debug_seed1-21763f22727f5685.d: crates/chaos/tests/debug_seed1.rs

/root/repo/target/debug/deps/debug_seed1-21763f22727f5685: crates/chaos/tests/debug_seed1.rs

crates/chaos/tests/debug_seed1.rs:
