/root/repo/target/debug/deps/fig07-39e705892bfb8932.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-39e705892bfb8932: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
