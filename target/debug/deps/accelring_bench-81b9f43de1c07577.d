/root/repo/target/debug/deps/accelring_bench-81b9f43de1c07577.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_bench-81b9f43de1c07577.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
