/root/repo/target/debug/deps/fig04-7f8d0a27746ce66f.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/debug/deps/libfig04-7f8d0a27746ce66f.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
