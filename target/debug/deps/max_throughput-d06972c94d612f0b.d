/root/repo/target/debug/deps/max_throughput-d06972c94d612f0b.d: crates/bench/src/bin/max_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libmax_throughput-d06972c94d612f0b.rmeta: crates/bench/src/bin/max_throughput.rs Cargo.toml

crates/bench/src/bin/max_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
