/root/repo/target/debug/deps/fig12-ea4ba827041bfcde.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-ea4ba827041bfcde: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
