/root/repo/target/debug/deps/fig11-1df8186c0bb3d191.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-1df8186c0bb3d191.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
