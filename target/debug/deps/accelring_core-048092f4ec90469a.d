/root/repo/target/debug/deps/accelring_core-048092f4ec90469a.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_core-048092f4ec90469a.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/config.rs:
crates/core/src/flow.rs:
crates/core/src/message.rs:
crates/core/src/participant.rs:
crates/core/src/priority.rs:
crates/core/src/ring.rs:
crates/core/src/stats.rs:
crates/core/src/testing.rs:
crates/core/src/types.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
