/root/repo/target/debug/deps/fig10-6a3dc8b148dfdac7.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-6a3dc8b148dfdac7: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
