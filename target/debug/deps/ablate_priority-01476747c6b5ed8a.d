/root/repo/target/debug/deps/ablate_priority-01476747c6b5ed8a.d: crates/bench/src/bin/ablate_priority.rs Cargo.toml

/root/repo/target/debug/deps/libablate_priority-01476747c6b5ed8a.rmeta: crates/bench/src/bin/ablate_priority.rs Cargo.toml

crates/bench/src/bin/ablate_priority.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
