/root/repo/target/debug/deps/ablate_switch_buffer-4fe64b62a86fe11c.d: crates/bench/src/bin/ablate_switch_buffer.rs

/root/repo/target/debug/deps/ablate_switch_buffer-4fe64b62a86fe11c: crates/bench/src/bin/ablate_switch_buffer.rs

crates/bench/src/bin/ablate_switch_buffer.rs:
