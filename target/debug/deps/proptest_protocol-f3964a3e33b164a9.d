/root/repo/target/debug/deps/proptest_protocol-f3964a3e33b164a9.d: tests/proptest_protocol.rs

/root/repo/target/debug/deps/proptest_protocol-f3964a3e33b164a9: tests/proptest_protocol.rs

tests/proptest_protocol.rs:
