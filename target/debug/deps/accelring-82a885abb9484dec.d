/root/repo/target/debug/deps/accelring-82a885abb9484dec.d: src/lib.rs

/root/repo/target/debug/deps/accelring-82a885abb9484dec: src/lib.rs

src/lib.rs:
