/root/repo/target/debug/deps/fig10-f887958cdb577141.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-f887958cdb577141: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
