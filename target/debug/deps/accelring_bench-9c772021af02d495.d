/root/repo/target/debug/deps/accelring_bench-9c772021af02d495.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/accelring_bench-9c772021af02d495: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
