/root/repo/target/debug/deps/proptest_membership_codec-15712826f42ed043.d: tests/proptest_membership_codec.rs

/root/repo/target/debug/deps/proptest_membership_codec-15712826f42ed043: tests/proptest_membership_codec.rs

tests/proptest_membership_codec.rs:
