/root/repo/target/debug/deps/fig07-a6cc3bf6cd597178.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-a6cc3bf6cd597178: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
