/root/repo/target/debug/deps/accelring_bench-f456f8b77b3390a7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/accelring_bench-f456f8b77b3390a7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
