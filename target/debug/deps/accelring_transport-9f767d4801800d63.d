/root/repo/target/debug/deps/accelring_transport-9f767d4801800d63.d: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring_transport-9f767d4801800d63.rmeta: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/addr.rs:
crates/transport/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
