/root/repo/target/debug/deps/accelring_bench-4f74cfd42f8ea605.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccelring_bench-4f74cfd42f8ea605.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaccelring_bench-4f74cfd42f8ea605.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
