/root/repo/target/debug/deps/ablate_burst_loss-fe27ca13542d2833.d: crates/bench/src/bin/ablate_burst_loss.rs

/root/repo/target/debug/deps/ablate_burst_loss-fe27ca13542d2833: crates/bench/src/bin/ablate_burst_loss.rs

crates/bench/src/bin/ablate_burst_loss.rs:
