/root/repo/target/debug/deps/fig08-85da70411d591e2c.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-85da70411d591e2c: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
