/root/repo/target/debug/deps/total_order-9a997fd1cd6dab0c.d: tests/total_order.rs Cargo.toml

/root/repo/target/debug/deps/libtotal_order-9a997fd1cd6dab0c.rmeta: tests/total_order.rs Cargo.toml

tests/total_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
