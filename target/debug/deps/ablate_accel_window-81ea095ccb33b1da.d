/root/repo/target/debug/deps/ablate_accel_window-81ea095ccb33b1da.d: crates/bench/src/bin/ablate_accel_window.rs

/root/repo/target/debug/deps/ablate_accel_window-81ea095ccb33b1da: crates/bench/src/bin/ablate_accel_window.rs

crates/bench/src/bin/ablate_accel_window.rs:
