/root/repo/target/debug/deps/all_figures-9b5af9d1a1014cd1.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-9b5af9d1a1014cd1: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
