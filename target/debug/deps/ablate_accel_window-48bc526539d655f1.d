/root/repo/target/debug/deps/ablate_accel_window-48bc526539d655f1.d: crates/bench/src/bin/ablate_accel_window.rs Cargo.toml

/root/repo/target/debug/deps/libablate_accel_window-48bc526539d655f1.rmeta: crates/bench/src/bin/ablate_accel_window.rs Cargo.toml

crates/bench/src/bin/ablate_accel_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
