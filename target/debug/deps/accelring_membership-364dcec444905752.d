/root/repo/target/debug/deps/accelring_membership-364dcec444905752.d: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

/root/repo/target/debug/deps/libaccelring_membership-364dcec444905752.rlib: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

/root/repo/target/debug/deps/libaccelring_membership-364dcec444905752.rmeta: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

crates/membership/src/lib.rs:
crates/membership/src/config.rs:
crates/membership/src/daemon.rs:
crates/membership/src/msg.rs:
crates/membership/src/testing.rs:
