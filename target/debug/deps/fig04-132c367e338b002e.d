/root/repo/target/debug/deps/fig04-132c367e338b002e.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-132c367e338b002e: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
