/root/repo/target/debug/deps/all_figures-920089fe09773ba9.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-920089fe09773ba9: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
