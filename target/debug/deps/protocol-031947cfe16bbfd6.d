/root/repo/target/debug/deps/protocol-031947cfe16bbfd6.d: crates/bench/benches/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-031947cfe16bbfd6.rmeta: crates/bench/benches/protocol.rs Cargo.toml

crates/bench/benches/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
