/root/repo/target/debug/deps/fig07-a1bf53670ad248bd.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-a1bf53670ad248bd: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
