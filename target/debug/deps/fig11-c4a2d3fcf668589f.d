/root/repo/target/debug/deps/fig11-c4a2d3fcf668589f.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-c4a2d3fcf668589f: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
