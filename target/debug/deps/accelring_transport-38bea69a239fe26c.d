/root/repo/target/debug/deps/accelring_transport-38bea69a239fe26c.d: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

/root/repo/target/debug/deps/libaccelring_transport-38bea69a239fe26c.rlib: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

/root/repo/target/debug/deps/libaccelring_transport-38bea69a239fe26c.rmeta: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

crates/transport/src/lib.rs:
crates/transport/src/addr.rs:
crates/transport/src/node.rs:
