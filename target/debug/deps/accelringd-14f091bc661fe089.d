/root/repo/target/debug/deps/accelringd-14f091bc661fe089.d: src/bin/accelringd.rs Cargo.toml

/root/repo/target/debug/deps/libaccelringd-14f091bc661fe089.rmeta: src/bin/accelringd.rs Cargo.toml

src/bin/accelringd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
