/root/repo/target/debug/deps/fig03-f8dda702190f2abe.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-f8dda702190f2abe: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
