/root/repo/target/debug/deps/fig12-27c32b2f0ac4d94b.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-27c32b2f0ac4d94b: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
