/root/repo/target/debug/deps/fig03-26573f64da68ac0c.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-26573f64da68ac0c: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
