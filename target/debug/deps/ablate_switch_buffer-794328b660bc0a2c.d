/root/repo/target/debug/deps/ablate_switch_buffer-794328b660bc0a2c.d: crates/bench/src/bin/ablate_switch_buffer.rs Cargo.toml

/root/repo/target/debug/deps/libablate_switch_buffer-794328b660bc0a2c.rmeta: crates/bench/src/bin/ablate_switch_buffer.rs Cargo.toml

crates/bench/src/bin/ablate_switch_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
