/root/repo/target/debug/deps/ablate_switch_buffer-35eabb16bdcd5f00.d: crates/bench/src/bin/ablate_switch_buffer.rs

/root/repo/target/debug/deps/ablate_switch_buffer-35eabb16bdcd5f00: crates/bench/src/bin/ablate_switch_buffer.rs

crates/bench/src/bin/ablate_switch_buffer.rs:
