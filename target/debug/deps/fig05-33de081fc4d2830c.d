/root/repo/target/debug/deps/fig05-33de081fc4d2830c.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-33de081fc4d2830c: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
