/root/repo/target/debug/deps/udp_ring-3d9d4d84cf7041c4.d: crates/transport/tests/udp_ring.rs Cargo.toml

/root/repo/target/debug/deps/libudp_ring-3d9d4d84cf7041c4.rmeta: crates/transport/tests/udp_ring.rs Cargo.toml

crates/transport/tests/udp_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
