/root/repo/target/debug/deps/max_throughput-f417c3b2c8ccbc1e.d: crates/bench/src/bin/max_throughput.rs

/root/repo/target/debug/deps/max_throughput-f417c3b2c8ccbc1e: crates/bench/src/bin/max_throughput.rs

crates/bench/src/bin/max_throughput.rs:
