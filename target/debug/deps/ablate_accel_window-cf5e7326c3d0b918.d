/root/repo/target/debug/deps/ablate_accel_window-cf5e7326c3d0b918.d: crates/bench/src/bin/ablate_accel_window.rs

/root/repo/target/debug/deps/ablate_accel_window-cf5e7326c3d0b918: crates/bench/src/bin/ablate_accel_window.rs

crates/bench/src/bin/ablate_accel_window.rs:
