/root/repo/target/debug/deps/accelring_membership-970761ffc199da58.d: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

/root/repo/target/debug/deps/accelring_membership-970761ffc199da58: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

crates/membership/src/lib.rs:
crates/membership/src/config.rs:
crates/membership/src/daemon.rs:
crates/membership/src/msg.rs:
crates/membership/src/testing.rs:
