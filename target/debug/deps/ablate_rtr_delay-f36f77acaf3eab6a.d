/root/repo/target/debug/deps/ablate_rtr_delay-f36f77acaf3eab6a.d: crates/bench/src/bin/ablate_rtr_delay.rs Cargo.toml

/root/repo/target/debug/deps/libablate_rtr_delay-f36f77acaf3eab6a.rmeta: crates/bench/src/bin/ablate_rtr_delay.rs Cargo.toml

crates/bench/src/bin/ablate_rtr_delay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
