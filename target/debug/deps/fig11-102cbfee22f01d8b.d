/root/repo/target/debug/deps/fig11-102cbfee22f01d8b.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-102cbfee22f01d8b: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
