/root/repo/target/debug/deps/ablate_switch_buffer-c6bc5b83592eb6ca.d: crates/bench/src/bin/ablate_switch_buffer.rs Cargo.toml

/root/repo/target/debug/deps/libablate_switch_buffer-c6bc5b83592eb6ca.rmeta: crates/bench/src/bin/ablate_switch_buffer.rs Cargo.toml

crates/bench/src/bin/ablate_switch_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
