/root/repo/target/debug/deps/all_figures-ce4d1299dc21eb7d.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-ce4d1299dc21eb7d: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
