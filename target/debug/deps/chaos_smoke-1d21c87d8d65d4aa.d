/root/repo/target/debug/deps/chaos_smoke-1d21c87d8d65d4aa.d: crates/chaos/tests/chaos_smoke.rs

/root/repo/target/debug/deps/chaos_smoke-1d21c87d8d65d4aa: crates/chaos/tests/chaos_smoke.rs

crates/chaos/tests/chaos_smoke.rs:
