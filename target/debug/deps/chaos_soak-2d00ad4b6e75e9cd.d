/root/repo/target/debug/deps/chaos_soak-2d00ad4b6e75e9cd.d: crates/bench/src/bin/chaos_soak.rs

/root/repo/target/debug/deps/chaos_soak-2d00ad4b6e75e9cd: crates/bench/src/bin/chaos_soak.rs

crates/bench/src/bin/chaos_soak.rs:
