/root/repo/target/debug/deps/fig13-0ff27ac53a25ee14.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-0ff27ac53a25ee14: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
