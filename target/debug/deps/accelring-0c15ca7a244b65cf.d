/root/repo/target/debug/deps/accelring-0c15ca7a244b65cf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaccelring-0c15ca7a244b65cf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
