/root/repo/target/debug/deps/max_throughput-4e84d84adeece4cb.d: crates/bench/src/bin/max_throughput.rs

/root/repo/target/debug/deps/max_throughput-4e84d84adeece4cb: crates/bench/src/bin/max_throughput.rs

crates/bench/src/bin/max_throughput.rs:
