/root/repo/target/debug/examples/partition_merge-c805c13a1c22ab81.d: examples/partition_merge.rs

/root/repo/target/debug/examples/partition_merge-c805c13a1c22ab81: examples/partition_merge.rs

examples/partition_merge.rs:
