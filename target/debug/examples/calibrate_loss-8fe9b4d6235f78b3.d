/root/repo/target/debug/examples/calibrate_loss-8fe9b4d6235f78b3.d: crates/sim/examples/calibrate_loss.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate_loss-8fe9b4d6235f78b3.rmeta: crates/sim/examples/calibrate_loss.rs Cargo.toml

crates/sim/examples/calibrate_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
