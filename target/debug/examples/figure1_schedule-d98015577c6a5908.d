/root/repo/target/debug/examples/figure1_schedule-d98015577c6a5908.d: examples/figure1_schedule.rs Cargo.toml

/root/repo/target/debug/examples/libfigure1_schedule-d98015577c6a5908.rmeta: examples/figure1_schedule.rs Cargo.toml

examples/figure1_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
