/root/repo/target/debug/examples/calibrate-bd988ca0d24144bd.d: crates/sim/examples/calibrate.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate-bd988ca0d24144bd.rmeta: crates/sim/examples/calibrate.rs Cargo.toml

crates/sim/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
