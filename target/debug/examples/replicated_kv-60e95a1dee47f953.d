/root/repo/target/debug/examples/replicated_kv-60e95a1dee47f953.d: examples/replicated_kv.rs Cargo.toml

/root/repo/target/debug/examples/libreplicated_kv-60e95a1dee47f953.rmeta: examples/replicated_kv.rs Cargo.toml

examples/replicated_kv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
