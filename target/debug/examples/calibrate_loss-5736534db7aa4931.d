/root/repo/target/debug/examples/calibrate_loss-5736534db7aa4931.d: crates/sim/examples/calibrate_loss.rs

/root/repo/target/debug/examples/calibrate_loss-5736534db7aa4931: crates/sim/examples/calibrate_loss.rs

crates/sim/examples/calibrate_loss.rs:
