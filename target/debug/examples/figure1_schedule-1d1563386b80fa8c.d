/root/repo/target/debug/examples/figure1_schedule-1d1563386b80fa8c.d: examples/figure1_schedule.rs

/root/repo/target/debug/examples/figure1_schedule-1d1563386b80fa8c: examples/figure1_schedule.rs

examples/figure1_schedule.rs:
