/root/repo/target/debug/examples/partition_merge-4d2d21c3c785d835.d: examples/partition_merge.rs Cargo.toml

/root/repo/target/debug/examples/libpartition_merge-4d2d21c3c785d835.rmeta: examples/partition_merge.rs Cargo.toml

examples/partition_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
