/root/repo/target/debug/examples/quickstart-f7f524149fdb5b91.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f7f524149fdb5b91: examples/quickstart.rs

examples/quickstart.rs:
