/root/repo/target/debug/examples/udp_cluster-a2bc813f890cc945.d: examples/udp_cluster.rs

/root/repo/target/debug/examples/udp_cluster-a2bc813f890cc945: examples/udp_cluster.rs

examples/udp_cluster.rs:
