/root/repo/target/debug/examples/calibrate-ae6c468b96159209.d: crates/sim/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-ae6c468b96159209: crates/sim/examples/calibrate.rs

crates/sim/examples/calibrate.rs:
