/root/repo/target/debug/examples/replicated_kv-41bc2e8b428ac111.d: examples/replicated_kv.rs

/root/repo/target/debug/examples/replicated_kv-41bc2e8b428ac111: examples/replicated_kv.rs

examples/replicated_kv.rs:
