/root/repo/target/release/deps/chaos_soak-b9b8278b7caac410.d: crates/bench/src/bin/chaos_soak.rs Cargo.toml

/root/repo/target/release/deps/libchaos_soak-b9b8278b7caac410.rmeta: crates/bench/src/bin/chaos_soak.rs Cargo.toml

crates/bench/src/bin/chaos_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
