/root/repo/target/release/deps/accelring_core-4b2dc43f86fcd99c.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/release/deps/libaccelring_core-4b2dc43f86fcd99c.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/config.rs:
crates/core/src/flow.rs:
crates/core/src/message.rs:
crates/core/src/participant.rs:
crates/core/src/priority.rs:
crates/core/src/ring.rs:
crates/core/src/stats.rs:
crates/core/src/testing.rs:
crates/core/src/types.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
