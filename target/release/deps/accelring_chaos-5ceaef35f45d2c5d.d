/root/repo/target/release/deps/accelring_chaos-5ceaef35f45d2c5d.d: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs Cargo.toml

/root/repo/target/release/deps/libaccelring_chaos-5ceaef35f45d2c5d.rmeta: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/checker.rs:
crates/chaos/src/hook.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
