/root/repo/target/release/deps/accelring_daemon-046791d971ab49a9.d: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

/root/repo/target/release/deps/libaccelring_daemon-046791d971ab49a9.rlib: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

/root/repo/target/release/deps/libaccelring_daemon-046791d971ab49a9.rmeta: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs

crates/daemon/src/lib.rs:
crates/daemon/src/engine.rs:
crates/daemon/src/groups.rs:
crates/daemon/src/packing.rs:
crates/daemon/src/proto.rs:
crates/daemon/src/runtime.rs:
