/root/repo/target/release/deps/chaos_soak-0758fb4a1f9b50ce.d: crates/bench/src/bin/chaos_soak.rs

/root/repo/target/release/deps/chaos_soak-0758fb4a1f9b50ce: crates/bench/src/bin/chaos_soak.rs

crates/bench/src/bin/chaos_soak.rs:
