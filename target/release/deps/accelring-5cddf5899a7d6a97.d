/root/repo/target/release/deps/accelring-5cddf5899a7d6a97.d: src/lib.rs

/root/repo/target/release/deps/libaccelring-5cddf5899a7d6a97.rlib: src/lib.rs

/root/repo/target/release/deps/libaccelring-5cddf5899a7d6a97.rmeta: src/lib.rs

src/lib.rs:
