/root/repo/target/release/deps/accelring_sim-2499a52072b450f5.d: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libaccelring_sim-2499a52072b450f5.rlib: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libaccelring_sim-2499a52072b450f5.rmeta: crates/sim/src/lib.rs crates/sim/src/fabric.rs crates/sim/src/harness.rs crates/sim/src/loss.rs crates/sim/src/metrics.rs crates/sim/src/profiles.rs crates/sim/src/sim.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/fabric.rs:
crates/sim/src/harness.rs:
crates/sim/src/loss.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profiles.rs:
crates/sim/src/sim.rs:
crates/sim/src/time.rs:
