/root/repo/target/release/deps/accelring_membership-f09ffa12685d78a9.d: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

/root/repo/target/release/deps/libaccelring_membership-f09ffa12685d78a9.rlib: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

/root/repo/target/release/deps/libaccelring_membership-f09ffa12685d78a9.rmeta: crates/membership/src/lib.rs crates/membership/src/config.rs crates/membership/src/daemon.rs crates/membership/src/msg.rs crates/membership/src/testing.rs

crates/membership/src/lib.rs:
crates/membership/src/config.rs:
crates/membership/src/daemon.rs:
crates/membership/src/msg.rs:
crates/membership/src/testing.rs:
