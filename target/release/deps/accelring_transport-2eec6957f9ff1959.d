/root/repo/target/release/deps/accelring_transport-2eec6957f9ff1959.d: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs Cargo.toml

/root/repo/target/release/deps/libaccelring_transport-2eec6957f9ff1959.rmeta: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/addr.rs:
crates/transport/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
