/root/repo/target/release/deps/accelring_transport-8f2c0e138526b31f.d: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

/root/repo/target/release/deps/libaccelring_transport-8f2c0e138526b31f.rlib: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

/root/repo/target/release/deps/libaccelring_transport-8f2c0e138526b31f.rmeta: crates/transport/src/lib.rs crates/transport/src/addr.rs crates/transport/src/node.rs

crates/transport/src/lib.rs:
crates/transport/src/addr.rs:
crates/transport/src/node.rs:
