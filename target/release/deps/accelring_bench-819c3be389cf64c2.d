/root/repo/target/release/deps/accelring_bench-819c3be389cf64c2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libaccelring_bench-819c3be389cf64c2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
