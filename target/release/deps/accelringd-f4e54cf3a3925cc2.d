/root/repo/target/release/deps/accelringd-f4e54cf3a3925cc2.d: src/bin/accelringd.rs

/root/repo/target/release/deps/accelringd-f4e54cf3a3925cc2: src/bin/accelringd.rs

src/bin/accelringd.rs:
