/root/repo/target/release/deps/accelring_daemon-14fd7344df3c8a8c.d: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs Cargo.toml

/root/repo/target/release/deps/libaccelring_daemon-14fd7344df3c8a8c.rmeta: crates/daemon/src/lib.rs crates/daemon/src/engine.rs crates/daemon/src/groups.rs crates/daemon/src/packing.rs crates/daemon/src/proto.rs crates/daemon/src/runtime.rs Cargo.toml

crates/daemon/src/lib.rs:
crates/daemon/src/engine.rs:
crates/daemon/src/groups.rs:
crates/daemon/src/packing.rs:
crates/daemon/src/proto.rs:
crates/daemon/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
