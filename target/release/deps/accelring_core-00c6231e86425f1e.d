/root/repo/target/release/deps/accelring_core-00c6231e86425f1e.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libaccelring_core-00c6231e86425f1e.rlib: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs

/root/repo/target/release/deps/libaccelring_core-00c6231e86425f1e.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/flow.rs crates/core/src/message.rs crates/core/src/participant.rs crates/core/src/priority.rs crates/core/src/ring.rs crates/core/src/stats.rs crates/core/src/testing.rs crates/core/src/types.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/config.rs:
crates/core/src/flow.rs:
crates/core/src/message.rs:
crates/core/src/participant.rs:
crates/core/src/priority.rs:
crates/core/src/ring.rs:
crates/core/src/stats.rs:
crates/core/src/testing.rs:
crates/core/src/types.rs:
crates/core/src/wire.rs:
