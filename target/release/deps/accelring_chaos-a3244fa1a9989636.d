/root/repo/target/release/deps/accelring_chaos-a3244fa1a9989636.d: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

/root/repo/target/release/deps/libaccelring_chaos-a3244fa1a9989636.rlib: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

/root/repo/target/release/deps/libaccelring_chaos-a3244fa1a9989636.rmeta: crates/chaos/src/lib.rs crates/chaos/src/checker.rs crates/chaos/src/hook.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs

crates/chaos/src/lib.rs:
crates/chaos/src/checker.rs:
crates/chaos/src/hook.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
