/root/repo/target/release/deps/accelring_bench-f51e7e33c5bd7397.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccelring_bench-f51e7e33c5bd7397.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaccelring_bench-f51e7e33c5bd7397.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
