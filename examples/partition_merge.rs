//! Extended Virtual Synchrony in action: a six-daemon cluster partitions
//! into two halves, both halves keep ordering messages independently, and
//! when the network heals the membership algorithm merges them back into
//! one ring — delivering transitional and regular configuration changes
//! along the way.
//!
//! Run with: `cargo run --example partition_merge`

use accelring::core::{ProtocolConfig, Service};
use accelring::membership::testing::Cluster;
use accelring::membership::MembershipConfig;
use bytes::Bytes;

const MS: u64 = 1_000_000;

fn print_configs(cluster: &Cluster, node: usize) {
    println!("  node {node} configuration history:");
    for c in cluster.configs(node) {
        let kind = if c.transitional {
            "transitional"
        } else {
            "regular"
        };
        let members: Vec<String> = c.members.iter().map(|m| m.to_string()).collect();
        println!("    {kind:>12}: [{}]", members.join(", "));
    }
}

fn main() {
    let mut cluster = Cluster::new(
        6,
        ProtocolConfig::accelerated(10, 5),
        MembershipConfig::for_simulation(),
    );

    println!("forming the initial 6-member ring...");
    cluster.run_for(30 * MS);
    assert!(cluster.all_operational());
    println!("  ring: {:?}\n", cluster.ring_of(0).len());

    println!("ordering traffic before the partition...");
    cluster.submit(0, Bytes::from_static(b"before-partition"), Service::Agreed);
    cluster.run_for(10 * MS);

    println!("partitioning into {{0,1,2}} | {{3,4,5}}...");
    cluster.partition(&[&[0, 1, 2], &[3, 4, 5]]);
    cluster.run_for(60 * MS);
    assert!(cluster.all_operational());
    println!(
        "  left ring size: {}, right ring size: {}",
        cluster.ring_of(0).len(),
        cluster.ring_of(3).len()
    );

    // Both halves continue independently (primary-component logic is the
    // application's choice under EVS — both sides get well-defined
    // configurations).
    cluster.submit(1, Bytes::from_static(b"left-side-update"), Service::Safe);
    cluster.submit(4, Bytes::from_static(b"right-side-update"), Service::Safe);
    cluster.run_for(20 * MS);
    assert!(cluster
        .deliveries(2)
        .iter()
        .any(|d| d.payload == "left-side-update"));
    assert!(cluster
        .deliveries(5)
        .iter()
        .any(|d| d.payload == "right-side-update"));
    assert!(!cluster
        .deliveries(5)
        .iter()
        .any(|d| d.payload == "left-side-update"));
    println!("  each side ordered its own traffic ✓\n");

    println!("healing the partition...");
    cluster.heal();
    cluster.run_for(80 * MS);
    assert!(cluster.all_operational());
    assert_eq!(cluster.ring_of(0).len(), 6);
    assert_eq!(cluster.ring_of(0), cluster.ring_of(5));
    println!("  merged back into one ring of 6 ✓");

    cluster.submit(3, Bytes::from_static(b"after-merge"), Service::Agreed);
    cluster.run_for(20 * MS);
    for i in 0..6 {
        assert!(
            cluster
                .deliveries(i)
                .iter()
                .any(|d| d.payload == "after-merge"),
            "node {i} missed the post-merge message"
        );
    }
    println!("  post-merge message delivered everywhere ✓\n");

    print_configs(&cluster, 0);
    print_configs(&cluster, 3);
}
