//! A replicated key-value store built on totally ordered multicast — the
//! classic state-machine-replication use case from the paper's
//! introduction ("maintaining consistent distributed state").
//!
//! Each replica applies the same totally ordered stream of operations to
//! its local map, so all replicas stay identical without locks or
//! leader election. Writes use Safe delivery (stability before apply);
//! reads are local.
//!
//! Run with: `cargo run --example replicated_kv`

use std::collections::BTreeMap;

use accelring::core::testing::TestNet;
use accelring::core::{Delivery, ProtocolConfig, Service};
use bytes::Bytes;

/// An operation on the store, with a tiny text wire format.
#[derive(Debug)]
enum Op {
    Put { key: String, value: String },
    Delete { key: String },
}

impl Op {
    fn encode(&self) -> Bytes {
        match self {
            Op::Put { key, value } => Bytes::from(format!("PUT {key} {value}")),
            Op::Delete { key } => Bytes::from(format!("DEL {key}")),
        }
    }

    fn decode(payload: &[u8]) -> Option<Op> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.splitn(3, ' ');
        match parts.next()? {
            "PUT" => Some(Op::Put {
                key: parts.next()?.to_string(),
                value: parts.next()?.to_string(),
            }),
            "DEL" => Some(Op::Delete {
                key: parts.next()?.to_string(),
            }),
            _ => None,
        }
    }
}

/// One replica: a map maintained purely by applying delivered operations.
#[derive(Debug, Default, PartialEq, Eq)]
struct Replica {
    data: BTreeMap<String, String>,
    applied: u64,
}

impl Replica {
    fn apply(&mut self, delivery: &Delivery) {
        let Some(op) = Op::decode(&delivery.payload) else {
            return;
        };
        self.applied += 1;
        match op {
            Op::Put { key, value } => {
                self.data.insert(key, value);
            }
            Op::Delete { key } => {
                self.data.remove(&key);
            }
        }
    }
}

fn main() {
    const REPLICAS: u16 = 5;
    let mut net = TestNet::new(REPLICAS, ProtocolConfig::accelerated(20, 15));

    // Different replicas issue conflicting writes to the same keys — the
    // total order resolves every conflict identically everywhere.
    let ops = [
        (
            0,
            Op::Put {
                key: "user:1".into(),
                value: "alice".into(),
            },
        ),
        (
            1,
            Op::Put {
                key: "user:1".into(),
                value: "bob".into(),
            },
        ),
        (
            2,
            Op::Put {
                key: "balance".into(),
                value: "100".into(),
            },
        ),
        (
            3,
            Op::Put {
                key: "balance".into(),
                value: "250".into(),
            },
        ),
        (
            4,
            Op::Delete {
                key: "user:1".into(),
            },
        ),
        (
            0,
            Op::Put {
                key: "user:2".into(),
                value: "carol".into(),
            },
        ),
        (
            2,
            Op::Put {
                key: "user:1".into(),
                value: "dave".into(),
            },
        ),
    ];
    for (replica, op) in &ops {
        net.submit(*replica, op.encode(), Service::Safe);
    }
    net.run_tokens(40);

    // Build each replica's state from its delivery stream.
    let mut replicas: Vec<Replica> = (0..REPLICAS).map(|_| Replica::default()).collect();
    for (i, replica) in replicas.iter_mut().enumerate() {
        for d in &net.delivery_orders()[i] {
            replica.apply(d);
        }
    }

    println!("replica 0 state after {} ops:", replicas[0].applied);
    for (k, v) in &replicas[0].data {
        println!("  {k} = {v}");
    }
    for (i, r) in replicas.iter().enumerate().skip(1) {
        assert_eq!(r, &replicas[0], "replica {i} diverged");
    }
    println!("all {REPLICAS} replicas identical ✓");
    assert_eq!(replicas[0].applied, ops.len() as u64);
}
