//! A replicated key-value store built on totally ordered multicast — the
//! classic state-machine-replication use case from the paper's
//! introduction ("maintaining consistent distributed state").
//!
//! Each replica is a client of its local daemon on a real localhost UDP
//! ring. All replicas apply the same totally ordered stream of
//! operations to their local maps, so they stay identical without locks
//! or leader election. Writes use Safe delivery (stability before
//! apply); reads are local.
//!
//! Run with: `cargo run --example replicated_kv`

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use accelring::core::{ProtocolConfig, Service};
use accelring::daemon::{ClientEvent, GroupDaemon};
use accelring::membership::MembershipConfig;
use accelring::transport::spawn_local_ring;
use bytes::Bytes;

/// An operation on the store, with a tiny text wire format.
#[derive(Debug)]
enum Op {
    Put { key: String, value: String },
    Delete { key: String },
}

impl Op {
    fn encode(&self) -> Bytes {
        match self {
            Op::Put { key, value } => Bytes::from(format!("PUT {key} {value}")),
            Op::Delete { key } => Bytes::from(format!("DEL {key}")),
        }
    }

    fn decode(payload: &[u8]) -> Option<Op> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.splitn(3, ' ');
        match parts.next()? {
            "PUT" => Some(Op::Put {
                key: parts.next()?.to_string(),
                value: parts.next()?.to_string(),
            }),
            "DEL" => Some(Op::Delete {
                key: parts.next()?.to_string(),
            }),
            _ => None,
        }
    }
}

/// One replica: a map maintained purely by applying delivered operations.
#[derive(Debug, Default, PartialEq, Eq)]
struct Replica {
    data: BTreeMap<String, String>,
    applied: u64,
}

impl Replica {
    fn apply(&mut self, payload: &[u8]) {
        let Some(op) = Op::decode(payload) else {
            return;
        };
        self.applied += 1;
        match op {
            Op::Put { key, value } => {
                self.data.insert(key, value);
            }
            Op::Delete { key } => {
                self.data.remove(&key);
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const REPLICAS: usize = 5;
    println!("starting {REPLICAS} daemons on 127.0.0.1 (ephemeral ports)...");
    let nodes = spawn_local_ring(
        REPLICAS as u16,
        ProtocolConfig::accelerated(20, 15),
        MembershipConfig::for_wall_clock(),
    )?;
    let daemons: Vec<GroupDaemon> = nodes.into_iter().map(GroupDaemon::start).collect();
    let clients: Vec<_> = daemons
        .iter()
        .enumerate()
        .map(|(i, d)| d.connect(&format!("replica-{i}")).expect("connect"))
        .collect();
    for c in &clients {
        c.join("kv")?;
    }
    // A join is effective only once its view is delivered; wait for the
    // full membership before submitting so no replica misses an op.
    for (i, c) in clients.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match c.events().recv_timeout(Duration::from_millis(200)) {
                Ok(ClientEvent::View { group, members })
                    if group == "kv" && members.len() == REPLICAS =>
                {
                    break;
                }
                Ok(_) => {}
                Err(_) if Instant::now() > deadline => {
                    return Err(format!("replica-{i} never saw the full view").into())
                }
                Err(_) => {}
            }
        }
    }

    // Different replicas issue conflicting writes to the same keys — the
    // total order resolves every conflict identically everywhere.
    let ops = [
        (
            0,
            Op::Put {
                key: "user:1".into(),
                value: "alice".into(),
            },
        ),
        (
            1,
            Op::Put {
                key: "user:1".into(),
                value: "bob".into(),
            },
        ),
        (
            2,
            Op::Put {
                key: "balance".into(),
                value: "100".into(),
            },
        ),
        (
            3,
            Op::Put {
                key: "balance".into(),
                value: "250".into(),
            },
        ),
        (
            4,
            Op::Delete {
                key: "user:1".into(),
            },
        ),
        (
            0,
            Op::Put {
                key: "user:2".into(),
                value: "carol".into(),
            },
        ),
        (
            2,
            Op::Put {
                key: "user:1".into(),
                value: "dave".into(),
            },
        ),
    ];
    for (replica, op) in &ops {
        clients[*replica].multicast(&["kv"], op.encode(), Service::Safe)?;
    }

    // Build each replica's state from its delivered stream.
    let mut replicas: Vec<Replica> = (0..REPLICAS).map(|_| Replica::default()).collect();
    for (i, (c, replica)) in clients.iter().zip(replicas.iter_mut()).enumerate() {
        let deadline = Instant::now() + Duration::from_secs(10);
        while replica.applied < ops.len() as u64 && Instant::now() < deadline {
            if let Ok(ClientEvent::Message { payload, .. }) =
                c.events().recv_timeout(Duration::from_millis(200))
            {
                replica.apply(&payload);
            }
        }
        assert_eq!(
            replica.applied,
            ops.len() as u64,
            "replica-{i} must deliver every op"
        );
    }

    println!("replica 0 state after {} ops:", replicas[0].applied);
    for (k, v) in &replicas[0].data {
        println!("  {k} = {v}");
    }
    for (i, r) in replicas.iter().enumerate().skip(1) {
        assert_eq!(r, &replicas[0], "replica {i} diverged");
    }
    println!("all {REPLICAS} replicas identical ✓");

    for d in daemons {
        d.shutdown();
    }
    Ok(())
}
