//! A replicated key-value store built on totally ordered multicast — the
//! classic state-machine-replication use case from the paper's
//! introduction ("maintaining consistent distributed state"), now served
//! by the `accelring-kv` crate instead of a hand-rolled apply loop.
//!
//! The deployment below runs two rings and three daemons on localhost
//! UDP. The key space is split into four partition groups pinned
//! alternately to the rings; every daemon mounts a deterministic
//! [`KvMachine`](accelring::kv::KvMachine) replica that consumes the
//! merged total order. Clients talk to any daemon and get ordered
//! writes, exactly-once retries, atomic cross-ring transactions, and
//! three read-consistency modes.
//!
//! Run with: `cargo run --example replicated_kv`

use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring::core::{ProtocolConfig, RingIdx};
use accelring::daemon::FrontendOptions;
use accelring::kv::{KvClient, KvConfig, KvShared, KvStore, KvValue, KvWrite, ReadMode};
use accelring::membership::MembershipConfig;
use accelring::multiring::{MultiRingDaemon, MultiRingOptions, ShardMap};
use accelring::transport::spawn_local_multiring;
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 3;
const PARTS: u16 = 4;
const WAIT: Duration = Duration::from_secs(10);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("starting {RINGS} rings x {NODES} daemons on 127.0.0.1 (ephemeral ports)...");
    let handles = spawn_local_multiring(
        RINGS,
        NODES,
        ProtocolConfig::default(),
        MembershipConfig::for_wall_clock(),
        &[],
    )?;
    // Transpose ring-major handles into per-daemon columns: daemon i
    // owns one node on every ring.
    let mut columns: Vec<Vec<_>> = (0..NODES).map(|_| Vec::new()).collect();
    for ring in handles {
        for (i, node) in ring.into_iter().enumerate() {
            columns[i].push(node);
        }
    }
    // Pin partition `kv.N` to ring `N % RINGS` so transactions can span
    // rings — the merged order still commits them atomically.
    let mut shards = ShardMap::new(RINGS);
    for p in 0..PARTS {
        shards.assign(&format!("kv.{p}"), RingIdx::new(p % RINGS));
    }
    let shareds: Vec<Arc<KvShared>> = (0..NODES).map(|_| KvShared::new(PARTS)).collect();
    let daemons: Vec<MultiRingDaemon> = columns
        .into_iter()
        .zip(&shareds)
        .map(|(nodes, shared)| {
            MultiRingDaemon::start_with(
                nodes,
                shards.clone(),
                MultiRingOptions {
                    frontend: FrontendOptions::enabled(),
                    app_state: Some(shared.clone()),
                    ..MultiRingOptions::default()
                },
            )
        })
        .collect();
    let stores: Vec<KvStore> = daemons
        .iter()
        .zip(&shareds)
        .enumerate()
        .map(|(i, (daemon, shared))| {
            KvStore::start(
                daemon,
                shared.clone(),
                KvConfig {
                    partitions: PARTS,
                    name: format!("replica-{i}"),
                    ..KvConfig::default()
                },
            )
            .expect("replica starts")
        })
        .collect();

    // Two clients on two different daemons — the total order makes the
    // daemons interchangeable.
    let addr0 = daemons[0].session_addr().expect("session socket");
    let addr1 = daemons[1].session_addr().expect("session socket");
    let mut alice = KvClient::connect(addr0, "alice", PARTS)?;
    let mut bob = KvClient::connect(addr1, "bob", PARTS)?;
    alice.wait_serving(WAIT)?;
    bob.wait_serving(WAIT)?;

    // Ordered writes with exactly-once confirmation: `confirm` resubmits
    // the in-doubt op until the replica's consumption watermark covers
    // it, and the per-sender dedup at ordered delivery makes retries
    // harmless.
    let seq = alice.put("user:1", "alice@example.com")?;
    alice.confirm("user:1", seq, WAIT)?;
    let seq = alice.put("balance", "100")?;
    alice.confirm("balance", seq, WAIT)?;

    // Read-your-writes: gated on alice's own watermark, served locally.
    let v = alice.get("user:1", ReadMode::ReadYourWrites, WAIT)?;
    println!("alice reads user:1 = {}", text(&v));

    // Compare-and-swap, resolved identically at every replica by the
    // total order.
    let seq = alice.cas("balance", Some(Bytes::from("100")), "250")?;
    alice.confirm("balance", seq, WAIT)?;

    // A cross-partition (and here cross-ring) transaction: the op is
    // split into per-ring fragments carrying the same (client, seq);
    // every replica buffers them and commits once at the merged
    // position of the last fragment — atomically, everywhere.
    let seq = alice.txn(vec![
        KvWrite::Put {
            key: "user:1".to_string(),
            value: Bytes::from("alice@dc2.example.com"),
        },
        KvWrite::Put {
            key: "audit:user:1".to_string(),
            value: Bytes::from("moved to dc2"),
        },
    ])?;
    alice.confirm("audit:user:1", seq, WAIT)?;

    // Linearizable read from the *other* daemon: bob's read is gated on
    // a fresh fence ordered through the key's partition, so it observes
    // everything committed before it — including alice's transaction.
    let v = bob.get("user:1", ReadMode::Linearizable, WAIT)?;
    println!(
        "bob reads   user:1 = {} (linearizable, via daemon 1)",
        text(&v)
    );
    let v = bob.get("balance", ReadMode::Linearizable, WAIT)?;
    println!("bob reads  balance = {} (after alice's CAS)", text(&v));

    alice.close();
    bob.close();

    // Every replica converged to the same machine: equal order
    // positions, equal state hashes.
    let deadline = Instant::now() + WAIT;
    loop {
        let positions: Vec<u64> = shareds.iter().map(|s| s.position()).collect();
        if positions.iter().all(|&p| p == positions[0]) {
            break;
        }
        if Instant::now() > deadline {
            return Err("replicas never converged".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let hashes: Vec<u64> = shareds.iter().map(|s| s.state_hash()).collect();
    println!("replica state hashes: {hashes:x?}");
    assert!(hashes.iter().all(|&h| h == hashes[0]), "replicas diverged");
    println!("all {NODES} replicas identical ✓");

    for s in stores {
        s.shutdown();
    }
    for d in daemons {
        d.shutdown();
    }
    Ok(())
}

fn text(v: &KvValue) -> String {
    match &v.value {
        Some(b) => String::from_utf8_lossy(b).into_owned(),
        None => "<absent>".to_string(),
    }
}
