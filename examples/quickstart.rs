//! Quickstart: a real three-daemon Accelerated Ring on localhost UDP,
//! group-messaging clients on top, and totally ordered delivery of
//! Agreed and Safe messages observed end to end.
//!
//! Run with: `cargo run --example quickstart`

use std::time::{Duration, Instant};

use accelring::core::{ProtocolConfig, Service};
use accelring::daemon::{ClientEvent, GroupDaemon};
use accelring::membership::MembershipConfig;
use accelring::transport::spawn_local_ring;
use bytes::Bytes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 1 configuration: personal window 5, accelerated window 3,
    // with wall-clock membership timing suitable for a demo.
    let cfg = ProtocolConfig::accelerated(5, 3);
    println!("starting 3 daemons on 127.0.0.1 (ephemeral ports)...");
    let nodes = spawn_local_ring(3, cfg, MembershipConfig::for_wall_clock())?;
    let daemons: Vec<GroupDaemon> = nodes.into_iter().map(GroupDaemon::start).collect();

    // One client per daemon, all subscribed to #updates.
    let clients: Vec<_> = daemons
        .iter()
        .enumerate()
        .map(|(i, d)| d.connect(&format!("client-{i}")).expect("connect"))
        .collect();
    for c in &clients {
        c.join("updates")?;
    }

    // Wait until every client has seen the full view: a join is effective
    // (and later sends are ordered after it everywhere) only once the
    // view installing it has been delivered.
    for (i, c) in clients.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match c.events().recv_timeout(Duration::from_millis(200)) {
                Ok(ClientEvent::View { group, members })
                    if group == "updates" && members.len() == clients.len() =>
                {
                    break;
                }
                Ok(_) => {}
                Err(_) if Instant::now() > deadline => {
                    return Err(format!("client-{i} never saw the full view").into())
                }
                Err(_) => {}
            }
        }
    }
    println!("#updates view complete: {} members", clients.len());

    // Three clients submit interleaved updates, mixing service levels.
    for i in 0..4u32 {
        clients[(i % 3) as usize].multicast(
            &["updates"],
            Bytes::from(format!("update-{i}")),
            if i % 2 == 0 {
                Service::Agreed
            } else {
                Service::Safe
            },
        )?;
    }

    // Every client delivers exactly the same sequence.
    let mut orders: Vec<Vec<String>> = Vec::new();
    for (i, c) in clients.iter().enumerate() {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < 4 && Instant::now() < deadline {
            if let Ok(ClientEvent::Message {
                sender, payload, ..
            }) = c.events().recv_timeout(Duration::from_millis(200))
            {
                got.push(format!("{sender}: {}", String::from_utf8_lossy(&payload)));
            }
        }
        assert_eq!(got.len(), 4, "client-{i} must deliver all four updates");
        orders.push(got);
    }
    println!("total order as delivered by client-0:");
    for line in &orders[0] {
        println!("  {line}");
    }
    for (i, order) in orders.iter().enumerate().skip(1) {
        assert_eq!(order, &orders[0], "client-{i} diverged from client-0");
    }
    println!("all 3 clients delivered the identical sequence ✓");

    for d in daemons {
        d.shutdown();
    }
    Ok(())
}
