//! Quickstart: a three-participant Accelerated Ring, totally ordered
//! delivery of Agreed and Safe messages, in a deterministic in-memory net.
//!
//! Run with: `cargo run --example quickstart`

use accelring::core::testing::TestNet;
use accelring::core::{ProtocolConfig, Service};
use bytes::Bytes;

fn main() {
    // The Figure 1 configuration: personal window 5, accelerated window 3.
    let cfg = ProtocolConfig::accelerated(5, 3);
    let mut net = TestNet::new(3, cfg);

    // Three participants submit interleaved updates, mixing service levels.
    for i in 0..4u32 {
        net.submit(
            (i % 3) as usize,
            Bytes::from(format!("update-{i}")),
            if i % 2 == 0 {
                Service::Agreed
            } else {
                Service::Safe
            },
        );
    }

    // Let the token circulate a few rounds.
    net.run_tokens(15);

    // Every participant delivered exactly the same sequence.
    let orders = net.delivery_orders();
    println!("total order as delivered by participant 0:");
    for d in &orders[0] {
        println!(
            "  {} from {} ({}): {}",
            d.seq,
            d.sender,
            d.service,
            String::from_utf8_lossy(&d.payload)
        );
    }
    assert_eq!(orders[0], orders[1]);
    assert_eq!(orders[1], orders[2]);
    println!("participants 1 and 2 delivered the identical sequence ✓");

    let stats = net.stats();
    println!(
        "tokens processed: {}, messages sent: {}, retransmissions: {}",
        stats.iter().map(|s| s.tokens_processed).sum::<u64>(),
        stats.iter().map(|s| s.messages_sent).sum::<u64>(),
        stats.iter().map(|s| s.retransmissions_sent).sum::<u64>(),
    );
}
