//! A real cluster on localhost: four UDP daemons (actual sockets, actual
//! threads, membership formation from a cold start) with group-messaging
//! clients on top — the full Spread-style stack.
//!
//! Run with: `cargo run --example udp_cluster`

use std::time::{Duration, Instant};

use accelring::core::{ProtocolConfig, Service};
use accelring::daemon::{ClientEvent, GroupDaemon};
use accelring::membership::MembershipConfig;
use accelring::transport::spawn_local_ring;
use bytes::Bytes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fast wall-clock membership timing suitable for a demo.
    let membership = MembershipConfig {
        token_loss_timeout: 300_000_000,
        token_retransmit_timeout: 80_000_000,
        join_interval: 30_000_000,
        consensus_timeout: 250_000_000,
        commit_timeout: 250_000_000,
        recovery_timeout: 1_000_000_000,
        presence_interval: 100_000_000,
        gather_settle: 60_000_000,
    };

    println!("starting 4 daemons on 127.0.0.1 (ephemeral ports)...");
    let nodes = spawn_local_ring(4, ProtocolConfig::accelerated(20, 15), membership)?;
    let daemons: Vec<GroupDaemon> = nodes.into_iter().map(GroupDaemon::start).collect();

    // One client per daemon; everyone joins #market, clients 0/1 also join
    // #audit.
    let clients: Vec<_> = daemons
        .iter()
        .enumerate()
        .map(|(i, d)| d.connect(&format!("client-{i}")).expect("connect"))
        .collect();
    for c in &clients {
        c.join("market")?;
    }
    clients[0].join("audit")?;
    clients[1].join("audit")?;

    // Wait until client 3 has seen the full #market view (4 members).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match clients[3].events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::View { group, members }) if group == "market" && members.len() == 4 => {
                println!("#market view complete: {} members", members.len());
                break;
            }
            Ok(_) => {}
            Err(_) if Instant::now() > deadline => return Err("ring did not form in time".into()),
            Err(_) => {}
        }
    }

    // A multi-group multicast: one send, ordered across both groups.
    clients[2].multicast(
        &["market", "audit"],
        Bytes::from_static(b"TRADE id=7 qty=100"),
        Service::Safe,
    )?;
    clients[0].multicast(
        &["market"],
        Bytes::from_static(b"QUOTE xyz=42"),
        Service::Agreed,
    )?;

    // Every #market member receives both, in the same order.
    for (i, c) in clients.iter().enumerate() {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < 2 && Instant::now() < deadline {
            if let Ok(ClientEvent::Message {
                sender,
                payload,
                groups,
                ..
            }) = c.events().recv_timeout(Duration::from_millis(200))
            {
                got.push(format!(
                    "{} -> {:?}: {}",
                    sender,
                    groups,
                    String::from_utf8_lossy(&payload)
                ));
            }
        }
        println!("client-{i} received:");
        for line in &got {
            println!("    {line}");
        }
        assert_eq!(got.len(), 2, "client-{i} must receive both messages");
    }

    println!("total order held across a real UDP ring ✓");
    for d in daemons {
        d.shutdown();
    }
    Ok(())
}
