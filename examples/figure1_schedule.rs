//! Reproduces Figure 1 of the paper: the send schedules of the original
//! Ring protocol and the Accelerated Ring protocol for 3 participants
//! sending 20 messages with personal window 5 and accelerated window 3.
//!
//! Run with: `cargo run --example figure1_schedule`

use accelring::core::testing::TestNet;
use accelring::core::{ProtocolConfig, Service};
use bytes::Bytes;

fn run(label: &str, cfg: ProtocolConfig) {
    let mut net = TestNet::new(3, cfg);
    // 20 messages total: participants A and B send 5 each in round 1;
    // A and B send 5 more in round 2 (matching the figure's 1..20).
    for p in 0..3usize {
        for k in 0..5 {
            net.submit(p, Bytes::from(format!("{p}-{k}")), Service::Agreed);
        }
    }
    net.submit(0, Bytes::from_static(b"0-extra"), Service::Agreed);
    for k in 0..4 {
        net.submit(0, Bytes::from(format!("0-x{k}")), Service::Agreed);
    }
    net.run_tokens(6);

    println!("== {label} ==");
    let names = ["A", "B", "C"];
    for (pid, name) in names.iter().enumerate() {
        let line: Vec<String> = net
            .multicast_log()
            .iter()
            .filter(|m| m.pid.as_usize() == pid && !m.retransmission)
            .map(|m| {
                if m.post_token {
                    format!("({})", m.seq.as_u64()) // sent after passing the token
                } else {
                    format!("{}", m.seq.as_u64())
                }
            })
            .collect();
        println!("  {name}: {}", line.join(" "));
    }
    println!("  (parenthesized sequence numbers were multicast *after* the token)");
    println!();
}

fn main() {
    println!("Figure 1: 3 participants, personal window 5, accelerated window 3\n");
    run("Original Ring protocol", ProtocolConfig::original(5));
    run(
        "Accelerated Ring protocol",
        ProtocolConfig::accelerated(5, 3),
    );
    println!(
        "Note how the accelerated protocol assigns the *same* sequence\n\
         numbers but transmits the last three messages of each window after\n\
         releasing the token, letting the successor start sooner."
    );
}
