//! `accelringd` — a standalone Accelerated Ring daemon.
//!
//! Runs one member of a totally ordered multicast ring over real UDP
//! sockets, printing deliveries and configuration changes as lines on
//! stdout and reading messages to multicast from stdin. Start one process
//! per ring member with the same `--peers` list:
//!
//! ```console
//! $ accelringd --id 0 --peers 127.0.0.1:7000:7001,127.0.0.1:7010:7011
//! $ accelringd --id 1 --peers 127.0.0.1:7000:7001,127.0.0.1:7010:7011
//! ```
//!
//! Peer `i` in the comma-separated list (format `host:data_port:token_port`)
//! is the daemon with id `i`. Lines typed on stdin are multicast in total
//! order; deliveries print as `DELIVER <seq> <sender> <service> <text>`.
//! `--original` selects the original Totem Ring protocol instead of the
//! Accelerated Ring protocol; `--safe` sends with Safe delivery; `--send N`
//! injects `N` numbered messages automatically and exits once they are all
//! delivered (useful for scripting and smoke tests).

use std::io::BufRead;
use std::net::SocketAddr;
use std::time::Duration;

use accelring::core::{ParticipantId, ProtocolConfig, Service};
use accelring::membership::MembershipConfig;
use accelring::transport::{AddressBook, AppEvent, BoundNode, NodeAddr};
use bytes::Bytes;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    id: u16,
    peers: Vec<(SocketAddr, SocketAddr)>,
    original: bool,
    safe: bool,
    send: Option<u64>,
    personal_window: u32,
    accelerated_window: u32,
}

fn parse_peer(spec: &str) -> Result<(SocketAddr, SocketAddr), String> {
    // host:data_port:token_port — split the two ports off the right.
    let (rest, token_port) = spec
        .rsplit_once(':')
        .ok_or_else(|| format!("bad peer spec {spec:?}"))?;
    let (host, data_port) = rest
        .rsplit_once(':')
        .ok_or_else(|| format!("bad peer spec {spec:?}"))?;
    let data: SocketAddr = format!("{host}:{data_port}")
        .parse()
        .map_err(|e| format!("bad data address in {spec:?}: {e}"))?;
    let token: SocketAddr = format!("{host}:{token_port}")
        .parse()
        .map_err(|e| format!("bad token address in {spec:?}: {e}"))?;
    Ok((data, token))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        id: 0,
        peers: Vec::new(),
        original: false,
        safe: false,
        send: None,
        personal_window: 20,
        accelerated_window: 15,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--id" => opts.id = value("--id")?.parse().map_err(|e| format!("--id: {e}"))?,
            "--peers" => {
                opts.peers = value("--peers")?
                    .split(',')
                    .map(parse_peer)
                    .collect::<Result<_, _>>()?;
            }
            "--original" => opts.original = true,
            "--safe" => opts.safe = true,
            "--send" => {
                opts.send = Some(
                    value("--send")?
                        .parse()
                        .map_err(|e| format!("--send: {e}"))?,
                )
            }
            "--window" => {
                opts.personal_window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--accel" => {
                opts.accelerated_window = value("--accel")?
                    .parse()
                    .map_err(|e| format!("--accel: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if opts.peers.is_empty() {
        return Err(format!("--peers is required\n{USAGE}"));
    }
    if usize::from(opts.id) >= opts.peers.len() {
        return Err(format!(
            "--id {} is out of range for {} peers",
            opts.id,
            opts.peers.len()
        ));
    }
    Ok(opts)
}

const USAGE: &str = "usage: accelringd --id N --peers host:data:token,host:data:token,... \
[--original] [--safe] [--send N] [--window W] [--accel A]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let protocol = if opts.original {
        ProtocolConfig::original(opts.personal_window)
    } else {
        ProtocolConfig::accelerated(opts.personal_window, opts.accelerated_window)
    };
    let service = if opts.safe {
        Service::Safe
    } else {
        Service::Agreed
    };

    let book = AddressBook::new(
        opts.peers
            .iter()
            .enumerate()
            .map(|(i, &(data, token))| NodeAddr {
                pid: ParticipantId::new(i as u16),
                data,
                token,
            })
            .collect(),
    );
    let me = book.peers()[usize::from(opts.id)];
    let node = BoundNode::bind_addrs(me.pid, me.data, me.token)
        .and_then(|b| b.start(book, protocol, MembershipConfig::for_wall_clock()))
        .unwrap_or_else(|e| {
            eprintln!("failed to start daemon: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "accelringd {} up on data={} token={} ({} protocol)",
        me.pid,
        me.data,
        me.token,
        if opts.original {
            "original"
        } else {
            "accelerated"
        }
    );

    // Optional scripted sender.
    if let Some(n) = opts.send {
        for k in 0..n {
            // Bounded command queue: back off briefly when it fills.
            let mut payload = Bytes::from(format!("{}:{k}", opts.id));
            loop {
                match node.submit(payload, service) {
                    Ok(()) => break,
                    Err(accelring_transport::SubmitError::Backlogged) => {
                        payload = Bytes::from(format!("{}:{k}", opts.id));
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        eprintln!("submit failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    // Print deliveries until stdin closes (interactive) or `--send`
    // messages from every peer have been delivered (scripted).
    let expect = opts.send.map(|n| n * opts.peers.len() as u64);
    let mut delivered = 0u64;
    if opts.send.is_some() {
        loop {
            match node.events().recv_timeout(Duration::from_secs(30)) {
                Ok(AppEvent::Delivered(d)) => {
                    delivered += 1;
                    println!(
                        "DELIVER {} {} {} {}",
                        d.seq,
                        d.sender,
                        d.service,
                        String::from_utf8_lossy(&d.payload)
                    );
                    if Some(delivered) == expect {
                        eprintln!("all {delivered} messages delivered, exiting");
                        return;
                    }
                }
                Ok(AppEvent::Config(c)) => {
                    println!(
                        "CONFIG {} members={} transitional={}",
                        c.ring_id,
                        c.members.len(),
                        c.transitional
                    );
                }
                Ok(AppEvent::Fault { reason }) => {
                    eprintln!("daemon thread died: {reason}");
                    std::process::exit(1);
                }
                Err(_) => {
                    eprintln!("timed out after {delivered} deliveries");
                    std::process::exit(1);
                }
            }
        }
    }

    // Interactive mode: one thread prints events, the main thread reads
    // stdin.
    std::thread::scope(|scope| {
        scope.spawn(|| loop {
            match node.events().recv() {
                Ok(AppEvent::Delivered(d)) => println!(
                    "DELIVER {} {} {} {}",
                    d.seq,
                    d.sender,
                    d.service,
                    String::from_utf8_lossy(&d.payload)
                ),
                Ok(AppEvent::Config(c)) => println!(
                    "CONFIG {} members={} transitional={}",
                    c.ring_id,
                    c.members.len(),
                    c.transitional
                ),
                Ok(AppEvent::Fault { reason }) => {
                    eprintln!("daemon thread died: {reason}");
                    return;
                }
                Err(_) => return,
            }
        });
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if !line.is_empty() {
                if let Err(e) = node.submit(Bytes::from(line), service) {
                    eprintln!("submit failed: {e}");
                }
            }
        }
        std::process::exit(0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_args(&args(
            "--id 1 --peers 127.0.0.1:7000:7001,127.0.0.1:7010:7011 --original --safe --send 10 --window 30 --accel 0",
        ))
        .unwrap();
        assert_eq!(opts.id, 1);
        assert_eq!(opts.peers.len(), 2);
        assert!(opts.original);
        assert!(opts.safe);
        assert_eq!(opts.send, Some(10));
        assert_eq!(opts.personal_window, 30);
        assert_eq!(opts.accelerated_window, 0);
        assert_eq!(opts.peers[1].0, "127.0.0.1:7010".parse().unwrap());
        assert_eq!(opts.peers[1].1, "127.0.0.1:7011".parse().unwrap());
    }

    #[test]
    fn rejects_missing_peers() {
        assert!(parse_args(&args("--id 0")).is_err());
    }

    #[test]
    fn rejects_out_of_range_id() {
        assert!(parse_args(&args("--id 5 --peers 127.0.0.1:7000:7001")).is_err());
    }

    #[test]
    fn rejects_malformed_peer() {
        assert!(parse_args(&args("--peers localhost")).is_err());
        assert!(parse_args(&args("--peers 127.0.0.1:x:y")).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_args(&args("--peers 127.0.0.1:1:2 --bogus")).is_err());
    }

    #[test]
    fn defaults_are_accelerated_agreed() {
        let opts = parse_args(&args("--id 0 --peers 127.0.0.1:7000:7001")).unwrap();
        assert!(!opts.original);
        assert!(!opts.safe);
        assert_eq!(opts.personal_window, 20);
        assert_eq!(opts.accelerated_window, 15);
    }
}
