//! # accelring
//!
//! A from-scratch Rust reproduction of **"Fast Total Ordering for Modern
//! Data Centers"** (Babay & Amir): the Accelerated Ring totally ordered
//! multicast protocol and everything it stands on.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Protocol core | [`core`] | Accelerated Ring + original Totem Ring state machines, flow control, delivery services, wire codec |
//! | Membership | [`membership`] | Totem-style membership with Extended Virtual Synchrony configuration delivery |
//! | Transport | [`transport`] | Single-threaded UDP daemon runtime (separate token/data sockets) |
//! | Groups | [`daemon`] | Client–daemon layer: named groups, open-group semantics, multi-group multicast |
//! | Multi-ring | [`multiring`] | Sharded deployments: shard map, λ-clock merger, elastic resharding, crash recovery |
//! | Replicated KV | [`kv`] | State-machine KV store consuming the total order: cross-shard transactions, exactly-once retries, read-consistency modes |
//! | Simulator | [`sim`] | Deterministic network simulator + the harness regenerating every figure of the paper |
//!
//! ## Quickstart
//!
//! ```
//! use accelring::core::testing::TestNet;
//! use accelring::core::{ProtocolConfig, Service};
//! use bytes::Bytes;
//!
//! let mut net = TestNet::new(3, ProtocolConfig::accelerated(5, 3));
//! net.submit(0, Bytes::from_static(b"event-1"), Service::Agreed);
//! net.submit(2, Bytes::from_static(b"event-2"), Service::Safe);
//! net.run_tokens(12);
//! let orders = net.delivery_orders();
//! assert_eq!(orders[0], orders[1]);
//! assert_eq!(orders[1], orders[2]);
//! ```
//!
//! See the `examples/` directory for runnable demonstrations: a simulated
//! quickstart, the paper's Figure 1 schedule, a replicated key-value store,
//! a real-UDP group-chat cluster, and a partition/merge walk-through.

pub use accelring_core as core;
pub use accelring_daemon as daemon;
pub use accelring_kv as kv;
pub use accelring_membership as membership;
pub use accelring_multiring as multiring;
pub use accelring_sim as sim;
pub use accelring_transport as transport;
