//! The discrete-event simulator: node runtimes (CPU model + dual receive
//! sockets) over the [`Fabric`], driving `accelring-core` participants.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use accelring_core::{
    Action, DataMessage, Delivery, Participant, ProtocolConfig, Ring, Round, Seq, Service, Stats,
    Token,
};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fabric::{Fabric, FabricStats};
use crate::loss::{LossSpec, LossState};
use crate::metrics::LatencyRecorder;
use crate::profiles::{ImplProfile, NetworkProfile};
use crate::time::{SimDuration, SimTime};

/// How application messages are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Each node's sending client injects fixed-size messages at
    /// `aggregate_bps / n` bits per second of clean application data,
    /// mirroring the paper's daemon/Spread benchmarks.
    FixedRate {
        /// Total offered clean-payload rate across all senders.
        aggregate_bps: u64,
    },
    /// Every node's send queue is topped up at each token visit, so each
    /// participant always sends a full personal window — the paper's
    /// library-prototype methodology for probing maximum throughput.
    Saturating,
}

#[derive(Debug)]
enum EventKind {
    DataArrival { node: usize, msg: DataMessage },
    TokenArrival { node: usize, token: Token },
    Wake { node: usize },
    Inject { node: usize },
}

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug)]
struct SimNode {
    participant: Participant,
    token_q: VecDeque<Token>,
    data_q: VecDeque<DataMessage>,
    cpu_free: SimTime,
    loss: LossState,
    rng: StdRng,
    socket_drops: u64,
    inject_interval: SimDuration,
}

/// One delivery observed at node 0, for offline stream processing (the
/// multi-ring merge harness replays these through its merger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Simulated delivery time in nanoseconds.
    pub at_ns: u64,
    /// Token round the message was initiated in (the merge key input).
    pub round: Round,
    /// Ring sequence number of the message.
    pub seq: Seq,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Aggregated outcome counters of a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCounters {
    /// Deliveries (message × receiver pairs) inside the measurement window.
    pub delivered_in_window: u64,
    /// All deliveries over the whole run.
    pub delivered_total: u64,
    /// Data datagrams dropped at full receive sockets.
    pub socket_drops: u64,
    /// Messages dropped by the injected loss model.
    pub loss_drops: u64,
    /// Submissions rejected by full send queues (backpressure).
    pub submit_rejected: u64,
}

/// The simulator: an 8-node (or any-size) ring over a single switch.
///
/// Construct with [`Simulator::new`], then call [`Simulator::run`]. For the
/// paper's experiments use the higher-level [`crate::harness`] API instead.
#[derive(Debug)]
pub struct Simulator {
    nodes: Vec<SimNode>,
    fabric: Fabric,
    events: BinaryHeap<Event>,
    event_seq: u64,
    profile: ImplProfile,
    payload_len: usize,
    service: Service,
    workload: Workload,
    warmup: SimDuration,
    measure: SimDuration,
    horizon: SimTime,
    recorder: LatencyRecorder,
    counters: RunCounters,
    now: SimTime,
    /// Time of the previous token arrival at node 0 and the collected
    /// rotation durations (ns) — the paper's per-round quantity.
    last_rotation_mark: Option<SimTime>,
    rotations_ns: Vec<u64>,
    /// When set, every delivery at node 0 is appended here (enabled by
    /// [`Simulator::with_node0_log`]).
    node0_log: Option<Vec<DeliveryRecord>>,
}

impl Simulator {
    /// Builds a simulator over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `payload_len < 8` (the payload carries an 8-byte inject
    /// timestamp) or `n == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: u16,
        protocol: ProtocolConfig,
        network: NetworkProfile,
        profile: ImplProfile,
        loss: LossSpec,
        workload: Workload,
        payload_len: usize,
        service: Service,
        warmup: SimDuration,
        measure: SimDuration,
        seed: u64,
    ) -> Simulator {
        assert!(payload_len >= 8, "payload must hold an inject timestamp");
        assert!(
            loss.token_rate() == 0.0,
            "the performance simulator has no token-recovery machinery; \
             token-dropping LossSpec::Chaos belongs to the chaos harness"
        );
        let ring = Ring::of_size(n);
        let members = ring.members().to_vec();
        let inject_interval = match workload {
            Workload::FixedRate { aggregate_bps } => {
                let per_node_bps = aggregate_bps as f64 / f64::from(n);
                let msgs_per_sec = per_node_bps / (payload_len as f64 * 8.0);
                SimDuration::from_secs_f64(1.0 / msgs_per_sec)
            }
            Workload::Saturating => SimDuration::ZERO,
        };
        let nodes: Vec<SimNode> = members
            .iter()
            .enumerate()
            .map(|(i, &id)| SimNode {
                participant: Participant::new(id, ring.clone(), protocol)
                    .expect("member of its own ring"),
                token_q: VecDeque::new(),
                data_q: VecDeque::new(),
                cpu_free: SimTime::ZERO,
                loss: LossState::new(loss, &members, i, seed),
                rng: StdRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919)),
                socket_drops: 0,
                inject_interval,
            })
            .collect();
        // Generous drain so in-flight messages settle after injection stops.
        let horizon = SimTime::ZERO + warmup + measure + SimDuration::from_millis(200);
        Simulator {
            fabric: Fabric::new(network, nodes.len()),
            nodes,
            events: BinaryHeap::new(),
            event_seq: 0,
            profile,
            payload_len,
            service,
            workload,
            warmup,
            measure,
            horizon,
            recorder: LatencyRecorder::new(),
            counters: RunCounters::default(),
            now: SimTime::ZERO,
            last_rotation_mark: None,
            rotations_ns: Vec::new(),
            node0_log: None,
        }
    }

    /// Enables recording of every delivery observed at node 0 into
    /// [`SimOutcome::node0_log`] (off by default; the log can be large).
    #[must_use]
    pub fn with_node0_log(mut self) -> Simulator {
        self.node0_log = Some(Vec::new());
        self
    }

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Event {
            time,
            seq: self.event_seq,
            kind,
        });
    }

    /// Runs the simulation to its horizon and returns the results.
    pub fn run(mut self) -> SimOutcome {
        // Bootstrap: the membership algorithm has formed the ring and hands
        // the first token to position 0.
        let ring_id = self.nodes[0].participant.ring().id();
        self.schedule(
            SimTime::ZERO,
            EventKind::TokenArrival {
                node: 0,
                token: Token::initial(ring_id),
            },
        );
        if let Workload::FixedRate { .. } = self.workload {
            for i in 0..self.nodes.len() {
                // Stagger starts to avoid phase lockstep.
                let phase = self.nodes[i].rng.random::<f64>();
                let start = SimTime::ZERO
                    + SimDuration::from_nanos(
                        (self.nodes[i].inject_interval.as_nanos() as f64 * phase) as u64,
                    );
                self.schedule(start, EventKind::Inject { node: i });
            }
        }

        while let Some(event) = self.events.pop() {
            if event.time > self.horizon {
                break;
            }
            self.now = event.time;
            match event.kind {
                EventKind::DataArrival { node, msg } => {
                    let cap = self.fabric.network().data_socket_capacity;
                    let n = &mut self.nodes[node];
                    if n.loss.drops(&msg) {
                        self.counters.loss_drops += 1;
                    } else if n.data_q.len() >= cap {
                        n.socket_drops += 1;
                    } else {
                        n.data_q.push_back(msg);
                        self.try_run(node);
                    }
                }
                EventKind::TokenArrival { node, token } => {
                    if node == 0 {
                        // One full rotation completed each time the token
                        // returns to node 0 (within the measure window).
                        let start = SimTime::ZERO + self.warmup;
                        let stop = start + self.measure;
                        if self.now >= start && self.now < stop {
                            if let Some(prev) = self.last_rotation_mark {
                                self.rotations_ns.push(self.now.since(prev).as_nanos());
                            }
                        }
                        self.last_rotation_mark = Some(self.now);
                    }
                    self.nodes[node].token_q.push_back(token);
                    self.try_run(node);
                }
                EventKind::Wake { node } => self.try_run(node),
                EventKind::Inject { node } => {
                    let inject_stop = SimTime::ZERO + self.warmup + self.measure;
                    if self.now < inject_stop {
                        let payload = self.make_payload(self.now);
                        if self.nodes[node]
                            .participant
                            .submit(payload, self.service)
                            .is_err()
                        {
                            self.counters.submit_rejected += 1;
                        }
                        // Next injection with +-10% jitter.
                        let base = self.nodes[node].inject_interval.as_nanos() as f64;
                        let jitter = 0.9 + 0.2 * self.nodes[node].rng.random::<f64>();
                        let next = self.now + SimDuration::from_nanos((base * jitter) as u64);
                        self.schedule(next, EventKind::Inject { node });
                    }
                }
            }
        }

        let mut stats = Vec::with_capacity(self.nodes.len());
        let mut socket_drops = 0;
        for n in &self.nodes {
            stats.push(*n.participant.stats());
            socket_drops += n.socket_drops;
        }
        self.counters.socket_drops = socket_drops;
        SimOutcome {
            latency: self.recorder,
            counters: self.counters,
            fabric: self.fabric.stats(),
            participant_stats: stats,
            payload_len: self.payload_len,
            measure: self.measure,
            nodes: self.nodes.len(),
            rotations_ns: self.rotations_ns,
            node0_log: self.node0_log.unwrap_or_default(),
        }
    }

    fn make_payload(&self, now: SimTime) -> Bytes {
        let mut buf = vec![0u8; self.payload_len];
        buf[..8].copy_from_slice(&now.as_nanos().to_le_bytes());
        Bytes::from(buf)
    }

    /// Runs the node's CPU if it is free and work is waiting.
    fn try_run(&mut self, idx: usize) {
        let now = self.now;
        if self.nodes[idx].cpu_free > now {
            return; // a Wake is already scheduled for when the CPU frees up
        }
        let has_token = !self.nodes[idx].token_q.is_empty();
        let has_data = !self.nodes[idx].data_q.is_empty();
        if !has_token && !has_data {
            return;
        }
        // Section III-D: read the high-priority socket first; fall back to
        // whichever has traffic.
        let take_token =
            has_token && (!has_data || self.nodes[idx].participant.token_has_priority());

        let mut t = now;
        let mut actions = Vec::new();
        if take_token {
            if let Workload::Saturating = self.workload {
                self.refill(idx, now);
            }
            let token = self.nodes[idx]
                .token_q
                .pop_front()
                .expect("checked non-empty");
            t += self.profile.token_proc_cost;
            self.nodes[idx]
                .participant
                .handle_token(token, &mut actions);
        } else {
            let msg = self.nodes[idx]
                .data_q
                .pop_front()
                .expect("checked non-empty");
            t += self.profile.recv_cost;
            self.nodes[idx].participant.handle_data(msg, &mut actions);
        }

        let n_nodes = self.nodes.len();
        for action in actions {
            match action {
                Action::Multicast(msg) => {
                    t += self.profile.send_cost;
                    let dests: Vec<usize> = (0..n_nodes).filter(|&d| d != idx).collect();
                    let len = msg.wire_len();
                    for (dest, at) in self.fabric.transmit(idx, len, t, &dests) {
                        self.schedule(
                            at,
                            EventKind::DataArrival {
                                node: dest,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                Action::SendToken { to, token } => {
                    t += self.profile.token_send_cost;
                    let dest = self.nodes[idx]
                        .participant
                        .ring()
                        .index_of(to)
                        .expect("successor is a member");
                    let len = token.wire_len();
                    for (d, at) in self.fabric.transmit(idx, len, t, &[dest]) {
                        self.schedule(
                            at,
                            EventKind::TokenArrival {
                                node: d,
                                token: token.clone(),
                            },
                        );
                    }
                }
                Action::Deliver(d) => {
                    t += self.profile.deliver_cost;
                    self.record_delivery(idx, &d, t);
                }
                Action::Discard { .. } => {}
            }
        }

        self.nodes[idx].cpu_free = t;
        self.schedule(t, EventKind::Wake { node: idx });
    }

    fn refill(&mut self, idx: usize, now: SimTime) {
        let want = self.nodes[idx].participant.config().personal_window() as usize;
        while self.nodes[idx].participant.send_queue_len() < want {
            let payload = self.make_payload(now);
            if self.nodes[idx]
                .participant
                .submit(payload, self.service)
                .is_err()
            {
                break;
            }
        }
    }

    fn record_delivery(&mut self, idx: usize, d: &Delivery, at: SimTime) {
        if idx == 0 {
            if let Some(log) = &mut self.node0_log {
                log.push(DeliveryRecord {
                    at_ns: at.as_nanos(),
                    round: d.round,
                    seq: d.seq,
                    payload_len: d.payload.len(),
                });
            }
        }
        self.counters.delivered_total += 1;
        let start = SimTime::ZERO + self.warmup;
        let stop = start + self.measure;
        if at >= start && at < stop {
            self.counters.delivered_in_window += 1;
        }
        let inject = SimTime::from_nanos(u64::from_le_bytes(
            d.payload[..8]
                .try_into()
                .expect("payload holds a timestamp"),
        ));
        if inject >= start && inject < stop {
            self.recorder.record(d.sender, at.since(inject));
        }
    }
}

/// Raw outputs of a simulation run, consumed by the harness.
#[derive(Debug)]
pub struct SimOutcome {
    /// Latency samples (per message × receiver, grouped by sender).
    pub latency: LatencyRecorder,
    /// Run counters.
    pub counters: RunCounters,
    /// Fabric counters.
    pub fabric: FabricStats,
    /// Per-participant protocol counters.
    pub participant_stats: Vec<Stats>,
    /// Payload size used.
    pub payload_len: usize,
    /// Measurement window length.
    pub measure: SimDuration,
    /// Number of nodes.
    pub nodes: usize,
    /// Durations of complete token rotations observed during the
    /// measurement window, in nanoseconds.
    pub rotations_ns: Vec<u64>,
    /// Deliveries observed at node 0, in delivery order (empty unless the
    /// run was built with [`Simulator::with_node0_log`]).
    pub node0_log: Vec<DeliveryRecord>,
}

impl SimOutcome {
    /// Measured clean goodput in bits per second: payload bits delivered to
    /// each receiver inside the measurement window, normalized by the number
    /// of receivers (so it is directly comparable with the offered aggregate
    /// sending rate).
    pub fn goodput_bps(&self) -> f64 {
        let bits = self.counters.delivered_in_window as f64 * self.payload_len as f64 * 8.0;
        bits / self.nodes as f64 / self.measure.as_secs_f64()
    }

    /// Total retransmissions multicast across the ring.
    pub fn retransmissions(&self) -> u64 {
        self.participant_stats
            .iter()
            .map(|s| s.retransmissions_sent)
            .sum()
    }

    /// Total new messages multicast across the ring.
    pub fn messages_sent(&self) -> u64 {
        self.participant_stats.iter().map(|s| s.messages_sent).sum()
    }

    /// Mean token-rotation time during the measurement window — the
    /// quantity the paper's analysis centres on ("the accelerated protocol
    /// takes less time to complete a token round").
    pub fn mean_rotation(&self) -> SimDuration {
        if self.rotations_ns.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.rotations_ns.iter().map(|&v| u128::from(v)).sum();
        SimDuration::from_nanos((sum / self.rotations_ns.len() as u128) as u64)
    }

    /// Retransmission rate: retransmissions per original message (can
    /// exceed 1.0 under heavy loss, as in the paper).
    pub fn retransmission_rate(&self) -> f64 {
        let sent = self.messages_sent();
        if sent == 0 {
            0.0
        } else {
            self.retransmissions() as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelring_core::Variant;

    fn quick_sim(protocol: ProtocolConfig, rate_mbps: u64, service: Service) -> SimOutcome {
        Simulator::new(
            8,
            protocol,
            NetworkProfile::gigabit(),
            ImplProfile::daemon(),
            LossSpec::None,
            Workload::FixedRate {
                aggregate_bps: rate_mbps * 1_000_000,
            },
            1350,
            service,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            42,
        )
        .run()
    }

    #[test]
    fn moderate_rate_is_fully_delivered() {
        let out = quick_sim(ProtocolConfig::accelerated(20, 15), 200, Service::Agreed);
        let goodput = out.goodput_bps();
        assert!(
            (goodput - 200e6).abs() / 200e6 < 0.05,
            "goodput {goodput:.0} should be within 5% of offered 200 Mbps"
        );
        assert_eq!(out.retransmissions(), 0, "no loss, no retransmissions");
        assert_eq!(out.counters.socket_drops, 0);
        assert_eq!(out.fabric.switch_drops, 0);
    }

    #[test]
    fn latency_samples_are_collected() {
        let out = quick_sim(ProtocolConfig::accelerated(20, 15), 100, Service::Agreed);
        assert!(!out.latency.is_empty());
        let stats = out.latency.stats();
        assert!(stats.mean > SimDuration::ZERO);
        assert!(stats.max >= stats.p99);
        assert!(stats.p99 >= stats.p50);
    }

    #[test]
    fn accelerated_beats_original_latency_at_same_rate() {
        // The paper's headline claim, at a moderate 1-gigabit rate.
        let orig = quick_sim(ProtocolConfig::original(20), 300, Service::Agreed);
        let accel = quick_sim(ProtocolConfig::accelerated(20, 15), 300, Service::Agreed);
        let lo = orig.latency.stats().mean;
        let la = accel.latency.stats().mean;
        assert!(
            la < lo,
            "accelerated mean latency {la} must beat original {lo}"
        );
    }

    #[test]
    fn safe_latency_exceeds_agreed_latency() {
        let agreed = quick_sim(ProtocolConfig::accelerated(20, 15), 200, Service::Agreed);
        let safe = quick_sim(ProtocolConfig::accelerated(20, 15), 200, Service::Safe);
        assert!(safe.latency.stats().mean > agreed.latency.stats().mean);
    }

    #[test]
    fn saturating_workload_reaches_high_goodput() {
        let out = Simulator::new(
            8,
            ProtocolConfig::accelerated(30, 30),
            NetworkProfile::gigabit(),
            ImplProfile::library(),
            LossSpec::None,
            Workload::Saturating,
            1350,
            Service::Agreed,
            SimDuration::from_millis(30),
            SimDuration::from_millis(80),
            7,
        )
        .run();
        let goodput = out.goodput_bps();
        assert!(
            goodput > 800e6,
            "library saturating run should approach line rate, got {goodput:.0}"
        );
    }

    #[test]
    fn loss_causes_retransmissions_and_recovery() {
        let out = Simulator::new(
            8,
            ProtocolConfig::accelerated(20, 15),
            NetworkProfile::ten_gigabit(),
            ImplProfile::daemon(),
            LossSpec::bernoulli(0.05),
            Workload::FixedRate {
                aggregate_bps: 200_000_000,
            },
            1350,
            Service::Agreed,
            SimDuration::from_millis(20),
            SimDuration::from_millis(50),
            3,
        )
        .run();
        assert!(out.counters.loss_drops > 0, "loss model must fire");
        assert!(out.retransmissions() > 0, "losses must be repaired");
        // Goodput still matches the offered rate: recovery works.
        let goodput = out.goodput_bps();
        assert!(
            (goodput - 200e6).abs() / 200e6 < 0.08,
            "goodput {goodput:.0} should stay near offered rate under 5% loss"
        );
    }

    #[test]
    fn node0_log_records_ordered_deliveries() {
        let out = Simulator::new(
            4,
            ProtocolConfig::accelerated(20, 15),
            NetworkProfile::gigabit(),
            ImplProfile::daemon(),
            LossSpec::None,
            Workload::FixedRate {
                aggregate_bps: 50_000_000,
            },
            1350,
            Service::Agreed,
            SimDuration::from_millis(10),
            SimDuration::from_millis(30),
            42,
        )
        .with_node0_log()
        .run();
        assert!(!out.node0_log.is_empty(), "log must capture deliveries");
        // Node 0 delivers in ring order: seqs strictly increase, rounds
        // and timestamps never decrease.
        for w in out.node0_log.windows(2) {
            assert!(w[1].seq > w[0].seq);
            assert!(w[1].round >= w[0].round);
            assert!(w[1].at_ns >= w[0].at_ns);
        }
        // Off by default.
        let plain = quick_sim(ProtocolConfig::accelerated(20, 15), 50, Service::Agreed);
        assert!(plain.node0_log.is_empty());
    }

    #[test]
    fn deterministic_runs() {
        let a = quick_sim(ProtocolConfig::accelerated(20, 15), 150, Service::Agreed);
        let b = quick_sim(ProtocolConfig::accelerated(20, 15), 150, Service::Agreed);
        assert_eq!(a.counters.delivered_total, b.counters.delivered_total);
        assert_eq!(a.latency.stats(), b.latency.stats());
    }

    #[test]
    fn accelerated_rotations_are_shorter() {
        // The mechanism behind every figure: at the same offered rate the
        // accelerated token completes rotations faster.
        let orig = quick_sim(ProtocolConfig::original(20), 400, Service::Agreed);
        let accel = quick_sim(ProtocolConfig::accelerated(20, 15), 400, Service::Agreed);
        assert!(!orig.rotations_ns.is_empty() && !accel.rotations_ns.is_empty());
        let ro = orig.mean_rotation();
        let ra = accel.mean_rotation();
        assert!(
            ra.as_nanos() * 3 < ro.as_nanos() * 2,
            "accelerated rotation {ra} must be well below original {ro}"
        );
    }

    #[test]
    fn overload_saturates_gracefully() {
        // Offer twice what the spread profile can carry on 10Gb: goodput
        // plateaus at the capacity, backpressure rejects the excess, and
        // the simulator stays healthy.
        let cfg = ProtocolConfig::builder()
            .personal_window(20)
            .accelerated_window(15)
            .global_window(160)
            .max_send_queue(256)
            .build()
            .unwrap();
        let out = Simulator::new(
            8,
            cfg,
            NetworkProfile::ten_gigabit(),
            ImplProfile::spread(),
            LossSpec::None,
            Workload::FixedRate {
                aggregate_bps: 5_000_000_000,
            },
            1350,
            Service::Agreed,
            SimDuration::from_millis(20),
            SimDuration::from_millis(60),
            11,
        )
        .run();
        let goodput = out.goodput_bps();
        assert!(
            goodput > 1.5e9 && goodput < 3.0e9,
            "plateau, got {goodput:.0}"
        );
        assert!(
            out.counters.submit_rejected > 0,
            "backpressure must reject excess offered load"
        );
    }

    #[test]
    fn shallow_socket_buffers_drop_but_recover() {
        let mut network = NetworkProfile::ten_gigabit();
        network.data_socket_capacity = 8; // absurdly small kernel buffer
        let out = Simulator::new(
            8,
            ProtocolConfig::accelerated(30, 30),
            network,
            ImplProfile::spread(),
            LossSpec::None,
            Workload::Saturating,
            1350,
            Service::Agreed,
            SimDuration::from_millis(20),
            SimDuration::from_millis(60),
            5,
        )
        .run();
        assert!(out.counters.socket_drops > 0, "tiny buffers must overflow");
        assert!(
            out.retransmissions() > 0,
            "socket drops must be repaired by retransmission"
        );
        let goodput = out.goodput_bps();
        assert!(
            goodput > 1.0e9,
            "recovery keeps most goodput, got {goodput:.0}"
        );
    }

    #[test]
    fn token_socket_is_never_dropped() {
        // Even with overloaded data sockets the token flows (separate
        // socket, paper Section IV-A4) and rounds keep advancing.
        let mut network = NetworkProfile::ten_gigabit();
        network.data_socket_capacity = 8;
        let out = Simulator::new(
            8,
            ProtocolConfig::accelerated(30, 30),
            network,
            ImplProfile::spread(),
            LossSpec::None,
            Workload::Saturating,
            1350,
            Service::Agreed,
            SimDuration::from_millis(20),
            SimDuration::from_millis(60),
            5,
        )
        .run();
        let tokens: u64 = out
            .participant_stats
            .iter()
            .map(|s| s.tokens_processed)
            .sum();
        assert!(tokens > 1000, "token kept circulating, got {tokens}");
    }

    #[test]
    fn original_variant_never_sends_post_token() {
        let out = quick_sim(
            ProtocolConfig::builder()
                .variant(Variant::Original)
                .personal_window(20)
                .accelerated_window(0)
                .global_window(160)
                .build()
                .unwrap(),
            200,
            Service::Agreed,
        );
        assert!(out.counters.delivered_total > 0);
    }
}
