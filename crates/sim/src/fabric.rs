//! Timing model of the physical network: per-node NIC egress, an
//! output-queued store-and-forward switch with finite per-port buffers, and
//! link propagation.
//!
//! This is the substrate substitution for the paper's hardware testbed (see
//! DESIGN.md §1). The three effects that drive the paper's results are all
//! here:
//!
//! 1. **NIC serialization** — a node's transmissions (including the token)
//!    leave one at a time at line rate, so the token queues behind data the
//!    node has already handed to the kernel.
//! 2. **Switch output queues** — frames from several simultaneous senders
//!    to the same destination are buffered and serialized at the egress
//!    port. This buffering is exactly what lets the Accelerated Ring
//!    protocol overlap senders without loss.
//! 3. **Finite buffers** — sustained oversubscription of a port overflows
//!    its buffer and frames are dropped.

use crate::profiles::NetworkProfile;
use crate::time::{serialization_time, SimDuration, SimTime};

/// Counters for the whole fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Datagrams accepted and forwarded (per destination).
    pub forwarded: u64,
    /// Datagrams dropped at a full switch egress buffer (per destination).
    pub switch_drops: u64,
    /// Payload-carrying bytes pushed through egress ports.
    pub bytes_forwarded: u64,
}

/// The single-switch fabric connecting `n` nodes.
#[derive(Debug, Clone)]
pub struct Fabric {
    net: NetworkProfile,
    /// When each node's NIC egress becomes free.
    nic_free: Vec<SimTime>,
    /// When each destination's switch egress port becomes free.
    port_free: Vec<SimTime>,
    stats: FabricStats,
}

impl Fabric {
    /// Creates the fabric for `n` nodes with the given network profile.
    pub fn new(net: NetworkProfile, n: usize) -> Fabric {
        Fabric {
            net,
            nic_free: vec![SimTime::ZERO; n],
            port_free: vec![SimTime::ZERO; n],
            stats: FabricStats::default(),
        }
    }

    /// The network profile in force.
    pub fn network(&self) -> &NetworkProfile {
        &self.net
    }

    /// Fabric counters so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Serialization time of a datagram of `datagram_len` bytes (protocol
    /// header + payload) on this network, including frame overhead.
    pub fn serialization(&self, datagram_len: usize) -> SimDuration {
        serialization_time(self.net.wire_bytes(datagram_len), self.net.bandwidth_bps)
    }

    /// Transmits a datagram handed to node `from`'s NIC at time `handoff`
    /// toward every destination in `dests`. Returns the arrival time at
    /// each destination that was not dropped by a full switch buffer.
    ///
    /// Multicast costs one ingress serialization and one egress
    /// serialization per destination, exactly like an output-queued switch
    /// replicating a frame.
    pub fn transmit(
        &mut self,
        from: usize,
        datagram_len: usize,
        handoff: SimTime,
        dests: &[usize],
    ) -> Vec<(usize, SimTime)> {
        let ser = self.serialization(datagram_len);
        let nic_start = handoff.max(self.nic_free[from]);
        let nic_done = nic_start + ser;
        self.nic_free[from] = nic_done;
        let at_switch = nic_done + self.net.link_latency;

        let mut arrivals = Vec::with_capacity(dests.len());
        for &dest in dests {
            debug_assert_ne!(dest, from, "nodes do not send to themselves");
            // Backlog currently queued for this egress port, expressed in
            // bytes at line rate.
            let backlog = self.port_free[dest].since(at_switch);
            let backlog_bytes = (backlog.as_nanos() as u128 * self.net.bandwidth_bps as u128
                / 8_000_000_000) as u64;
            if backlog_bytes > self.net.switch_buffer_bytes {
                self.stats.switch_drops += 1;
                continue;
            }
            let egress_start = at_switch.max(self.port_free[dest]);
            let egress_done = egress_start + ser;
            self.port_free[dest] = egress_done;
            self.stats.forwarded += 1;
            self.stats.bytes_forwarded += datagram_len as u64;
            arrivals.push((dest, egress_done + self.net.link_latency));
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(NetworkProfile::gigabit(), 4)
    }

    #[test]
    fn single_unicast_timing() {
        let mut f = fabric();
        let t0 = SimTime::from_nanos(1_000);
        let arr = f.transmit(0, 1390, t0, &[1]);
        assert_eq!(arr.len(), 1);
        let ser = f.serialization(1390);
        // handoff + nic serialization + link + egress serialization + link.
        let expected = t0 + ser + f.network().link_latency + ser + f.network().link_latency;
        assert_eq!(arr[0], (1, expected));
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let mut f = fabric();
        let t0 = SimTime::ZERO;
        let a1 = f.transmit(0, 1390, t0, &[1])[0].1;
        let a2 = f.transmit(0, 1390, t0, &[1])[0].1;
        let ser = f.serialization(1390);
        assert_eq!(
            a2.since(a1),
            ser,
            "second frame leaves one serialization later"
        );
    }

    #[test]
    fn token_queues_behind_data_on_the_nic() {
        let mut f = fabric();
        let t0 = SimTime::ZERO;
        // Hand three data frames to the NIC, then a small token.
        for _ in 0..3 {
            f.transmit(0, 1390, t0, &[1]);
        }
        let token_arrival = f.transmit(0, 60, t0, &[1])[0].1;
        let data_ser = f.serialization(1390);
        // The token could not start serializing before 3 data frames done.
        assert!(token_arrival.since(SimTime::ZERO) > data_ser.times(3));
    }

    #[test]
    fn multicast_replicates_to_each_port() {
        let mut f = fabric();
        let arr = f.transmit(0, 1390, SimTime::ZERO, &[1, 2, 3]);
        assert_eq!(arr.len(), 3);
        // Distinct ports drain in parallel: all destinations receive at the
        // same time.
        assert_eq!(arr[0].1, arr[1].1);
        assert_eq!(arr[1].1, arr[2].1);
        assert_eq!(f.stats().forwarded, 3);
    }

    #[test]
    fn two_senders_share_one_egress_port() {
        let mut f = fabric();
        // Nodes 0 and 1 send to node 2 at the same instant: the second
        // frame queues at port 2.
        let a = f.transmit(0, 1390, SimTime::ZERO, &[2])[0].1;
        let b = f.transmit(1, 1390, SimTime::ZERO, &[2])[0].1;
        let ser = f.serialization(1390);
        assert_eq!(b.since(a), ser, "egress port serializes the burst");
    }

    #[test]
    fn switch_buffer_overflow_drops() {
        let mut net = NetworkProfile::gigabit();
        net.switch_buffer_bytes = 3 * 1456; // room for ~3 frames
        let mut f = Fabric::new(net, 4);
        let mut delivered = 0;
        // Node 0 and node 1 flood node 2 instantaneously; port 2 can only
        // queue a few frames.
        for _ in 0..20 {
            delivered += f.transmit(0, 1390, SimTime::ZERO, &[2]).len();
            delivered += f.transmit(1, 1390, SimTime::ZERO, &[2]).len();
        }
        assert!(delivered < 40, "some frames must be dropped");
        assert_eq!(f.stats().switch_drops as usize, 40 - delivered);
    }

    #[test]
    fn large_datagram_serializes_longer() {
        let f = Fabric::new(NetworkProfile::ten_gigabit(), 2);
        let small = f.serialization(1390);
        let big = f.serialization(8890);
        assert!(big > small.times(6), "8850B datagram spans 7 frames");
        assert!(big < small.times(8));
    }

    #[test]
    fn stats_track_bytes() {
        let mut f = fabric();
        f.transmit(0, 1000, SimTime::ZERO, &[1, 2]);
        assert_eq!(f.stats().bytes_forwarded, 2000);
    }
}
