//! Experiment harness: declarative specifications for the paper's
//! experiments, sweep helpers, and table formatting shared by every figure
//! binary in `accelring-bench`.

use accelring_core::{ProtocolConfig, Service};

use crate::loss::LossSpec;
use crate::metrics::LatencyStats;
use crate::profiles::{ImplProfile, NetworkProfile};
use crate::sim::{Simulator, Workload};
use crate::time::SimDuration;

/// A complete experiment specification: one point on one curve of one
/// figure.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Ring size; the paper uses 8 servers everywhere.
    pub nodes: u16,
    /// Clean application payload bytes per message (1350 or 8850).
    pub payload_len: usize,
    /// Delivery service under test.
    pub service: Service,
    /// Protocol configuration (variant + windows).
    pub protocol: ProtocolConfig,
    /// Network profile (1 Gb or 10 Gb).
    pub network: NetworkProfile,
    /// Implementation profile (library / daemon / Spread).
    pub impl_profile: ImplProfile,
    /// Injected loss.
    pub loss: LossSpec,
    /// Message generation.
    pub workload: Workload,
    /// Time excluded from measurement at the start of the run.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// RNG seed (loss and injection jitter).
    pub seed: u64,
}

impl ExperimentSpec {
    /// The baseline configuration every figure starts from: 8 nodes,
    /// 1350-byte payloads, Agreed delivery, accelerated protocol with the
    /// paper's recommended windows, gigabit network, daemon profile, no
    /// loss, 100 Mbps offered.
    pub fn baseline() -> ExperimentSpec {
        ExperimentSpec {
            nodes: 8,
            payload_len: 1350,
            service: Service::Agreed,
            protocol: ProtocolConfig::accelerated(20, 15),
            network: NetworkProfile::gigabit(),
            impl_profile: ImplProfile::daemon(),
            loss: LossSpec::None,
            workload: Workload::FixedRate {
                aggregate_bps: 100_000_000,
            },
            warmup: SimDuration::from_millis(50),
            measure: SimDuration::from_millis(200),
            seed: 42,
        }
    }

    /// Replaces the offered aggregate rate.
    pub fn at_rate_mbps(mut self, mbps: u64) -> ExperimentSpec {
        self.workload = Workload::FixedRate {
            aggregate_bps: mbps * 1_000_000,
        };
        self
    }

    /// Runs the experiment.
    pub fn run(&self) -> ExperimentResult {
        let outcome = Simulator::new(
            self.nodes,
            self.protocol,
            self.network,
            self.impl_profile,
            self.loss,
            self.workload,
            self.payload_len,
            self.service,
            self.warmup,
            self.measure,
            self.seed,
        )
        .run();
        ExperimentResult {
            goodput_bps: outcome.goodput_bps(),
            latency: outcome.latency.stats(),
            retransmissions: outcome.retransmissions(),
            retransmission_rate: outcome.retransmission_rate(),
            loss_drops: outcome.counters.loss_drops,
            socket_drops: outcome.counters.socket_drops,
            switch_drops: outcome.fabric.switch_drops,
            submit_rejected: outcome.counters.submit_rejected,
            delivered_total: outcome.counters.delivered_total,
        }
    }
}

/// Aggregated measurements from one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentResult {
    /// Measured clean goodput (bits/second of application payload,
    /// normalized per receiver).
    pub goodput_bps: f64,
    /// Delivery-latency statistics.
    pub latency: LatencyStats,
    /// Retransmissions multicast.
    pub retransmissions: u64,
    /// Retransmissions per original message.
    pub retransmission_rate: f64,
    /// Messages dropped by the injected loss model.
    pub loss_drops: u64,
    /// Messages dropped at full receive sockets.
    pub socket_drops: u64,
    /// Frames dropped at full switch buffers.
    pub switch_drops: u64,
    /// Submissions rejected by send-queue backpressure.
    pub submit_rejected: u64,
    /// Total (message × receiver) deliveries.
    pub delivered_total: u64,
}

impl ExperimentResult {
    /// Goodput in megabits per second.
    pub fn goodput_mbps(&self) -> f64 {
        self.goodput_bps / 1e6
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean.as_micros_f64()
    }
}

/// One labelled point of a figure: offered rate plus the measurement.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// The x-axis value (offered rate in Mbps, loss percentage, ring
    /// distance — figure dependent).
    pub x: f64,
    /// The measurement at this x.
    pub result: ExperimentResult,
}

/// A named series of points (e.g. "Spread original" in Figure 2).
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Sweeps offered rates (in Mbps), producing the latency-vs-throughput
    /// profile the paper plots in Figures 2-8.
    pub fn sweep_rates(label: &str, base: &ExperimentSpec, rates_mbps: &[u64]) -> Curve {
        let points = rates_mbps
            .iter()
            .map(|&mbps| CurvePoint {
                x: mbps as f64,
                result: base.clone().at_rate_mbps(mbps).run(),
            })
            .collect();
        Curve {
            label: label.to_string(),
            points,
        }
    }

    /// Finds the maximum sustainable goodput by running the saturating
    /// workload (library methodology) or a high offered rate (daemon
    /// methodology).
    pub fn max_throughput(base: &ExperimentSpec) -> ExperimentResult {
        let mut spec = base.clone();
        spec.workload = Workload::Saturating;
        spec.run()
    }
}

/// Renders curves as an aligned text table, one row per x value:
/// `x  <curve1 goodput> <curve1 latency>  <curve2 goodput> ...`.
///
/// This is the output format of every figure binary; EXPERIMENTS.md embeds
/// these tables directly.
pub fn format_table(title: &str, x_label: &str, curves: &[Curve]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{x_label:>12}"));
    for c in curves {
        out.push_str(&format!(
            " | {:>20} {:>12} {:>12}",
            format!("{} Mbps", c.label),
            "mean us",
            "w5% us"
        ));
    }
    out.push('\n');
    let rows = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = curves
            .iter()
            .find_map(|c| c.points.get(i).map(|p| p.x))
            .unwrap_or(0.0);
        out.push_str(&format!("{x:>12.1}"));
        for c in curves {
            match c.points.get(i) {
                Some(p) => out.push_str(&format!(
                    " | {:>20.1} {:>12.1} {:>12.1}",
                    p.result.goodput_mbps(),
                    p.result.latency.mean.as_micros_f64(),
                    p.result.latency.worst5_mean.as_micros_f64(),
                )),
                None => out.push_str(&format!(" | {:>20} {:>12} {:>12}", "-", "-", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_baseline() -> ExperimentSpec {
        let mut spec = ExperimentSpec::baseline();
        spec.warmup = SimDuration::from_millis(20);
        spec.measure = SimDuration::from_millis(60);
        spec
    }

    #[test]
    fn baseline_runs_and_delivers() {
        let r = fast_baseline().run();
        assert!(r.delivered_total > 0);
        assert!(r.goodput_mbps() > 90.0 && r.goodput_mbps() < 110.0);
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn at_rate_changes_offered_load() {
        let r = fast_baseline().at_rate_mbps(300).run();
        assert!(r.goodput_mbps() > 270.0, "got {}", r.goodput_mbps());
    }

    #[test]
    fn sweep_produces_monotone_x() {
        let curve = Curve::sweep_rates("test", &fast_baseline(), &[100, 200]);
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[0].x < curve.points[1].x);
        assert!(curve.points[1].result.goodput_mbps() > curve.points[0].result.goodput_mbps());
    }

    #[test]
    fn max_throughput_exceeds_fixed_rates() {
        let mut spec = fast_baseline();
        spec.protocol = ProtocolConfig::accelerated(30, 30);
        spec.impl_profile = ImplProfile::library();
        let max = Curve::max_throughput(&spec);
        assert!(
            max.goodput_mbps() > 700.0,
            "saturated gigabit run reached only {:.0} Mbps",
            max.goodput_mbps()
        );
    }

    #[test]
    fn format_table_shape() {
        let curve = Curve::sweep_rates("accel", &fast_baseline(), &[100]);
        let text = format_table("Figure X", "Mbps", &[curve]);
        assert!(text.contains("Figure X"));
        assert!(text.lines().count() >= 3);
    }
}
