//! # accelring-sim
//!
//! A deterministic discrete-event simulator standing in for the hardware
//! testbed of "Fast Total Ordering for Modern Data Centers" (8 servers on a
//! 1-gigabit or 10-gigabit switch), plus the experiment harness that
//! regenerates every figure of the paper's evaluation.
//!
//! ## What is modelled
//!
//! * **NIC egress serialization** at line rate — the token queues behind
//!   data already handed to the kernel, which is what paces token rotation.
//! * **An output-queued switch** with per-port buffers — the buffering that
//!   the Accelerated Ring protocol exploits to overlap senders.
//! * **Per-node single-core CPU** with calibrated per-operation costs for
//!   the paper's three implementations (library / daemon / Spread).
//! * **Dual receive sockets** (token and data on separate ports) read in
//!   the priority order of Section III-D.
//! * **Receiver-side loss injection** reproducing the Section IV-A-4
//!   experiments.
//!
//! ## Example
//!
//! ```
//! use accelring_sim::harness::ExperimentSpec;
//! use accelring_sim::time::SimDuration;
//!
//! let mut spec = ExperimentSpec::baseline();
//! spec.warmup = SimDuration::from_millis(10);
//! spec.measure = SimDuration::from_millis(40);
//! let result = spec.at_rate_mbps(150).run();
//! assert!(result.goodput_mbps() > 140.0);
//! assert!(result.latency.mean.as_micros_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod harness;
pub mod loss;
pub mod metrics;
pub mod profiles;
pub mod sim;
pub mod time;

pub use fabric::{Fabric, FabricStats};
pub use harness::{Curve, CurvePoint, ExperimentResult, ExperimentSpec};
pub use loss::{LossSpec, LossState};
pub use metrics::{LatencyRecorder, LatencyStats};
pub use profiles::{ImplProfile, NetworkProfile};
pub use sim::{DeliveryRecord, RunCounters, SimOutcome, Simulator, Workload};
pub use time::{SimDuration, SimTime};
