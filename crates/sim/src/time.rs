//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds (fractional allowed).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be >= 0");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in the span (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in the span (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by an integer factor.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

/// Serialization time of `bytes` at `bits_per_second` on the wire.
pub fn serialization_time(bytes: usize, bits_per_second: u64) -> SimDuration {
    let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_second as u128;
    SimDuration::from_nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let t2 = t + SimDuration::from_nanos(50);
        assert_eq!(t2.as_nanos(), 150);
        assert_eq!(t2.since(t).as_nanos(), 50);
        assert_eq!(t.since(t2), SimDuration::ZERO, "saturates at zero");
        assert_eq!(t.max(t2), t2);
    }

    #[test]
    fn constructors() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros(5).times(3).as_nanos(), 15_000);
    }

    #[test]
    fn serialization_1g() {
        // 1456 bytes at 1 Gbps = 11.648 microseconds.
        let d = serialization_time(1456, 1_000_000_000);
        assert_eq!(d.as_nanos(), 11_648);
    }

    #[test]
    fn serialization_10g() {
        let d = serialization_time(1456, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1_164);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.0us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.00ms");
        assert_eq!(SimDuration::from_secs_f64(2.0).to_string(), "2.000s");
        assert!(!SimTime::ZERO.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "duration must be >= 0")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
