//! Latency and throughput statistics for experiment runs.

use std::collections::BTreeMap;

use accelring_core::ParticipantId;

use crate::time::SimDuration;

/// Aggregated latency statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples aggregated.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
    /// Mean over the worst (highest-latency) 5 % of messages *per sender*,
    /// averaged across senders — the dashed-line metric of Figure 9.
    pub worst5_mean: SimDuration,
}

impl LatencyStats {
    /// Statistics over an empty sample set (all zeros).
    pub fn empty() -> LatencyStats {
        LatencyStats {
            count: 0,
            mean: SimDuration::ZERO,
            p50: SimDuration::ZERO,
            p95: SimDuration::ZERO,
            p99: SimDuration::ZERO,
            max: SimDuration::ZERO,
            worst5_mean: SimDuration::ZERO,
        }
    }
}

/// Collects per-(message, receiver) latency samples, grouped by sender.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    by_sender: BTreeMap<ParticipantId, Vec<u64>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Records one delivery latency for a message from `sender`.
    pub fn record(&mut self, sender: ParticipantId, latency: SimDuration) {
        self.by_sender
            .entry(sender)
            .or_default()
            .push(latency.as_nanos());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.by_sender.values().map(Vec::len).sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Computes the aggregate statistics.
    pub fn stats(&self) -> LatencyStats {
        let mut all: Vec<u64> = self.by_sender.values().flatten().copied().collect();
        if all.is_empty() {
            return LatencyStats::empty();
        }
        all.sort_unstable();
        let count = all.len() as u64;
        let sum: u128 = all.iter().map(|&v| u128::from(v)).sum();
        let mean = (sum / u128::from(count)) as u64;
        let pct = |p: f64| -> u64 {
            let idx = ((all.len() as f64 - 1.0) * p).round() as usize;
            all[idx]
        };

        // Worst 5 % per sender, averaged over all of those samples.
        let mut worst_sum: u128 = 0;
        let mut worst_count: u128 = 0;
        for samples in self.by_sender.values() {
            if samples.is_empty() {
                continue;
            }
            let mut s = samples.clone();
            s.sort_unstable();
            let tail = (s.len() / 20).max(1);
            for &v in &s[s.len() - tail..] {
                worst_sum += u128::from(v);
                worst_count += 1;
            }
        }
        let worst5_mean = worst_sum.checked_div(worst_count).unwrap_or(0) as u64;

        LatencyStats {
            count,
            mean: SimDuration::from_nanos(mean),
            p50: SimDuration::from_nanos(pct(0.50)),
            p95: SimDuration::from_nanos(pct(0.95)),
            p99: SimDuration::from_nanos(pct(0.99)),
            max: SimDuration::from_nanos(all[all.len() - 1]),
            worst5_mean: SimDuration::from_nanos(worst5_mean),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u16) -> ParticipantId {
        ParticipantId::new(i)
    }

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        let s = r.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimDuration::ZERO);
    }

    #[test]
    fn single_sample() {
        let mut r = LatencyRecorder::new();
        r.record(pid(0), SimDuration::from_micros(100));
        let s = r.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, SimDuration::from_micros(100));
        assert_eq!(s.p50, SimDuration::from_micros(100));
        assert_eq!(s.max, SimDuration::from_micros(100));
        assert_eq!(s.worst5_mean, SimDuration::from_micros(100));
    }

    #[test]
    fn mean_and_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(pid(0), SimDuration::from_micros(i));
        }
        let s = r.stats();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean.as_micros_f64(), 50.5);
        // Index round((100-1)*0.5) = 50 (0-based) holds the value 51.
        assert_eq!(s.p50.as_micros_f64(), 51.0);
        assert_eq!(s.p95.as_micros_f64(), 95.0);
        assert_eq!(s.max.as_micros_f64(), 100.0);
        // Worst 5 of 100: 96..=100, mean 98.
        assert_eq!(s.worst5_mean.as_micros_f64(), 98.0);
    }

    #[test]
    fn worst5_is_per_sender() {
        let mut r = LatencyRecorder::new();
        // Sender 0: twenty fast samples plus one slow one.
        for _ in 0..20 {
            r.record(pid(0), SimDuration::from_micros(10));
        }
        r.record(pid(0), SimDuration::from_micros(1000));
        // Sender 1: uniformly fast.
        for _ in 0..21 {
            r.record(pid(1), SimDuration::from_micros(10));
        }
        let s = r.stats();
        // Sender 0's worst 5% (1 sample) = 1000; sender 1's = 10.
        // Average of the two pools (one sample each) = 505.
        assert_eq!(s.worst5_mean.as_micros_f64(), 505.0);
    }

    #[test]
    fn len_counts_all_senders() {
        let mut r = LatencyRecorder::new();
        r.record(pid(0), SimDuration::from_micros(1));
        r.record(pid(1), SimDuration::from_micros(2));
        r.record(pid(1), SimDuration::from_micros(3));
        assert_eq!(r.len(), 3);
    }
}
