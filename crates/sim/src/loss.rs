//! Receiver-side loss models for the Section IV-A-4 experiments and the
//! chaos harness.
//!
//! The paper instruments each daemon to randomly drop a percentage of the
//! data messages it receives. The paper's experiments never drop tokens —
//! token loss is the membership algorithm's business — and the performance
//! models here ([`LossSpec::Bernoulli`], [`LossSpec::FromDistance`],
//! [`LossSpec::Burst`]) keep that behaviour. The [`LossSpec::Chaos`]
//! composite additionally drops *tokens* with an independent Bernoulli
//! probability ([`LossState::drops_token`]); it is rejected by the
//! performance simulator (which has no token-recovery machinery) and is
//! consumed by the `accelring-chaos` harness, which drives the full
//! membership stack where token loss is survivable. Because drops happen
//! independently at each of the 8 daemons, the system-wide retransmission
//! rate is much higher than the per-daemon loss rate, which is what makes
//! these experiments demanding.

use accelring_core::{DataMessage, ParticipantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Declarative description of the loss to inject, part of an experiment
/// specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossSpec {
    /// No injected loss.
    None,
    /// Every daemon drops each received data message independently with
    /// this probability (`0.0..=1.0`). Applies to retransmissions too,
    /// exactly like the paper ("retransmissions may also be lost").
    Bernoulli {
        /// Per-receive drop probability.
        rate: f64,
    },
    /// Each daemon drops messages *sent by the daemon `distance` positions
    /// before it on the ring* with probability `rate` (the Figure 13
    /// experiment).
    FromDistance {
        /// Ring distance between the loser and the daemon it loses from.
        distance: usize,
        /// Drop probability for matching messages.
        rate: f64,
    },
    /// Bursty loss (Gilbert–Elliott): each receiver alternates between a
    /// good state (loss `good_rate`) and a bad state (loss `bad_rate`),
    /// switching with the given per-message transition probabilities.
    /// Models the correlated drops of an overrun buffer better than
    /// independent Bernoulli loss.
    Burst {
        /// Drop probability in the good state.
        good_rate: f64,
        /// Drop probability in the bad state.
        bad_rate: f64,
        /// Per-message probability of entering the bad state.
        good_to_bad: f64,
        /// Per-message probability of leaving the bad state.
        bad_to_good: f64,
    },
    /// The chaos-harness composite: Gilbert–Elliott data loss *plus*
    /// independent Bernoulli token loss — the one model where tokens are
    /// droppable. With `good_rate == bad_rate` the data half degenerates to
    /// plain Bernoulli loss.
    Chaos {
        /// Data-message drop probability in the good state.
        good_rate: f64,
        /// Data-message drop probability in the bad state.
        bad_rate: f64,
        /// Per-message probability of entering the bad state.
        good_to_bad: f64,
        /// Per-message probability of leaving the bad state.
        bad_to_good: f64,
        /// Per-receive probability of dropping a token.
        token_rate: f64,
    },
}

impl LossSpec {
    /// Convenience constructor for [`LossSpec::Bernoulli`].
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `0.0..=1.0`.
    pub fn bernoulli(rate: f64) -> LossSpec {
        assert!((0.0..=1.0).contains(&rate), "rate must be within 0..=1");
        if rate == 0.0 {
            LossSpec::None
        } else {
            LossSpec::Bernoulli { rate }
        }
    }

    /// Convenience constructor for [`LossSpec::Chaos`] with uncorrelated
    /// (Bernoulli) data loss at `data_rate` and token loss at `token_rate`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `0.0..=1.0`.
    pub fn chaos(data_rate: f64, token_rate: f64) -> LossSpec {
        assert!(
            (0.0..=1.0).contains(&data_rate) && (0.0..=1.0).contains(&token_rate),
            "rates must be within 0..=1"
        );
        LossSpec::Chaos {
            good_rate: data_rate,
            bad_rate: data_rate,
            good_to_bad: 0.0,
            bad_to_good: 1.0,
            token_rate,
        }
    }

    /// Convenience constructor for [`LossSpec::Chaos`] with bursty
    /// (Gilbert–Elliott) data loss and Bernoulli token loss.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `0.0..=1.0`.
    pub fn chaos_burst(
        good_rate: f64,
        bad_rate: f64,
        good_to_bad: f64,
        bad_to_good: f64,
        token_rate: f64,
    ) -> LossSpec {
        for p in [good_rate, bad_rate, good_to_bad, bad_to_good, token_rate] {
            assert!((0.0..=1.0).contains(&p), "rates must be within 0..=1");
        }
        LossSpec::Chaos {
            good_rate,
            bad_rate,
            good_to_bad,
            bad_to_good,
            token_rate,
        }
    }

    /// The probability this model drops a received token (zero for every
    /// model except [`LossSpec::Chaos`]).
    pub fn token_rate(&self) -> f64 {
        match *self {
            LossSpec::Chaos { token_rate, .. } => token_rate,
            _ => 0.0,
        }
    }
}

/// Per-receiver loss state instantiated from a [`LossSpec`].
#[derive(Debug, Clone)]
pub struct LossState {
    spec: LossSpec,
    /// The sender this receiver loses from, for `FromDistance`.
    lossy_sender: Option<ParticipantId>,
    /// Whether a `Burst` receiver is currently in the bad state.
    in_bad_state: bool,
    rng: StdRng,
    dropped: u64,
    seen: u64,
    tokens_dropped: u64,
    tokens_seen: u64,
}

impl LossState {
    /// Creates the loss state for one receiver. `ring_members` is the ring
    /// in order and `my_index` this receiver's position; they determine the
    /// lossy sender for [`LossSpec::FromDistance`].
    pub fn new(
        spec: LossSpec,
        ring_members: &[ParticipantId],
        my_index: usize,
        seed: u64,
    ) -> LossState {
        let lossy_sender = match spec {
            LossSpec::FromDistance { distance, .. } => {
                let n = ring_members.len();
                Some(ring_members[(my_index + n - (distance % n)) % n])
            }
            _ => None,
        };
        LossState {
            spec,
            lossy_sender,
            in_bad_state: false,
            rng: StdRng::seed_from_u64(
                seed ^ (my_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            dropped: 0,
            seen: 0,
            tokens_dropped: 0,
            tokens_seen: 0,
        }
    }

    /// Decides whether this arriving data message is dropped.
    pub fn drops(&mut self, msg: &DataMessage) -> bool {
        self.drops_from(msg.pid)
    }

    /// Like [`LossState::drops`], keyed by the sender alone — for callers
    /// (the chaos harness) whose packets are not `DataMessage`s.
    pub fn drops_from(&mut self, sender: ParticipantId) -> bool {
        self.seen += 1;
        let rate = match self.spec {
            LossSpec::None => return false,
            LossSpec::Bernoulli { rate } => rate,
            LossSpec::FromDistance { rate, .. } => {
                if Some(sender) != self.lossy_sender {
                    return false;
                }
                rate
            }
            LossSpec::Burst {
                good_rate,
                bad_rate,
                good_to_bad,
                bad_to_good,
            }
            | LossSpec::Chaos {
                good_rate,
                bad_rate,
                good_to_bad,
                bad_to_good,
                ..
            } => {
                let flip = self.rng.random::<f64>();
                if self.in_bad_state {
                    if flip < bad_to_good {
                        self.in_bad_state = false;
                    }
                } else if flip < good_to_bad {
                    self.in_bad_state = true;
                }
                if self.in_bad_state {
                    bad_rate
                } else {
                    good_rate
                }
            }
        };
        let drop = self.rng.random::<f64>() < rate;
        if drop {
            self.dropped += 1;
        }
        drop
    }

    /// Decides whether an arriving *token* is dropped. Only
    /// [`LossSpec::Chaos`] ever drops tokens; every other model returns
    /// `false` unconditionally, preserving the paper's "tokens are never
    /// dropped" behaviour.
    pub fn drops_token(&mut self) -> bool {
        self.tokens_seen += 1;
        let rate = self.spec.token_rate();
        if rate == 0.0 {
            return false;
        }
        let drop = self.rng.random::<f64>() < rate;
        if drop {
            self.tokens_dropped += 1;
        }
        drop
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages considered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Tokens dropped so far.
    pub fn tokens_dropped(&self) -> u64 {
        self.tokens_dropped
    }

    /// Tokens considered so far.
    pub fn tokens_seen(&self) -> u64 {
        self.tokens_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelring_core::{RingId, Round, Seq, Service};
    use bytes::Bytes;

    fn members(n: u16) -> Vec<ParticipantId> {
        (0..n).map(ParticipantId::new).collect()
    }

    fn msg(pid: u16) -> DataMessage {
        DataMessage {
            ring_id: RingId::new(ParticipantId::new(0), 1),
            seq: Seq::new(1),
            pid: ParticipantId::new(pid),
            round: Round::new(1),
            service: Service::Agreed,
            post_token: false,
            retransmission: false,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn none_never_drops() {
        let mut s = LossState::new(LossSpec::None, &members(8), 0, 42);
        for _ in 0..1000 {
            assert!(!s.drops(&msg(1)));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.seen(), 1000);
    }

    #[test]
    fn bernoulli_rate_is_roughly_respected() {
        let mut s = LossState::new(LossSpec::bernoulli(0.25), &members(8), 3, 7);
        let trials = 20_000;
        for _ in 0..trials {
            s.drops(&msg(1));
        }
        let rate = s.dropped() as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn bernoulli_zero_normalizes_to_none() {
        assert_eq!(LossSpec::bernoulli(0.0), LossSpec::None);
    }

    #[test]
    #[should_panic(expected = "rate must be within 0..=1")]
    fn bernoulli_rejects_out_of_range() {
        let _ = LossSpec::bernoulli(1.5);
    }

    #[test]
    fn from_distance_targets_the_right_sender() {
        // Receiver at index 5 losing from distance 2 => sender index 3.
        let spec = LossSpec::FromDistance {
            distance: 2,
            rate: 1.0,
        };
        let mut s = LossState::new(spec, &members(8), 5, 1);
        assert!(s.drops(&msg(3)), "messages from index 3 are dropped");
        assert!(!s.drops(&msg(4)));
        assert!(!s.drops(&msg(5)));
    }

    #[test]
    fn from_distance_wraps_around_the_ring() {
        // Receiver 0 losing from distance 1 => sender 7 (its predecessor).
        let spec = LossSpec::FromDistance {
            distance: 1,
            rate: 1.0,
        };
        let mut s = LossState::new(spec, &members(8), 0, 1);
        assert!(s.drops(&msg(7)));
        assert!(!s.drops(&msg(1)));
    }

    #[test]
    fn burst_loss_is_bursty() {
        // With a sticky bad state, drops must cluster: the number of
        // drop-runs of length >= 3 should far exceed what independent
        // Bernoulli loss at the same average rate would produce.
        let spec = LossSpec::Burst {
            good_rate: 0.0,
            bad_rate: 0.9,
            good_to_bad: 0.02,
            bad_to_good: 0.2,
        };
        let mut s = LossState::new(spec, &members(8), 0, 42);
        let outcomes: Vec<bool> = (0..20_000).map(|_| s.drops(&msg(1))).collect();
        let total_rate = s.dropped() as f64 / s.seen() as f64;
        assert!(total_rate > 0.02 && total_rate < 0.25, "rate {total_rate}");
        let mut runs3 = 0;
        let mut run = 0;
        for &d in &outcomes {
            if d {
                run += 1;
                if run == 3 {
                    runs3 += 1;
                }
            } else {
                run = 0;
            }
        }
        assert!(
            runs3 > 20,
            "expected clustered drops, got {runs3} runs of 3+"
        );
    }

    #[test]
    fn burst_with_zero_transition_never_enters_bad_state() {
        let spec = LossSpec::Burst {
            good_rate: 0.0,
            bad_rate: 1.0,
            good_to_bad: 0.0,
            bad_to_good: 1.0,
        };
        let mut s = LossState::new(spec, &members(8), 0, 1);
        for _ in 0..1000 {
            assert!(!s.drops(&msg(1)));
        }
    }

    #[test]
    fn chaos_token_rate_is_roughly_respected() {
        let mut s = LossState::new(LossSpec::chaos(0.0, 0.2), &members(8), 1, 11);
        let trials = 20_000;
        for _ in 0..trials {
            s.drops_token();
        }
        let rate = s.tokens_dropped() as f64 / s.tokens_seen() as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed token rate {rate}");
    }

    #[test]
    fn non_chaos_specs_never_drop_tokens() {
        for spec in [
            LossSpec::None,
            LossSpec::bernoulli(1.0),
            LossSpec::Burst {
                good_rate: 1.0,
                bad_rate: 1.0,
                good_to_bad: 0.5,
                bad_to_good: 0.5,
            },
        ] {
            let mut s = LossState::new(spec, &members(8), 0, 3);
            for _ in 0..200 {
                assert!(!s.drops_token(), "{spec:?} dropped a token");
            }
            assert_eq!(s.tokens_dropped(), 0);
            assert_eq!(s.tokens_seen(), 200);
        }
    }

    #[test]
    fn chaos_data_half_behaves_like_bernoulli() {
        let mut s = LossState::new(LossSpec::chaos(0.25, 0.0), &members(8), 2, 5);
        let trials = 20_000;
        for _ in 0..trials {
            s.drops(&msg(1));
        }
        let rate = s.dropped() as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed data rate {rate}");
    }

    #[test]
    fn chaos_token_drops_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut s = LossState::new(LossSpec::chaos(0.1, 0.5), &members(8), 0, seed);
            (0..128)
                .map(|i| {
                    if i % 2 == 0 {
                        s.drops_token()
                    } else {
                        s.drops(&msg(1))
                    }
                })
                .collect()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn token_rate_accessor() {
        assert_eq!(LossSpec::None.token_rate(), 0.0);
        assert_eq!(LossSpec::bernoulli(0.3).token_rate(), 0.0);
        assert_eq!(LossSpec::chaos(0.1, 0.25).token_rate(), 0.25);
        assert_eq!(
            LossSpec::chaos_burst(0.0, 0.9, 0.01, 0.2, 0.05).token_rate(),
            0.05
        );
    }

    #[test]
    #[should_panic(expected = "rates must be within 0..=1")]
    fn chaos_rejects_out_of_range() {
        let _ = LossSpec::chaos(0.1, 1.5);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut s = LossState::new(LossSpec::bernoulli(0.5), &members(8), 2, seed);
            (0..100).map(|_| s.drops(&msg(1))).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds diverge");
    }

    #[test]
    fn receivers_draw_independent_streams() {
        let drops = |idx: usize| -> Vec<bool> {
            let mut s = LossState::new(LossSpec::bernoulli(0.5), &members(8), idx, 77);
            (0..64).map(|_| s.drops(&msg(1))).collect()
        };
        assert_ne!(drops(0), drops(1));
    }
}
