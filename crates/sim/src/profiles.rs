//! Calibrated network and implementation profiles.
//!
//! The paper evaluates three implementations (a library prototype, a daemon
//! prototype, and Spread) on two networks (1-gigabit Cisco Catalyst 2960 and
//! 10-gigabit Arista 7100T). The implementations differ in per-message CPU
//! cost; the networks differ in line rate and buffering. Both are captured
//! here as data. See DESIGN.md §6 for the calibration rationale.

use crate::time::SimDuration;

/// Physical network parameters for the single-switch topology all
/// experiments use (8 servers on one switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkProfile {
    /// Line rate of every link and switch port, bits per second.
    pub bandwidth_bps: u64,
    /// One-way latency of a cable plus half the switch fabric (the
    /// node-to-switch or switch-to-node leg), excluding serialization.
    pub link_latency: SimDuration,
    /// Per-egress-port switch buffer. A frame arriving to a port whose
    /// queue already holds this many bytes is dropped.
    pub switch_buffer_bytes: u64,
    /// Bytes of per-frame overhead outside our protocol header: Ethernet
    /// header + FCS + preamble + inter-frame gap + IP + UDP.
    pub frame_overhead: usize,
    /// Maximum Ethernet payload per frame; datagrams larger than this are
    /// fragmented by the kernel and each fragment pays `frame_overhead`.
    pub mtu_payload: usize,
    /// Receive-socket capacity for data messages, in datagrams. The token
    /// socket is separate and effectively never overflows, matching the
    /// paper's deployment note.
    pub data_socket_capacity: usize,
}

impl NetworkProfile {
    /// 1-gigabit Ethernet through a Catalyst-2960-class switch.
    pub fn gigabit() -> NetworkProfile {
        NetworkProfile {
            bandwidth_bps: 1_000_000_000,
            link_latency: SimDuration::from_micros(3),
            switch_buffer_bytes: 768 * 1024,
            frame_overhead: 66,
            mtu_payload: 1472,
            data_socket_capacity: 2048,
        }
    }

    /// 10-gigabit Ethernet through an Arista-7100T-class switch.
    pub fn ten_gigabit() -> NetworkProfile {
        NetworkProfile {
            bandwidth_bps: 10_000_000_000,
            link_latency: SimDuration::from_micros(2),
            switch_buffer_bytes: 2 * 1024 * 1024,
            frame_overhead: 66,
            mtu_payload: 1472,
            data_socket_capacity: 4096,
        }
    }

    /// Total wire bytes occupied by a datagram of `datagram_len` bytes
    /// (protocol header + payload), accounting for kernel fragmentation of
    /// datagrams beyond one MTU (Section IV-A3 of the paper uses 9000-byte
    /// UDP datagrams that the kernel fragments onto 1500-byte frames).
    pub fn wire_bytes(&self, datagram_len: usize) -> usize {
        let frags = datagram_len.div_ceil(self.mtu_payload).max(1);
        datagram_len + frags * self.frame_overhead
    }
}

/// Per-operation CPU costs of one implementation, charged to the
/// single-threaded daemon's core by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplProfile {
    /// Human-readable name used in benchmark output.
    pub name: &'static str,
    /// Accepting one message from a local client (IPC receive, enqueue).
    pub submit_cost: SimDuration,
    /// Stamping and multicasting one data message.
    pub send_cost: SimDuration,
    /// Receiving and buffering one data message from the network.
    pub recv_cost: SimDuration,
    /// Delivering one message to local clients (for Spread this includes
    /// group-name analysis and routing to the right clients, which the
    /// paper singles out as expensive).
    pub deliver_cost: SimDuration,
    /// Processing the token's fields.
    pub token_proc_cost: SimDuration,
    /// Sending the token.
    pub token_send_cost: SimDuration,
}

impl ImplProfile {
    /// The library-based prototype: the protocol embedded in the
    /// application process, no client communication at all.
    pub fn library() -> ImplProfile {
        ImplProfile {
            name: "library",
            submit_cost: SimDuration::from_nanos(500),
            send_cost: SimDuration::from_nanos(1_800),
            recv_cost: SimDuration::from_nanos(1_900),
            deliver_cost: SimDuration::from_nanos(400),
            token_proc_cost: SimDuration::from_nanos(1_800),
            token_send_cost: SimDuration::from_nanos(1_400),
        }
    }

    /// The daemon-based prototype: client communication over IPC for a
    /// single group, none of Spread's generality.
    pub fn daemon() -> ImplProfile {
        ImplProfile {
            name: "daemon",
            submit_cost: SimDuration::from_nanos(900),
            send_cost: SimDuration::from_nanos(2_000),
            recv_cost: SimDuration::from_nanos(2_500),
            deliver_cost: SimDuration::from_nanos(720),
            token_proc_cost: SimDuration::from_nanos(2_000),
            token_send_cost: SimDuration::from_nanos(1_500),
        }
    }

    /// Production Spread: large group names, hundreds of clients per
    /// daemon, multi-group multicast — delivery is the expensive step.
    pub fn spread() -> ImplProfile {
        ImplProfile {
            name: "spread",
            submit_cost: SimDuration::from_nanos(1_200),
            send_cost: SimDuration::from_nanos(2_400),
            recv_cost: SimDuration::from_nanos(2_900),
            deliver_cost: SimDuration::from_nanos(1_700),
            token_proc_cost: SimDuration::from_nanos(2_400),
            token_send_cost: SimDuration::from_nanos(1_700),
        }
    }

    /// All three implementation profiles, in ascending overhead order.
    pub fn all() -> [ImplProfile; 3] {
        [
            ImplProfile::library(),
            ImplProfile::daemon(),
            ImplProfile::spread(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_overhead() {
        let [lib, daemon, spread] = ImplProfile::all();
        assert!(lib.recv_cost < daemon.recv_cost);
        assert!(daemon.recv_cost < spread.recv_cost);
        assert!(lib.deliver_cost < daemon.deliver_cost);
        assert!(daemon.deliver_cost < spread.deliver_cost);
    }

    #[test]
    fn spread_delivery_is_the_expensive_step() {
        let spread = ImplProfile::spread();
        assert!(spread.deliver_cost > ImplProfile::library().deliver_cost.times(3));
    }

    #[test]
    fn network_presets() {
        let g = NetworkProfile::gigabit();
        let tg = NetworkProfile::ten_gigabit();
        assert_eq!(tg.bandwidth_bps, 10 * g.bandwidth_bps);
        assert!(tg.link_latency < g.link_latency);
        assert!(tg.switch_buffer_bytes > g.switch_buffer_bytes);
    }

    #[test]
    fn wire_bytes_single_frame() {
        let g = NetworkProfile::gigabit();
        // 1350-byte payload + 40-byte protocol header fits one frame.
        assert_eq!(g.wire_bytes(1390), 1390 + 66);
    }

    #[test]
    fn wire_bytes_fragmented() {
        let g = NetworkProfile::gigabit();
        // An 8890-byte datagram fragments into ceil(8890/1472) = 7 frames.
        assert_eq!(g.wire_bytes(8890), 8890 + 7 * 66);
    }

    #[test]
    fn wire_bytes_empty_datagram_counts_one_frame() {
        let g = NetworkProfile::gigabit();
        assert_eq!(g.wire_bytes(0), 66);
    }
}
