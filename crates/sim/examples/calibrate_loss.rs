//! Calibration probe for the loss experiments (figs 9-13).
use accelring_core::{ProtocolConfig, Service};
use accelring_sim::{ExperimentSpec, ImplProfile, LossSpec, NetworkProfile, SimDuration};

fn main() {
    let mut base = ExperimentSpec::baseline();
    base.warmup = SimDuration::from_millis(30);
    base.measure = SimDuration::from_millis(100);
    base.impl_profile = ImplProfile::daemon();

    for (name, net, mbps) in [
        ("fig9 10G 480Mbps", NetworkProfile::ten_gigabit(), 480u64),
        ("fig10 10G 1200Mbps", NetworkProfile::ten_gigabit(), 1200),
        ("fig11 1G 140Mbps", NetworkProfile::gigabit(), 140),
        ("fig12 1G 350Mbps", NetworkProfile::gigabit(), 350),
    ] {
        println!("=== {name} ===");
        for service in [Service::Agreed, Service::Safe] {
            for (label, cfg) in [
                ("orig ", ProtocolConfig::original(20)),
                ("accel", ProtocolConfig::accelerated(20, 15)),
            ] {
                print!("{service:?} {label}: ");
                for loss_pct in [0.0, 0.05, 0.10, 0.15, 0.20, 0.25] {
                    let mut spec = base.clone().at_rate_mbps(mbps);
                    spec.network = net;
                    spec.service = service;
                    spec.protocol = cfg;
                    spec.loss = LossSpec::bernoulli(loss_pct);
                    let r = spec.run();
                    print!("{:.0}us ", r.mean_latency_us());
                }
                println!();
            }
        }
    }

    println!("=== fig13 distance (20% loss from daemon k back, 10G 480Mbps) ===");
    for (label, cfg) in [
        ("orig ", ProtocolConfig::original(20)),
        ("accel", ProtocolConfig::accelerated(20, 15)),
    ] {
        print!("{label}: ");
        for d in 1..=7 {
            let mut spec = base.clone().at_rate_mbps(480);
            spec.network = NetworkProfile::ten_gigabit();
            spec.protocol = cfg;
            spec.loss = LossSpec::FromDistance {
                distance: d,
                rate: 0.2,
            };
            let r = spec.run();
            print!("d{}:{:.0}us ", d, r.mean_latency_us());
        }
        println!();
    }
}
