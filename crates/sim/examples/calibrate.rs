//! Quick calibration probe: prints headline curves to compare with the paper.
use accelring_core::{ProtocolConfig, Service};
use accelring_sim::{Curve, ExperimentSpec, ImplProfile, NetworkProfile, SimDuration, Workload};

fn main() {
    let mut base = ExperimentSpec::baseline();
    base.warmup = SimDuration::from_millis(30);
    base.measure = SimDuration::from_millis(100);

    println!("=== 1Gb Agreed, spread profile (paper fig 2) ===");
    let mut spec = base.clone();
    spec.impl_profile = ImplProfile::spread();
    for (label, cfg) in [
        ("orig", ProtocolConfig::original(20)),
        ("accel", ProtocolConfig::accelerated(20, 15)),
    ] {
        spec.protocol = cfg;
        let c = Curve::sweep_rates(label, &spec, &[100, 200, 300, 400, 500, 600, 700, 800, 900]);
        for p in &c.points {
            print!(
                "{} {:.0}Mbps->{:.0}Mbps/{:.0}us  ",
                label,
                p.x,
                p.result.goodput_mbps(),
                p.result.mean_latency_us()
            );
        }
        println!();
    }

    println!("=== 10Gb Agreed max throughput (saturating, accel 30/30) ===");
    for profile in ImplProfile::all() {
        let mut spec = base.clone();
        spec.network = NetworkProfile::ten_gigabit();
        spec.impl_profile = profile;
        spec.protocol = ProtocolConfig::accelerated(30, 30);
        spec.workload = Workload::Saturating;
        let r = spec.run();
        println!(
            "{}: {:.2} Gbps (accel)",
            profile.name,
            r.goodput_mbps() / 1000.0
        );
        spec.protocol = ProtocolConfig::original(30);
        let r = spec.run();
        println!(
            "{}: {:.2} Gbps (orig)",
            profile.name,
            r.goodput_mbps() / 1000.0
        );
    }

    println!("=== 1Gb max throughput (saturating) ===");
    for (label, cfg) in [
        ("orig", ProtocolConfig::original(30)),
        ("accel", ProtocolConfig::accelerated(30, 30)),
    ] {
        let mut spec = base.clone();
        spec.impl_profile = ImplProfile::spread();
        spec.protocol = cfg;
        spec.workload = Workload::Saturating;
        let r = spec.run();
        println!("spread {}: {:.0} Mbps", label, r.goodput_mbps());
    }

    println!("=== Safe low-throughput 10Gb crossover (fig 8, spread) ===");
    let mut spec = base.clone();
    spec.network = NetworkProfile::ten_gigabit();
    spec.impl_profile = ImplProfile::spread();
    spec.service = Service::Safe;
    for (label, cfg) in [
        ("orig", ProtocolConfig::original(20)),
        ("accel", ProtocolConfig::accelerated(20, 15)),
    ] {
        spec.protocol = cfg;
        let c = Curve::sweep_rates(label, &spec, &[100, 200, 400, 600, 1000]);
        for p in &c.points {
            print!(
                "{} {:.0}->{:.0}us  ",
                label,
                p.x,
                p.result.mean_latency_us()
            );
        }
        println!();
    }
}
