//! Large-ring stress: one ring shared by many daemons, under seeded
//! restart storms, with the handoff checker over the surviving
//! observer's stream. The ring protocol's token rotation cost grows
//! with membership, and every storm forces a full EVS reformation of a
//! wide ring plus catch-up pulls from the rejoiners — the regime where
//! recovery bugs that a 3-daemon test can't see (overlapping
//! reformations, pull fan-in on one survivor) actually show up.
//!
//! The CI variant keeps the ring small enough to stay in the smoke
//! budget; the 32-daemon soak is `#[ignore]`d and run on demand:
//!
//! ```text
//! cargo test --release --test large_ring -- --ignored --test-threads=1
//! ```
//!
//! Real sockets and threads; run with `--test-threads=1`.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use accelring_chaos::churn::{check_churn_handoff, ChurnConfig, ChurnSchedule};
use accelring_chaos::MsgId;
use accelring_core::{Backoff, Service};
use accelring_daemon::{ClientEvent, FrontendOptions};
use accelring_multiring::{ChurnCluster, MultiRingClient, MultiRingOptions, ShardMap};
use bytes::Bytes;

const HOT_SENDER: u16 = 77;

fn await_view_members(client: &MultiRingClient, group: &str, min_members: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::View { group: g, members }) if g == group => {
                if members.len() >= min_members {
                    return;
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    panic!(
        "client {} never saw a view for {group} with {min_members}+ members",
        client.name()
    );
}

fn send_id(sender: &MultiRingClient, id: MsgId) {
    let mut backoff = Backoff::new(
        Duration::from_millis(10),
        Duration::from_millis(200),
        id.counter,
    );
    loop {
        match sender.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed) {
            Ok(_) => return,
            Err(e) if backoff.attempts() >= 20 => panic!("send {id} failed for good: {e}"),
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
}

fn collect_ids(client: &MultiRingClient, want: usize, deadline: Duration) -> Vec<MsgId> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < want && start.elapsed() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::Message { payload, .. }) => {
                if let Some(id) = MsgId::parse(&payload) {
                    got.push(id);
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    got
}

/// One ring of `nodes` daemons, `storms` correlated crashes of
/// `storm_size` daemons each, steady hot-group traffic throughout, and
/// the gap-free/exactly-once/order check at the end.
fn run_large_ring(nodes: u16, seed: u64, storms: usize, storm_size: u16) {
    let options = MultiRingOptions {
        frontend: FrontendOptions::enabled(),
        ..MultiRingOptions::default()
    };
    let mut cluster =
        ChurnCluster::start(1, nodes, seed, ShardMap::new(1), options).expect("cluster up");

    let observer = cluster.daemon(0).connect("obs").expect("connect");
    let sender = cluster.daemon(0).connect("src").expect("connect");
    observer.join("hot").expect("join hot");
    await_view_members(&observer, "hot", 1);

    let cfg = ChurnConfig {
        rings: 1,
        nodes,
        groups: vec!["hot".to_string()],
        events: storms,
        min_gap: Duration::from_millis(900),
        max_gap: Duration::from_millis(1500),
        warmup: Duration::from_millis(500),
    };
    let schedule = ChurnSchedule::restart_storm(seed, &cfg, storm_size);
    let last_event = schedule.events.last().expect("non-empty").at;

    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    let mut fired = 0;
    let start = Instant::now();
    let mut counter = 0;
    while start.elapsed() < last_event + Duration::from_millis(800) || counter < 20 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        send_id(&sender, id);
        sent.insert(id);
        counter += 1;
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("storm applies");
        std::thread::sleep(Duration::from_millis(40));
    }
    while fired < schedule.events.len() {
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("storm applies");
        std::thread::sleep(Duration::from_millis(20));
    }

    let want = sent.len();
    let got = collect_ids(&observer, want, Duration::from_secs(90));
    let violations = check_churn_handoff(&sent, &[(0, got)]);
    assert!(
        violations.is_empty(),
        "seed {seed}, {nodes} daemons: violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Pool-leak gate: every buffer lease the daemons took must be back.
    let probes: Vec<_> = (0..nodes)
        .flat_map(|d| cluster.daemon(d).transport_probes())
        .collect();
    cluster.shutdown();
    for p in &probes {
        assert_eq!(p.pool_outstanding(), 0, "leaked buffer leases");
    }
}

#[test]
fn large_ring_smoke_eight_daemons_one_storm() {
    run_large_ring(8, 5, 1, 2);
}

#[test]
#[ignore = "soak: a 32-daemon ring under repeated 4-daemon restart storms"]
fn large_ring_soak_thirty_two_daemons() {
    run_large_ring(32, 6, 3, 4);
}
