//! Property (100 cases): for any seeded mix of data traffic, migration
//! fences (start, abort escalations, commits, back-migrations through
//! re-open), and skip ticks across two rings, the released cross-ring
//! order is a pure function of the per-ring streams — identical at
//! every observer and invariant under the *arrival interleaving* of the
//! two streams (source-first, target-first, alternating, seeded
//! random).
//!
//! This is the determinism half of the zero-gap handoff argument: the
//! fence decisions (freeze, commit, abort, re-open) are all ordered
//! messages, so two daemons that consume the same two ring histories in
//! different relative orders must still release the identical merged
//! sequence to their clients.

use accelring_core::{Delivery, ParticipantId, RingIdx, Round, Seq, Service};
use accelring_daemon::packing::tick_payload_with_epoch;
use accelring_daemon::ClientEvent;
use accelring_multiring::{MultiOutput, MultiRingEngine, ShardMap};
use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RINGS: usize = 2;

fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS as u16);
    map.assign("hot", RingIdx::new(0));
    map.assign("cold", RingIdx::new(1));
    map
}

/// Fresh daemon pair: client "a" on daemon 0, "b" on daemon 1. Joins
/// are *not* replayed here — they travel through the ring streams.
fn fresh_engines() -> Vec<MultiRingEngine> {
    let mut engines: Vec<MultiRingEngine> = (0..2)
        .map(|pid| MultiRingEngine::new(ParticipantId::new(pid), shards(), 1))
        .collect();
    engines[0].client_connect("a").unwrap();
    engines[1].client_connect("b").unwrap();
    engines
}

fn client_of(daemon: usize) -> &'static str {
    if daemon == 0 {
        "a"
    } else {
        "b"
    }
}

/// The driving network: engine submissions append to per-ring totally
/// ordered streams, deliveries fan back into every engine.
struct Net {
    engines: Vec<MultiRingEngine>,
    streams: Vec<Vec<Delivery>>,
    cursors: Vec<[usize; RINGS]>,
    got: Vec<Vec<String>>,
}

impl Net {
    fn new() -> Net {
        Net {
            engines: fresh_engines(),
            streams: vec![Vec::new(); RINGS],
            cursors: vec![[0; RINGS]; 2],
            got: vec![Vec::new(); 2],
        }
    }

    fn apply(&mut self, daemon: usize, outs: Vec<MultiOutput>) {
        for o in outs {
            match o {
                MultiOutput::Submit {
                    ring,
                    payload,
                    service,
                } => {
                    let s = &mut self.streams[ring.as_usize()];
                    let seq = s.len() as u64 + 1;
                    s.push(Delivery {
                        seq: Seq::new(seq),
                        sender: ParticipantId::new(daemon as u16),
                        round: Round::new(seq),
                        service,
                        payload,
                    });
                }
                MultiOutput::Local {
                    event: ClientEvent::Message { payload, .. },
                    ..
                } => {
                    self.got[daemon].push(String::from_utf8_lossy(&payload).into_owned());
                }
                MultiOutput::Local { .. } => {}
            }
        }
    }

    /// Delivers every undelivered stream entry to every engine until
    /// quiescent (new submissions extend the streams mid-loop).
    fn drain(&mut self) {
        loop {
            let mut progressed = false;
            for d in 0..self.engines.len() {
                for r in 0..RINGS {
                    while self.cursors[d][r] < self.streams[r].len() {
                        let del = self.streams[r][self.cursors[d][r]].clone();
                        self.cursors[d][r] += 1;
                        let outs = self.engines[d].on_delivery(RingIdx::new(r as u16), &del);
                        self.apply(d, outs);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn finish(&mut self) {
        for d in 0..self.engines.len() {
            let outs = self.engines[d].finish();
            self.apply(d, outs);
        }
    }
}

/// Runs a seeded driver: random data sends on both groups, skip ticks,
/// migration starts (always of "hot", to whichever ring is not its
/// current home — so later starts are back-migrations through the
/// re-open path) and abort escalations, at random points. Returns the
/// recorded per-ring streams and each driver daemon's released order.
fn drive(seed: u64, steps: usize) -> (Vec<Vec<Delivery>>, Vec<Vec<String>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Net::new();
    for (d, group) in [(0, "hot"), (0, "cold"), (1, "hot"), (1, "cold")] {
        let outs = net.engines[d].client_join(client_of(d), group).unwrap();
        net.apply(d, outs);
    }
    net.drain();

    let mut msg = 0u64;
    for _ in 0..steps {
        match rng.random_range(0..10u8) {
            0..=4 => {
                let d = rng.random_range(0..2usize);
                let group = if rng.random::<bool>() { "hot" } else { "cold" };
                let outs = net.engines[d]
                    .client_multicast(
                        client_of(d),
                        &[group],
                        Bytes::from(format!("m{msg}")),
                        Service::Agreed,
                    )
                    .unwrap();
                net.apply(d, outs);
                msg += 1;
            }
            5 | 6 => {
                // A skip tick, as the pump's tick leader would order it.
                let r = rng.random_range(0..RINGS);
                let seq = net.streams[r].len() as u64 + 1;
                net.streams[r].push(Delivery {
                    seq: Seq::new(seq),
                    sender: ParticipantId::new(0),
                    round: Round::new(seq),
                    service: Service::Agreed,
                    payload: tick_payload_with_epoch(0),
                });
            }
            7 => {
                // A migration start, from wherever "hot" lives now.
                net.drain();
                if net.engines[0].migrations_in_flight().is_empty() {
                    let from = net.engines[0].ring_of("hot");
                    let to = RingIdx::new(1 - from.as_u16());
                    if let Ok(outs) = net.engines[0].begin_migration("hot", to) {
                        net.apply(0, outs);
                    }
                }
            }
            8 => {
                // A (possibly racing) abort escalation.
                let d = rng.random_range(0..2usize);
                let outs = net.engines[d].abort_migration("hot");
                net.apply(d, outs);
            }
            _ => net.drain(),
        }
    }
    net.drain();
    net.finish();
    (net.streams, net.got)
}

/// Replays the recorded streams into a fresh daemon pair, consuming
/// them in the given arrival order (`order[i]` names the ring whose
/// next undelivered entry is processed), and returns each observer's
/// released order. Replay submissions are discarded — the streams
/// already contain everything the original run ordered.
fn replay(streams: &[Vec<Delivery>], order: &[usize]) -> Vec<Vec<String>> {
    let mut engines = fresh_engines();
    let mut cursors = [0usize; RINGS];
    let mut got: Vec<Vec<String>> = vec![Vec::new(); 2];
    let collect = |d: usize, outs: Vec<MultiOutput>, got: &mut Vec<Vec<String>>| {
        for o in outs {
            if let MultiOutput::Local {
                event: ClientEvent::Message { payload, .. },
                ..
            } = o
            {
                got[d].push(String::from_utf8_lossy(&payload).into_owned());
            }
        }
    };
    for &r in order {
        let del = streams[r][cursors[r]].clone();
        cursors[r] += 1;
        for (d, e) in engines.iter_mut().enumerate() {
            let outs = e.on_delivery(RingIdx::new(r as u16), &del);
            collect(d, outs, &mut got);
        }
    }
    for (d, e) in engines.iter_mut().enumerate() {
        let outs = e.finish();
        collect(d, outs, &mut got);
    }
    got
}

/// The arrival interleavings each case is checked under.
fn interleavings(lens: [usize; RINGS], seed: u64) -> Vec<Vec<usize>> {
    let mut orders = Vec::new();
    // Source ring exhausted first, then the target — and the reverse:
    // the maximal cross-ring skews (Ready/Open arrive before Start, or
    // long after).
    orders.push(
        std::iter::repeat_n(0, lens[0])
            .chain(std::iter::repeat_n(1, lens[1]))
            .collect(),
    );
    orders.push(
        std::iter::repeat_n(1, lens[1])
            .chain(std::iter::repeat_n(0, lens[0]))
            .collect(),
    );
    // Strict alternation.
    let mut alt = Vec::new();
    let (mut c0, mut c1) = (0, 0);
    while c0 < lens[0] || c1 < lens[1] {
        if c0 < lens[0] {
            alt.push(0);
            c0 += 1;
        }
        if c1 < lens[1] {
            alt.push(1);
            c1 += 1;
        }
    }
    orders.push(alt);
    // A seeded random shuffle-merge.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0D15_0DE5);
    let mut shuffled = Vec::new();
    let (mut c0, mut c1) = (0, 0);
    while c0 < lens[0] || c1 < lens[1] {
        let pick0 = c1 >= lens[1] || (c0 < lens[0] && rng.random::<bool>());
        if pick0 {
            shuffled.push(0);
            c0 += 1;
        } else {
            shuffled.push(1);
            c1 += 1;
        }
    }
    orders.push(shuffled);
    orders
}

proptest! {
    // The issue's bar: 100 seeds, every interleaving agreeing. Each
    // case is pure in-memory engine work, no sockets.
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn released_order_is_arrival_interleaving_invariant(seed in any::<u64>()) {
        let (streams, driver_got) = drive(seed, 60);
        prop_assert_eq!(
            &driver_got[0], &driver_got[1],
            "seed {}: the two driving daemons released different orders", seed
        );
        let lens = [streams[0].len(), streams[1].len()];
        for (i, order) in interleavings(lens, seed).into_iter().enumerate() {
            let got = replay(&streams, &order);
            for (d, g) in got.iter().enumerate() {
                prop_assert_eq!(
                    g, &driver_got[d],
                    "seed {}, interleaving {}, observer {}: released order diverged",
                    seed, i, d
                );
            }
        }
    }
}
