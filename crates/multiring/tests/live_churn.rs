//! Live churn: real localhost UDP rings under a seeded churn schedule
//! — packet loss, an online group migration, a daemon leaving and
//! rejoining — with the chaos crate's handoff checker over every
//! observer's delivery stream.
//!
//! Two scenarios: the smoke schedule commits a migration of a hot group
//! while its source ring drops packets and a daemon cycles (every
//! observer must see one identical, gap-free, duplicate-free order);
//! and a migration whose target ring is partitioned must abort cleanly,
//! with the source ring serving the group throughout.
//!
//! Real sockets and threads; run with `--test-threads=1`.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use accelring_chaos::churn::{check_churn_handoff, ChurnSchedule};
use accelring_chaos::MsgId;
use accelring_core::{Backoff, RingIdx, Service};
use accelring_daemon::ClientEvent;
use accelring_multiring::{ChurnCluster, MultiRingClient, MultiRingOptions, ShardMap};
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 3;
const HOT_SENDER: u16 = 99;

/// "hot" starts on ring 0 and migrates to ring 1; "cold" pins ring 1 so
/// the target carries unrelated traffic state from the start.
fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    map.assign("hot", RingIdx::new(0));
    map.assign("cold", RingIdx::new(1));
    map
}

/// Blocks until `client` sees a view of `group` with at least
/// `min_members` members (the EVS join-effective point).
fn await_view_members(client: &MultiRingClient, group: &str, min_members: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::View { group: g, members }) if g == group => {
                if members.len() >= min_members {
                    return;
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    panic!(
        "client {} never saw a view for {group} with {min_members}+ members",
        client.name()
    );
}

/// Sends one workload id on the hot group, retrying transient submit
/// rejections under the shared jittered backoff.
fn send_id(sender: &MultiRingClient, id: MsgId) {
    let mut backoff = Backoff::new(
        Duration::from_millis(10),
        Duration::from_millis(200),
        id.counter,
    );
    loop {
        match sender.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed) {
            Ok(_) => return,
            Err(e) if backoff.attempts() >= 20 => panic!("send {id} failed for good: {e}"),
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
}

/// Drains `client` until `want` workload ids arrived (or the deadline
/// passes), returning them in merged delivery order.
fn collect_ids(client: &MultiRingClient, want: usize, deadline: Duration) -> Vec<MsgId> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < want && start.elapsed() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::Message { payload, .. }) => {
                if let Some(id) = MsgId::parse(&payload) {
                    got.push(id);
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    got
}

/// Polls daemon `d`'s ring-0 transport stats until `pick` returns a
/// non-zero count, returning it (0 on deadline).
fn await_counter(
    cluster: &ChurnCluster,
    d: u16,
    deadline: Duration,
    pick: impl Fn(&accelring_transport::TransportStats) -> u64,
) -> u64 {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let n = pick(&cluster.daemon(d).transport_stats()[0]);
        if n > 0 {
            return n;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    0
}

#[test]
fn smoke_schedule_commits_migration_with_identical_gap_free_orders() {
    let seed = 11;
    let mut cluster =
        ChurnCluster::start(RINGS, NODES, seed, shards(), MultiRingOptions::default())
            .expect("cluster up");

    // Observers on the two daemons that are never cycled; the smoke
    // schedule restarts daemon 2, which comes back through the crash
    // recovery path — seeded dedup watermarks plus ring-borne map
    // announces — while the durable clients live elsewhere.
    let obs_a = cluster.daemon(0).connect("obs-a").expect("connect");
    let obs_b = cluster.daemon(1).connect("obs-b").expect("connect");
    let sender = cluster.daemon(0).connect("src").expect("connect");
    for c in [&obs_a, &obs_b] {
        c.join("hot").expect("join hot");
    }
    for c in [&obs_a, &obs_b] {
        await_view_members(c, "hot", 2);
    }

    // One migration of "hot" to ring 1 plus one daemon-2 leave/join,
    // bracketed by a 3% loss window on the source ring.
    let schedule = ChurnSchedule::smoke(seed, "hot", 0, 1, 2);
    let last_event = schedule.events.last().expect("non-empty").at;

    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    let mut fired = 0;
    let start = Instant::now();
    let mut counter = 0;
    // Steady traffic until well past the final churn event, so sends
    // land before, during, and after the fence and the restart.
    while start.elapsed() < last_event + Duration::from_millis(600) || counter < 20 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        send_id(&sender, id);
        sent.insert(id);
        counter += 1;
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("churn event applies");
        std::thread::sleep(Duration::from_millis(40));
    }
    while fired < schedule.events.len() {
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("churn event applies");
        std::thread::sleep(Duration::from_millis(20));
    }

    let committed = await_counter(&cluster, 0, Duration::from_secs(20), |s| {
        s.migrations_committed
    });
    assert!(
        committed >= 1,
        "seed {seed}: the smoke migration never committed"
    );

    let want = sent.len();
    let a = collect_ids(&obs_a, want, Duration::from_secs(40));
    let b = collect_ids(&obs_b, want, Duration::from_secs(40));
    let violations = check_churn_handoff(&sent, &[(0, a), (1, b)]);
    assert!(
        violations.is_empty(),
        "seed {seed}: handoff violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    cluster.shutdown();
}

#[test]
fn partitioned_target_ring_aborts_migration_and_source_keeps_serving() {
    let seed = 23;
    let options = MultiRingOptions {
        // Escalate to abort quickly: the barrier provably cannot be met
        // once the target ring is split.
        migration_timeout: Duration::from_millis(1200),
        ..MultiRingOptions::default()
    };
    let cluster = ChurnCluster::start(RINGS, NODES, seed, shards(), options).expect("cluster up");

    // A member on every daemon, so the readiness barrier needs daemon 2
    // — whose target-ring node is about to be cut off.
    let obs_a = cluster.daemon(0).connect("obs-a").expect("connect");
    let obs_b = cluster.daemon(1).connect("obs-b").expect("connect");
    let obs_c = cluster.daemon(2).connect("obs-c").expect("connect");
    let sender = cluster.daemon(0).connect("src").expect("connect");
    for c in [&obs_a, &obs_b, &obs_c] {
        c.join("hot").expect("join hot");
    }
    for c in [&obs_a, &obs_b, &obs_c] {
        await_view_members(c, "hot", 3);
    }

    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    let mut counter = 0;
    let mut send_batch = |n: u64, sent: &mut BTreeSet<MsgId>| {
        for _ in 0..n {
            let id = MsgId {
                sender: HOT_SENDER,
                counter,
            };
            send_id(&sender, id);
            sent.insert(id);
            counter += 1;
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    send_batch(8, &mut sent);

    // Split the *target* ring so daemon 2's readiness proof can never
    // reach the majority: the barrier stalls and every daemon's abort
    // escalation races to order the abort on the (healthy) source ring.
    cluster.plane(1).partition(&[vec![0, 1], vec![2]]);
    std::thread::sleep(Duration::from_millis(300));
    cluster
        .daemon(0)
        .migrate("hot", RingIdx::new(1))
        .expect("migrate accepted");
    // Sends behind the fence are held for the decision.
    send_batch(8, &mut sent);

    let aborted = await_counter(&cluster, 0, Duration::from_secs(20), |s| {
        s.migrations_aborted
    });
    assert!(aborted >= 1, "seed {seed}: the migration never aborted");
    let stats = cluster.daemon(0).transport_stats()[0];
    assert_eq!(
        stats.migrations_committed, 0,
        "seed {seed}: a doomed migration committed"
    );

    // The source ring keeps serving the group after the abort.
    send_batch(8, &mut sent);

    // Daemon 2's merger stalls while its target-ring node sits in a
    // tickless minority singleton; heal before reading obs-c.
    cluster.plane(1).heal();

    let want = sent.len();
    let a = collect_ids(&obs_a, want, Duration::from_secs(40));
    let b = collect_ids(&obs_b, want, Duration::from_secs(40));
    let c = collect_ids(&obs_c, want, Duration::from_secs(40));
    let violations = check_churn_handoff(&sent, &[(0, a), (1, b), (2, c)]);
    assert!(
        violations.is_empty(),
        "seed {seed}: abort-path violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    cluster.shutdown();
}
