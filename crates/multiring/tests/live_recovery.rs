//! Crash recovery on live localhost UDP rings: restart storms, the
//! shard-map catch-up protocol, and the ordered state transfer that
//! lets a rejoined daemon serve without double-delivering or routing
//! from a stale map.
//!
//! Three scenarios: a seeded restart-storm schedule under steady
//! traffic (every surviving observer sees one identical, gap-free,
//! duplicate-free order and the rejoiners pull catch-up state); a
//! manual storm with map churn, checked against the chaos crate's
//! recovery invariants (no stale-map serving, no dedup-watermark
//! regression — the latter is the regression test for the dedup
//! carry-forward across a same-port rebind); and a remote
//! [`SessionClient`] resuming across its daemon's restart, with a
//! deliberate duplicate retransmission that the recovered watermark
//! must suppress.
//!
//! Real sockets and threads; run with `--test-threads=1`.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use accelring_chaos::churn::{
    check_churn_handoff, check_recovery, ChurnConfig, ChurnKind, ChurnSchedule, RecoveryReport,
};
use accelring_chaos::MsgId;
use accelring_core::{Backoff, RingIdx, Service};
use accelring_daemon::{ClientEvent, FrontendOptions, SessionClient};
use accelring_multiring::{ChurnCluster, MultiRingClient, MultiRingOptions, ShardMap};
use bytes::Bytes;

const RINGS: u16 = 2;
const HOT_SENDER: u16 = 99;

/// "hot" starts on ring 0 and "cold" pins ring 1, so migrations have a
/// non-idle target and the shard map starts versioned.
fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    map.assign("hot", RingIdx::new(0));
    map.assign("cold", RingIdx::new(1));
    map
}

/// Session socket on: restarted daemons pull catch-up snapshots from
/// the survivors over the wire, not just from the supervisor's seed.
fn options() -> MultiRingOptions {
    MultiRingOptions {
        frontend: FrontendOptions::enabled(),
        ..MultiRingOptions::default()
    }
}

fn await_view_members(client: &MultiRingClient, group: &str, min_members: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::View { group: g, members }) if g == group => {
                if members.len() >= min_members {
                    return;
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    panic!(
        "client {} never saw a view for {group} with {min_members}+ members",
        client.name()
    );
}

fn send_id(sender: &MultiRingClient, id: MsgId) {
    let mut backoff = Backoff::new(
        Duration::from_millis(10),
        Duration::from_millis(200),
        id.counter,
    );
    loop {
        match sender.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed) {
            Ok(_) => return,
            Err(e) if backoff.attempts() >= 20 => panic!("send {id} failed for good: {e}"),
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
}

fn collect_ids(client: &MultiRingClient, want: usize, deadline: Duration) -> Vec<MsgId> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < want && start.elapsed() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::Message { payload, .. }) => {
                if let Some(id) = MsgId::parse(&payload) {
                    got.push(id);
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    got
}

/// Polls until daemon `d`'s serving gate opens and its shard map reaches
/// at least `want_version`, returning the final inspect snapshot.
fn await_converged(
    cluster: &ChurnCluster,
    d: u16,
    want_version: u64,
    deadline: Duration,
) -> accelring_multiring::DaemonInspect {
    let start = Instant::now();
    let mut last = cluster.daemon(d).inspect().expect("daemon up");
    while start.elapsed() < deadline {
        last = cluster.daemon(d).inspect().expect("daemon up");
        if !last.catching_up && last.map_version >= want_version {
            return last;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    last
}

#[test]
fn restart_storm_keeps_the_merged_order_gap_free_and_exactly_once() {
    const NODES: u16 = 4;
    let seed = 17;
    let mut cluster = ChurnCluster::start(RINGS, NODES, seed, shards(), options()).expect("up");

    // Durable clients on daemon 0, which storms never cycle.
    let obs_a = cluster.daemon(0).connect("obs-a").expect("connect");
    let obs_b = cluster.daemon(0).connect("obs-b").expect("connect");
    let sender = cluster.daemon(0).connect("src").expect("connect");
    for c in [&obs_a, &obs_b] {
        c.join("hot").expect("join hot");
    }
    for c in [&obs_a, &obs_b] {
        await_view_members(c, "hot", 2);
    }

    // Two correlated crashes of two daemons each, under steady traffic.
    let cfg = ChurnConfig {
        rings: RINGS,
        nodes: NODES,
        groups: vec!["hot".to_string(), "cold".to_string()],
        events: 2,
        min_gap: Duration::from_millis(700),
        max_gap: Duration::from_millis(1200),
        warmup: Duration::from_millis(400),
    };
    let schedule = ChurnSchedule::restart_storm(seed, &cfg, 2);
    let victims: BTreeSet<u16> = schedule
        .events
        .iter()
        .flat_map(|e| match &e.kind {
            ChurnKind::RestartStorm { daemons, .. } => daemons.clone(),
            _ => Vec::new(),
        })
        .collect();
    let last_event = schedule.events.last().expect("non-empty").at;

    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    let mut fired = 0;
    let start = Instant::now();
    let mut counter = 0;
    while start.elapsed() < last_event + Duration::from_millis(600) || counter < 20 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        send_id(&sender, id);
        sent.insert(id);
        counter += 1;
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("storm applies");
        std::thread::sleep(Duration::from_millis(40));
    }
    while fired < schedule.events.len() {
        cluster
            .apply_due(&schedule, start, &mut fired)
            .expect("storm applies");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Every storm victim's final incarnation ran the catch-up protocol:
    // the gate opens (snapshot applied or deadline) and at least one
    // pull went out while it was closed.
    for d in &victims {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let ins = cluster.daemon(*d).inspect().expect("daemon up");
            if !ins.catching_up {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "seed {seed}: daemon {d} never opened its serving gate"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        let stats = cluster.daemon(*d).transport_stats()[0];
        assert!(
            stats.recovery_pulls_sent >= 1,
            "seed {seed}: daemon {d} rejoined without pulling catch-up state"
        );
    }

    let want = sent.len();
    let a = collect_ids(&obs_a, want, Duration::from_secs(40));
    let b = collect_ids(&obs_b, want, Duration::from_secs(40));
    let violations = check_churn_handoff(&sent, &[(0, a), (1, b)]);
    assert!(
        violations.is_empty(),
        "seed {seed}: storm violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    cluster.shutdown();
}

#[test]
fn restart_storm_recovery_invariants_hold_after_map_churn() {
    const NODES: u16 = 3;
    let seed = 29;
    let mut cluster = ChurnCluster::start(RINGS, NODES, seed, shards(), options()).expect("up");

    let observer = cluster.daemon(0).connect("obs").expect("connect");
    let sender = cluster.daemon(1).connect("src").expect("connect");
    observer.join("hot").expect("join hot");
    await_view_members(&observer, "hot", 1);

    // Ten sequenced sends through daemon 1 set its dedup watermark.
    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    for counter in 0..10 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        send_id(&sender, id);
        sent.insert(id);
    }
    assert_eq!(
        collect_ids(&observer, 10, Duration::from_secs(30)).len(),
        10,
        "workload must land before the storm"
    );

    // Migrate "hot" so the live map moves past what restarted daemons
    // are (deliberately) reborn with — the stale-map injection.
    cluster
        .daemon(0)
        .migrate("hot", RingIdx::new(1))
        .expect("migrate accepted");
    let commit_deadline = Instant::now() + Duration::from_secs(20);
    while cluster.daemon(0).transport_stats()[0].migrations_committed < 1 {
        assert!(
            Instant::now() < commit_deadline,
            "seed {seed}: migration never committed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Correlated storm: daemons 1 and 2 die together; only daemon 0
    // survives as a catch-up source.
    let seqs_before: Vec<(u16, _)> = [1u16, 2]
        .iter()
        .map(|d| (*d, cluster.daemon(*d).export_seqs().expect("daemon up")))
        .collect();
    cluster.stop_daemon(1);
    cluster.stop_daemon(2);
    std::thread::sleep(Duration::from_millis(400));
    cluster.restart_daemon(1).expect("daemon 1 rebinds");
    cluster.restart_daemon(2).expect("daemon 2 rebinds");
    let map_before = cluster.daemon(0).inspect().expect("daemon up").map_version;

    let mut reports = Vec::new();
    for (d, before) in seqs_before {
        let ins = await_converged(&cluster, d, map_before, Duration::from_secs(20));
        reports.push(RecoveryReport {
            daemon: d,
            map_before,
            map_after: ins.map_version,
            seqs_before: before,
            seqs_after: cluster.daemon(d).export_seqs().expect("daemon up"),
        });
    }
    let violations = check_recovery(&reports);
    assert!(
        violations.is_empty(),
        "seed {seed}: recovery violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The direct regression for the dedup carry-forward: the reborn
    // daemon 1 still holds src's watermark even though no client has
    // spoken to it since the rebind.
    let carried = cluster.daemon(1).export_seqs().expect("daemon up");
    assert!(
        carried
            .iter()
            .flatten()
            .any(|(client, seq)| client == "src" && *seq >= 10),
        "seed {seed}: daemon 1 lost src's dedup watermark across the restart: {carried:?}"
    );
    // And the wire path engaged: both rejoiners applied a snapshot from
    // the surviving daemon.
    for d in [1u16, 2] {
        let stats = cluster.daemon(d).transport_stats()[0];
        assert!(
            stats.recovery_snapshots_applied >= 1,
            "seed {seed}: daemon {d} never applied a catch-up snapshot"
        );
    }

    cluster.shutdown();
}

#[test]
fn session_client_resumes_across_daemon_restart_exactly_once() {
    const NODES: u16 = 3;
    let seed = 31;
    let mut cluster = ChurnCluster::start(RINGS, NODES, seed, shards(), options()).expect("up");

    let watcher = cluster.daemon(0).connect("watch").expect("connect");
    watcher.join("hot").expect("join hot");
    await_view_members(&watcher, "hot", 1);

    let addr = cluster.daemon(2).session_addr().expect("session socket");
    let mut roam = SessionClient::connect(addr, "roam").expect("connect roam");
    let mut sent: BTreeSet<MsgId> = BTreeSet::new();
    for counter in 0..5 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        roam.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed)
            .expect("send");
        sent.insert(id);
    }
    let first = collect_ids(&watcher, 5, Duration::from_secs(30));
    assert_eq!(first.len(), 5, "pre-restart sends must land");
    let watermark = roam.last_seq();

    // Cycle the daemon the session lives on. The restarted incarnation
    // binds a *new* ephemeral session port, so resuming means asking
    // the cluster for the address again.
    cluster.stop_daemon(2);
    std::thread::sleep(Duration::from_millis(300));
    cluster.restart_daemon(2).expect("daemon 2 rebinds");
    let new_addr = cluster.daemon(2).session_addr().expect("session socket");

    // Reconnect with the session watermark; HELLOs sent while the
    // daemon is still catching up are dropped (not refused), so retry
    // the whole connect until the gate opens.
    let deadline = Instant::now() + Duration::from_secs(15);
    let roam = loop {
        match SessionClient::connect_session(new_addr, "roam", watermark) {
            Ok(c) => break c,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "seed {seed}: roam could not resume: {e}"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };

    // An in-doubt retransmission: seq 5 was already ordered before the
    // crash, and the recovered watermark must suppress it — without the
    // carry-forward this delivers twice.
    let dup = MsgId {
        sender: HOT_SENDER,
        counter: 4,
    };
    roam.resubmit(
        watermark,
        &["hot"],
        Bytes::from(dup.payload()),
        Service::Agreed,
    )
    .expect("resubmit");
    let mut roam = roam;
    for counter in 5..10 {
        let id = MsgId {
            sender: HOT_SENDER,
            counter,
        };
        roam.multicast_sequenced(&["hot"], Bytes::from(id.payload()), Service::Agreed)
            .expect("send");
        sent.insert(id);
    }

    // The watcher's full stream is the pre-restart batch already
    // drained plus everything after the resume.
    let mut got = first;
    let want = sent.len() - got.len();
    got.extend(collect_ids(&watcher, want, Duration::from_secs(40)));
    let violations = check_churn_handoff(&sent, &[(0, got)]);
    assert!(
        violations.is_empty(),
        "seed {seed}: resume violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    roam.bye();
    cluster.shutdown();
}
