//! Property: any seed produces a multi-ring chaos run in which every
//! per-ring EVS invariant and the cross-ring order-agreement invariant
//! hold, and the run reproduces exactly from its seed.
//!
//! Each case drives two full virtual-time clusters through seeded fault
//! schedules (including the spliced-in ring-targeted partition and
//! daemon kill), then folds both shielded observers' journals through
//! the deterministic merge and compares the merged streams.

use accelring_multiring::{run_multiring_chaos, MultiRingChaosConfig};
use proptest::prelude::*;

proptest! {
    // Each case is two full cluster runs; keep the count low enough
    // that the property stays under a minute. The bench soak bin
    // (`multiring_soak`) covers the wide 100+ seed sweep.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_seeds_agree_across_rings(seed in any::<u64>()) {
        let report = run_multiring_chaos(MultiRingChaosConfig::smoke(seed));
        prop_assert!(
            report.ok(),
            "seed {seed} violated multi-ring invariants:\n{}",
            report.render()
        );
        prop_assert!(report.merged_lens.iter().all(|&l| l > 0));
    }

    #[test]
    fn random_seeds_reproduce(seed in any::<u64>()) {
        let a = run_multiring_chaos(MultiRingChaosConfig::smoke(seed));
        let b = run_multiring_chaos(MultiRingChaosConfig::smoke(seed));
        prop_assert_eq!(a.merged_lens, b.merged_lens);
        prop_assert_eq!(a.per_ring_stats, b.per_ring_stats);
        prop_assert_eq!(a.violations, b.violations);
    }
}
