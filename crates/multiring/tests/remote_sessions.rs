//! Remote sessions against the multi-ring daemon: the same framed UDP
//! session protocol that serves `GroupDaemon` also fronts
//! [`MultiRingDaemon`] — one reactor, adapter and remote sessions in one
//! mux, submissions sharded across rings and events delivered in the
//! merged cross-ring total order.
//!
//! Real sockets and threads; run with `--test-threads=1`.

use std::time::{Duration, Instant};

use accelring_core::{ProtocolConfig, RingIdx, Service};
use accelring_daemon::{ClientEvent, FrontendOptions, SessionClient};
use accelring_membership::MembershipConfig;
use accelring_multiring::{MultiRingDaemon, MultiRingOptions, ShardMap};
use accelring_transport::spawn_local_multiring;
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 2;

fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    map.assign("left", RingIdx::new(0));
    map.assign("right", RingIdx::new(1));
    map
}

fn spawn_daemons() -> Vec<MultiRingDaemon> {
    let handles = spawn_local_multiring(
        RINGS,
        NODES,
        ProtocolConfig::default(),
        MembershipConfig::for_wall_clock(),
        &[None, None],
    )
    .expect("rings stand up");
    let mut columns: Vec<Vec<_>> = (0..NODES).map(|_| Vec::new()).collect();
    for ring in handles {
        for (i, node) in ring.into_iter().enumerate() {
            columns[i].push(node);
        }
    }
    let options = MultiRingOptions {
        frontend: FrontendOptions::enabled(),
        ..MultiRingOptions::default()
    };
    columns
        .into_iter()
        .map(|nodes| MultiRingDaemon::start_with(nodes, shards(), options.clone()))
        .collect()
}

fn await_view(client: &mut SessionClient, group: &str, n: usize, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(Some(ClientEvent::View { group: g, members })) =
            client.recv_event(Duration::from_millis(50))
        {
            if g == group && members.len() == n {
                return true;
            }
        }
    }
    false
}

fn collect_payloads(client: &mut SessionClient, want: usize, deadline: Duration) -> Vec<Bytes> {
    let start = Instant::now();
    let mut got = Vec::new();
    while start.elapsed() < deadline && got.len() < want {
        if let Ok(Some(ClientEvent::Message { payload, .. })) =
            client.recv_event(Duration::from_millis(50))
        {
            got.push(payload);
        }
    }
    got
}

#[test]
fn remote_sessions_span_rings_through_one_frontend() {
    let daemons = spawn_daemons();
    let addr0 = daemons[0].session_addr().expect("session socket");
    let addr1 = daemons[1].session_addr().expect("session socket");

    // Remote sender on daemon 0, remote watcher on daemon 1; the watcher
    // subscribes to groups sharded onto *different* rings, so its event
    // stream is the deterministic cross-ring merge.
    let sender = SessionClient::connect(addr0, "sender").expect("connect sender");
    let mut watcher = SessionClient::connect(addr1, "watcher").expect("connect watcher");
    watcher.join("left").expect("join left");
    watcher.join("right").expect("join right");
    sender.join("left").expect("join left");
    assert!(
        await_view(&mut watcher, "left", 2, Duration::from_secs(20)),
        "watcher must see sender in the left view"
    );

    for k in 0..5u32 {
        sender
            .multicast(&["left"], Bytes::from(format!("l{k}")), Service::Agreed)
            .expect("submit left");
        sender
            .multicast(&["right"], Bytes::from(format!("r{k}")), Service::Agreed)
            .expect("submit right (open-group: sender is not a member)");
    }
    let got = collect_payloads(&mut watcher, 10, Duration::from_secs(20));
    assert_eq!(got.len(), 10, "all ten messages arrive: {got:?}");
    // Per-ring FIFO survives the merge even if the rings interleave.
    let lefts: Vec<&Bytes> = got.iter().filter(|p| p.starts_with(b"l")).collect();
    let rights: Vec<&Bytes> = got.iter().filter(|p| p.starts_with(b"r")).collect();
    assert_eq!(
        lefts.iter().map(|p| p.as_ref()).collect::<Vec<_>>(),
        (0..5u32)
            .map(|k| format!("l{k}").into_bytes())
            .collect::<Vec<_>>(),
        "left-ring messages stay ordered"
    );
    assert_eq!(
        rights.iter().map(|p| p.as_ref()).collect::<Vec<_>>(),
        (0..5u32)
            .map(|k| format!("r{k}").into_bytes())
            .collect::<Vec<_>>(),
        "right-ring messages stay ordered"
    );

    let fs = daemons[0].frontend_stats();
    assert!(fs.sessions_peak >= 1, "frontend served the remote sender");
    assert!(fs.submits >= 11, "joins and multicasts all ride SUBMIT");
    sender.bye();
    watcher.bye();
}
