//! Live multi-ring smoke: two real localhost UDP rings of three daemons
//! each, an explicit shard map splitting two groups across them, and two
//! merged observers that must see the identical cross-ring total order —
//! through an idle ring (skip ticks) and through a partition targeted at
//! one ring only.
//!
//! These tests stand up real sockets and threads; run them
//! single-threaded (`--test-threads=1`) so concurrent rings do not
//! compete for CPU.

use std::sync::Arc;
use std::time::{Duration, Instant};

use accelring_core::{ProtocolConfig, RingIdx, Service};
use accelring_daemon::ClientEvent;
use accelring_membership::MembershipConfig;
use accelring_multiring::{MultiRingClient, MultiRingDaemon, ShardMap};
use accelring_transport::{spawn_local_multiring, FaultPlane};
use bytes::Bytes;

const RINGS: u16 = 2;
const NODES: u16 = 3;

/// Shard map under test: "left" ordered by ring 0, "right" by ring 1.
fn shards() -> ShardMap {
    let mut map = ShardMap::new(RINGS);
    map.assign("left", RingIdx::new(0));
    map.assign("right", RingIdx::new(1));
    map
}

/// Spawns the transport (optionally fault-planed per ring) and one
/// multi-ring daemon per participant.
fn spawn_daemons(planes: &[Option<Arc<FaultPlane>>]) -> Vec<MultiRingDaemon> {
    let handles = spawn_local_multiring(
        RINGS,
        NODES,
        ProtocolConfig::default(),
        MembershipConfig::for_wall_clock(),
        planes,
    )
    .expect("rings stand up");
    // handles[ring][node] -> per-daemon columns: daemon i owns node i of
    // every ring.
    let mut columns: Vec<Vec<_>> = (0..NODES).map(|_| Vec::new()).collect();
    for ring in handles {
        for (i, node) in ring.into_iter().enumerate() {
            columns[i].push(node);
        }
    }
    columns
        .into_iter()
        .map(|nodes| MultiRingDaemon::start(nodes, shards()))
        .collect()
}

/// Blocks until `client` receives the membership view of `group` that
/// includes itself — the EVS contract: a join is effective (and later
/// sends are ordered after it everywhere) only once the view installing
/// it has been delivered.
fn await_view(client: &MultiRingClient, group: &str) {
    await_view_members(client, group, 1);
}

/// Like [`await_view`], but waits for a view of `group` with at least
/// `min_members` members — how a client observes that a partition has
/// healed and remote members are visible again.
fn await_view_members(client: &MultiRingClient, group: &str, min_members: usize) {
    await_view_where(client, group, &format!("{min_members}+ members"), |n| {
        n >= min_members
    });
}

/// Waits for a view of `group` whose size is at most `max_members` —
/// how a client on the minority side observes that a partition has
/// actually been detected and EVS pruned the unreachable members.
fn await_view_shrunk(client: &MultiRingClient, group: &str, max_members: usize) {
    await_view_where(client, group, &format!("<= {max_members} members"), |n| {
        n <= max_members
    });
}

fn await_view_where(
    client: &MultiRingClient,
    group: &str,
    what: &str,
    accept: impl Fn(usize) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::View { group: g, members }) if g == group => {
                if accept(members.len()) {
                    return;
                }
            }
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) | Err(_) => {}
        }
    }
    panic!(
        "client {} never saw a view for {group} with {what}",
        client.name()
    );
}

/// Drains `client` until `want` messages arrived (or the deadline
/// passes), returning the payloads in merged delivery order.
fn collect_messages(client: &MultiRingClient, want: usize, deadline: Duration) -> Vec<Bytes> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < want && start.elapsed() < deadline {
        match client.events().recv_timeout(Duration::from_millis(200)) {
            Ok(ClientEvent::Message { payload, .. }) => got.push(payload),
            Ok(ClientEvent::Disconnected { reason }) => {
                panic!("client {} disconnected: {reason}", client.name())
            }
            Ok(_) => {}
            Err(_) => {}
        }
    }
    got
}

#[test]
fn merged_order_is_identical_at_two_live_observers() {
    let daemons = spawn_daemons(&[]);

    // Two observers on different daemons, both subscribed to both groups
    // — their event streams cross the ring boundary.
    let obs_a = daemons[0].connect("obs-a").expect("connect");
    let obs_b = daemons[1].connect("obs-b").expect("connect");
    let sender = daemons[2].connect("sender").expect("connect");
    for c in [&obs_a, &obs_b] {
        c.join("left").expect("join left");
        c.join("right").expect("join right");
    }
    for c in [&obs_a, &obs_b] {
        await_view(c, "left");
        await_view(c, "right");
    }

    // Interleave submissions across the two rings.
    const PER_RING: usize = 12;
    for i in 0..PER_RING {
        sender
            .multicast(&["left"], Bytes::from(format!("L{i}")), Service::Agreed)
            .expect("send left");
        sender
            .multicast(&["right"], Bytes::from(format!("R{i}")), Service::Agreed)
            .expect("send right");
    }

    let want = 2 * PER_RING;
    let a = collect_messages(&obs_a, want, Duration::from_secs(20));
    let b = collect_messages(&obs_b, want, Duration::from_secs(20));
    assert_eq!(a.len(), want, "observer A saw {}/{want}", a.len());
    assert_eq!(a, b, "merged cross-ring orders diverge");

    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn idle_ring_does_not_stall_the_merge() {
    let daemons = spawn_daemons(&[]);

    let obs = daemons[1].connect("obs").expect("connect");
    obs.join("left").expect("join left");
    obs.join("right").expect("join right");
    await_view(&obs, "left");
    await_view(&obs, "right");
    let sender = daemons[0].connect("sender").expect("connect");

    // Only ring 0 ("left") carries traffic; ring 1 stays idle. Without
    // skip ticks the merge could never release past ring 1's silence.
    const SENDS: usize = 8;
    for i in 0..SENDS {
        sender
            .multicast(&["left"], Bytes::from(format!("only{i}")), Service::Agreed)
            .expect("send");
    }

    let got = collect_messages(&obs, SENDS, Duration::from_secs(20));
    assert_eq!(
        got.len(),
        SENDS,
        "idle ring stalled the merge: released {}/{SENDS}",
        got.len()
    );

    for d in daemons {
        d.shutdown();
    }
}

#[test]
fn partition_on_one_ring_only_stalls_that_ring_then_recovers() {
    // A fault plane on ring 1 only; ring 0 runs fault-free.
    let plane = FaultPlane::new(7);
    let daemons = spawn_daemons(&[None, Some(plane.clone())]);

    let obs_a = daemons[0].connect("obs-a").expect("connect");
    let obs_b = daemons[1].connect("obs-b").expect("connect");
    // The sender also joins "right": its view of that group is how the
    // test observes the partition healing (EVS prunes the observers
    // from the minority side's view, then restores them on heal).
    let sender = daemons[2].connect("sender").expect("connect");
    for c in [&obs_a, &obs_b] {
        c.join("left").expect("join left");
        c.join("right").expect("join right");
    }
    sender.join("right").expect("join right");
    for c in [&obs_a, &obs_b] {
        await_view(c, "left");
        await_view_members(c, "right", 3);
    }
    await_view_members(&sender, "right", 3);

    // Partition ring 1 so the observers' daemons keep a majority
    // component {0,1} against the sender's {2}; ring 0 is untouched, so
    // "left" traffic keeps flowing while "right" reforms. The fault is
    // only provably in effect once EVS installs the shrunken views —
    // wait for the minority side's singleton view of "right" before
    // measuring (otherwise a fast test run could heal before the token
    // loss is even detected).
    plane.partition(&[vec![0, 1], vec![2]]);
    await_view_shrunk(&sender, "right", 1);
    for i in 0..6 {
        sender
            .multicast(&["left"], Bytes::from(format!("L{i}")), Service::Agreed)
            .expect("send left");
    }
    let during = collect_messages(&obs_a, 6, Duration::from_secs(20));
    assert_eq!(
        during.len(),
        6,
        "ring-0 traffic must survive a ring-1 partition, got {}/6",
        during.len()
    );

    // Heal. Sends ordered while the sender's ring-1 component is still
    // the minority singleton would (correctly, per EVS) reach nobody —
    // wait until the sender sees the healed three-member view of
    // "right" before measuring cross-ring traffic again.
    plane.heal();
    await_view_members(&sender, "right", 3);
    for i in 0..6 {
        sender
            .multicast(&["right"], Bytes::from(format!("R{i}")), Service::Agreed)
            .expect("send right");
        sender
            .multicast(&["left"], Bytes::from(format!("l{i}")), Service::Agreed)
            .expect("send left");
    }
    let a = collect_messages(&obs_a, 12, Duration::from_secs(30));
    let b_total = 6 + 12;
    let b = collect_messages(&obs_b, b_total, Duration::from_secs(30));
    assert_eq!(a.len(), 12, "post-heal sends missing at A: {}/12", a.len());
    assert_eq!(
        b.len(),
        b_total,
        "post-heal sends missing at B: {}/{b_total}",
        b.len()
    );
    // B saw the partition-era messages first; the tail must match A.
    assert_eq!(
        &b[b.len() - 12..],
        a.as_slice(),
        "post-heal merged orders diverge"
    );

    for d in daemons {
        d.shutdown();
    }
}
