//! The runnable multi-ring daemon: a [`MultiRingEngine`] pumped by one
//! thread over R real UDP transport nodes (one per ring), serving
//! clients through the session frontend ([`accelring_daemon::frontend`])
//! — the multi-ring analogue of `accelring_daemon::GroupDaemon`.
//! In-process clients attach as channel adapters; with
//! [`FrontendOptions::session_socket`] set the same reactor also serves
//! remote [`accelring_daemon::SessionClient`]s over UDP, multiplexed in
//! one slab-indexed session table with fair, credit-gated egress.
//!
//! The pump routes every submission to the ring the shard map chose,
//! feeds each ring's deliveries and configuration changes into the
//! deterministic merge, and hands clients their events in the merged
//! cross-ring total order. When any ring's node dies (panic, kill
//! switch, or plain exit) every connected client receives a terminal
//! [`ClientEvent::Disconnected`] — a multi-ring daemon without all of
//! its rings cannot keep its merge promise.
//!
//! ## Idle-ring skip ticks
//!
//! The merge cannot release past a ring that is silent: nothing proves
//! the silent ring will not later order a message with a smaller merge
//! slot. Daemons whose node holds participant id 0 on a blocking ring
//! submit *skip ticks* on it — ordered no-ops carrying the highest
//! regular-configuration counter seen across all rings
//! ([`accelring_daemon::packing::tick_payload_with_epoch`]). Being
//! ordered on the lagging ring makes the advance intrinsic to that
//! ring's stream: every observer aligns the ring's λ-clock identically,
//! and a ring that never reformed catches up to a reformed ring's
//! epoch base.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use accelring_core::{Backoff, FrontendStats, ParticipantId, RingIdx, Service, ShedCause};
use accelring_daemon::packing::tick_payload_with_epoch;
use accelring_daemon::proto::SessionFrame;
use accelring_daemon::{
    ClientEvent, EngineError, EngineOptions, FrontendOptions, GroupAction, Ingress, SessionMux,
};
use accelring_transport::{
    AppEvent, NodeHandle, Poller, SubmitError, TransportProbe, TransportStats,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender, TryRecvError};

use crate::engine::{MultiOutput, MultiRingEngine, MultiRingError};
use crate::migrate::MigrationCounters;
use crate::recovery::{decode_snapshot, encode_snapshot, RecoverySnapshot, RingSeqs};
use crate::shard::ShardMap;

/// Wait cap when the session socket is open: a datagram wakes the
/// reactor immediately through `ppoll`; command channels and ring events
/// (which cannot be polled) are picked up within this tick.
const REACTOR_TICK: Duration = Duration::from_millis(1);

/// How long a daemon started with [`MultiRingOptions::recovery_peers`]
/// keeps its serving gate closed waiting for a catch-up snapshot. Past
/// the deadline it serves anyway — every peer gone is a fresh cluster,
/// and refusing forever would deadlock the first daemon back up.
const CATCHUP_DEADLINE: Duration = Duration::from_secs(5);

/// Replicated application state mounted on a daemon — the hook through
/// which the pump serves local-service queries ([`SessionFrame::SvcQuery`])
/// outside the ordered path and piggybacks application snapshots on the
/// recovery pull path (the `app` section of
/// [`RecoverySnapshot`](crate::recovery::RecoverySnapshot)). The
/// replicated KV store mounts its machine here; the multi-ring layer
/// carries every body blind — the application owns its codecs.
pub trait AppState: Send + Sync {
    /// Answers one opaque local-service query, or `None` to stay silent
    /// (no reply frame is sent; the requester owns retries).
    fn query(&self, body: &Bytes) -> Option<Bytes>;
    /// The application snapshot to piggyback on a recovery push; empty
    /// means "nothing to carry".
    fn snapshot(&self) -> Bytes;
    /// Accepts the application section of a recovery snapshot pulled
    /// from a peer during catch-up. Empty bodies are not delivered.
    fn install(&self, body: &Bytes);
}

/// Runtime settings for a [`MultiRingDaemon`].
#[derive(Clone)]
pub struct MultiRingOptions {
    /// Packing/fragmentation settings for the per-ring engines.
    pub engine: EngineOptions,
    /// Merge pace: token rounds per merge slot.
    pub lambda: u64,
    /// How often the tick leader checks for blocking rings and orders a
    /// skip tick on them. Bounds the merge latency an idle ring adds.
    pub tick_interval: Duration,
    /// How long an in-flight group migration may wait for its readiness
    /// barrier before this daemon escalates to abort (the Abort is
    /// ordered on the source ring, so whichever daemon's escalation
    /// lands first decides for everyone; retries back off with jitter).
    pub migration_timeout: Duration,
    /// Session-frontend tuning; set
    /// [`FrontendOptions::session_socket`] to serve remote
    /// [`accelring_daemon::SessionClient`]s over UDP.
    pub frontend: FrontendOptions,
    /// Session addresses of live peer daemons to pull a catch-up
    /// snapshot from before serving clients. When non-empty (and the
    /// session socket is open) the daemon starts *gated*: HELLO frames
    /// are silently dropped — the client's retry loop covers the window
    /// — until a peer's `MAP_PUSH` snapshot is applied or
    /// [`CATCHUP_DEADLINE`] elapses.
    pub recovery_peers: Vec<SocketAddr>,
    /// Per-ring dedup watermarks to seed the engine with at startup —
    /// the in-process fast path for a supervisor that captured
    /// [`MultiRingDaemon::export_seqs`] before stopping the previous
    /// incarnation. `seqs[r]` holds `(client, max_seq)` pairs for ring
    /// `r`; seeding is monotone, so combining it with a pulled snapshot
    /// is safe.
    pub recovery_seed: Option<RingSeqs>,
    /// Replicated application state mounted on this daemon: serves
    /// local-service queries and rides the recovery pull path. `None`
    /// means no application — queries go unanswered and snapshots carry
    /// an empty `app` section.
    pub app_state: Option<Arc<dyn AppState>>,
}

impl std::fmt::Debug for MultiRingOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiRingOptions")
            .field("engine", &self.engine)
            .field("lambda", &self.lambda)
            .field("tick_interval", &self.tick_interval)
            .field("migration_timeout", &self.migration_timeout)
            .field("frontend", &self.frontend)
            .field("recovery_peers", &self.recovery_peers)
            .field("recovery_seed", &self.recovery_seed)
            .field("app_state", &self.app_state.as_ref().map(|_| "mounted"))
            .finish()
    }
}

impl Default for MultiRingOptions {
    fn default() -> Self {
        MultiRingOptions {
            engine: EngineOptions::default(),
            lambda: 1,
            tick_interval: Duration::from_millis(25),
            migration_timeout: Duration::from_secs(3),
            frontend: FrontendOptions::default(),
            recovery_peers: Vec::new(),
            recovery_seed: None,
            app_state: None,
        }
    }
}

/// A point-in-time probe of a daemon's recovery-relevant state, read
/// through [`MultiRingDaemon::inspect`]. This is what rejoin benches
/// and chaos checkers poll to decide "has this daemon converged?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonInspect {
    /// The engine's shard-map version.
    pub map_version: u64,
    /// Highest merge slot released to clients so far.
    pub merge_cursor: u64,
    /// Highest regular-configuration counter seen on any ring.
    pub max_epoch: u64,
    /// Whether the serving gate is still closed waiting for catch-up.
    pub catching_up: bool,
}

enum Cmd {
    Connect {
        name: String,
        events: Sender<ClientEvent>,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Join {
        name: String,
        group: String,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Leave {
        name: String,
        group: String,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Multicast {
        name: String,
        groups: Vec<String>,
        payload: Bytes,
        service: Service,
        seq: u64,
        /// Split a cross-ring group set into per-ring fragments instead
        /// of rejecting it (see
        /// [`MultiRingEngine::client_multicast_spanning`]).
        spanning: bool,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Disconnect {
        name: String,
    },
    Migrate {
        group: String,
        to: RingIdx,
        resp: Sender<Result<(), MultiRingError>>,
    },
    ExportSeqs {
        resp: Sender<RingSeqs>,
    },
    Inspect {
        resp: Sender<DaemonInspect>,
    },
    Shutdown,
}

/// A running multi-ring daemon: one transport node per ring plus the
/// routing engine, serving local clients in the merged order.
#[derive(Debug)]
pub struct MultiRingDaemon {
    cmd_tx: Sender<Cmd>,
    thread: Option<std::thread::JoinHandle<()>>,
    probes: Vec<TransportProbe>,
    shared: Arc<Mutex<FrontendStats>>,
    session_addr: Option<SocketAddr>,
}

impl MultiRingDaemon {
    /// Starts the multi-ring layer over one running transport node per
    /// ring (`nodes[k]` is this daemon's node on ring `k`) with default
    /// options.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, its length disagrees with
    /// `shards.rings()`, or the nodes carry different participant ids —
    /// one daemon must be the same participant on every ring.
    pub fn start(nodes: Vec<NodeHandle>, shards: ShardMap) -> MultiRingDaemon {
        MultiRingDaemon::start_with(nodes, shards, MultiRingOptions::default())
    }

    /// Starts the multi-ring layer with explicit options.
    ///
    /// # Panics
    ///
    /// As [`MultiRingDaemon::start`].
    pub fn start_with(
        nodes: Vec<NodeHandle>,
        shards: ShardMap,
        options: MultiRingOptions,
    ) -> MultiRingDaemon {
        assert!(!nodes.is_empty(), "a multi-ring daemon needs rings");
        assert_eq!(
            nodes.len(),
            shards.rings() as usize,
            "one node per shard-map ring"
        );
        let pid = nodes[0].pid();
        assert!(
            nodes.iter().all(|n| n.pid() == pid),
            "one daemon must be the same participant on every ring"
        );
        let (cmd_tx, cmd_rx) = unbounded();
        // Taken before the handles move into the pump thread: one probe
        // per ring keeps the transport counters readable from outside.
        let probes: Vec<TransportProbe> = nodes.iter().map(NodeHandle::probe).collect();
        let probe = probes[0].clone();
        let shared = Arc::new(Mutex::new(FrontendStats::default()));
        let pump_shared = shared.clone();
        // Bound before the thread spawns so the session address is known
        // the moment this constructor returns.
        let mux = SessionMux::new(options.frontend).expect("bind session socket");
        let session_addr = mux.local_addr();
        let thread = std::thread::Builder::new()
            .name(format!("multiring-daemon-{pid}"))
            .spawn(move || pump(nodes, shards, cmd_rx, options, mux, pump_shared, probe))
            .expect("spawn multi-ring daemon thread");
        MultiRingDaemon {
            cmd_tx,
            thread: Some(thread),
            probes,
            shared,
            session_addr,
        }
    }

    /// The UDP address remote [`accelring_daemon::SessionClient`]s dial,
    /// or `None` when the session socket is disabled.
    pub fn session_addr(&self) -> Option<SocketAddr> {
        self.session_addr
    }

    /// A snapshot of the session frontend's counters (sessions open,
    /// submits, per-cause sheds, reactor wakeups/syscalls).
    pub fn frontend_stats(&self) -> FrontendStats {
        *self.shared.lock().expect("frontend stats lock")
    }

    /// Per-ring snapshots of the underlying transport nodes' counters
    /// (`stats[k]` is this daemon's node on ring `k`), readable even
    /// though the node handles live inside the pump thread.
    pub fn transport_stats(&self) -> Vec<TransportStats> {
        self.probes.iter().map(TransportProbe::stats).collect()
    }

    /// Clonable per-ring probes onto transport counters and buffer pools,
    /// outliving this daemon's shutdown (useful for leak checks).
    pub fn transport_probes(&self) -> Vec<TransportProbe> {
        self.probes.clone()
    }

    /// Connects a new local client with no session history.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] for invalid or duplicate names.
    pub fn connect(&self, name: &str) -> Result<MultiRingClient, MultiRingError> {
        let (event_tx, event_rx) = unbounded();
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(Cmd::Connect {
            name: name.to_string(),
            events: event_tx,
            resp: resp_tx,
        });
        resp_rx.recv().unwrap_or(Err(MultiRingError::Engine(
            accelring_daemon::EngineError::UnknownClient(name.to_string()),
        )))?;
        Ok(MultiRingClient {
            name: name.to_string(),
            cmd_tx: self.cmd_tx.clone(),
            event_rx,
            next_seq: AtomicU64::new(0),
        })
    }

    /// Starts an online migration of `group` onto ring `to`: the
    /// operator entry point for elastic resharding. Returns as soon as
    /// the Start fence is accepted for submission on the group's source
    /// ring; the handoff itself completes (or aborts, after
    /// [`MultiRingOptions::migration_timeout`]) asynchronously through
    /// the ordered streams. Progress is visible in the migration
    /// counters of [`MultiRingDaemon::transport_stats`].
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::Migration`] for invalid targets or a
    /// group already migrating.
    pub fn migrate(&self, group: &str, to: RingIdx) -> Result<(), MultiRingError> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(Cmd::Migrate {
            group: group.to_string(),
            to,
            resp: resp_tx,
        });
        resp_rx.recv().unwrap_or(Err(MultiRingError::Migration {
            group: group.to_string(),
            reason: "daemon stopped".to_string(),
        }))
    }

    /// The engine's per-ring dedup watermarks: `seqs[r]` holds
    /// `(client, max_seq)` pairs for ring `r`. A supervisor captures
    /// this before stopping a daemon and hands it to the next
    /// incarnation through [`MultiRingOptions::recovery_seed`], so a
    /// client resubmission across the restart stays suppressed. `None`
    /// when the daemon already stopped.
    pub fn export_seqs(&self) -> Option<RingSeqs> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(Cmd::ExportSeqs { resp: resp_tx });
        resp_rx.recv().ok()
    }

    /// A probe of the daemon's recovery state (shard-map version, merge
    /// cursor, epoch, serving gate), or `None` when it already stopped.
    pub fn inspect(&self) -> Option<DaemonInspect> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(Cmd::Inspect { resp: resp_tx });
        resp_rx.recv().ok()
    }

    /// Stops the daemon thread and every ring node. Connected clients
    /// receive [`ClientEvent::Disconnected`].
    pub fn shutdown(mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MultiRingDaemon {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A client connected to a local [`MultiRingDaemon`]. Its event stream
/// is the daemon's merged cross-ring total order, filtered to this
/// client's groups.
#[derive(Debug)]
pub struct MultiRingClient {
    name: String,
    cmd_tx: Sender<Cmd>,
    event_rx: Receiver<ClientEvent>,
    next_seq: AtomicU64,
}

impl MultiRingClient {
    /// This client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The merged stream of messages, views, configuration notices, and
    /// the terminal [`ClientEvent::Disconnected`].
    pub fn events(&self) -> &Receiver<ClientEvent> {
        &self.event_rx
    }

    fn call(
        &self,
        make: impl FnOnce(Sender<Result<(), MultiRingError>>) -> Cmd,
    ) -> Result<(), MultiRingError> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(make(resp_tx));
        resp_rx.recv().unwrap_or(Err(MultiRingError::Engine(
            accelring_daemon::EngineError::UnknownClient(self.name.clone()),
        )))
    }

    /// Joins a group on whichever ring the shard map routes it to.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] for invalid group names.
    pub fn join(&self, group: &str) -> Result<(), MultiRingError> {
        self.call(|resp| Cmd::Join {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] for invalid group names.
    pub fn leave(&self, group: &str) -> Result<(), MultiRingError> {
        self.call(|resp| Cmd::Leave {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Multicasts to one or more groups; all targets must shard onto the
    /// same ring.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::CrossRing`] when the groups span rings,
    /// or the engine's error otherwise.
    pub fn multicast(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<(), MultiRingError> {
        self.send_with_seq(groups, payload, service, 0, false)
    }

    /// Like [`MultiRingClient::multicast`] with the session's next
    /// sequence number stamped on for duplicate suppression; returns it.
    ///
    /// # Errors
    ///
    /// As [`MultiRingClient::multicast`].
    pub fn multicast_sequenced(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<u64, MultiRingError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.send_with_seq(groups, payload, service, seq, false)?;
        Ok(seq)
    }

    /// Sequenced multicast to groups that may span rings: the send is
    /// split into one fragment per ring (same payload, same sequence),
    /// each covering that ring's subset of the groups. See
    /// [`MultiRingEngine::client_multicast_spanning`] for the commit
    /// rule consumers apply. Returns the stamped sequence.
    ///
    /// # Errors
    ///
    /// As [`MultiRingClient::multicast`], except cross-ring group sets
    /// are accepted.
    pub fn multicast_spanning(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<u64, MultiRingError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.send_with_seq(groups, payload, service, seq, true)?;
        Ok(seq)
    }

    fn send_with_seq(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
        spanning: bool,
    ) -> Result<(), MultiRingError> {
        self.call(|resp| Cmd::Multicast {
            name: self.name.clone(),
            groups: groups.iter().map(|g| g.to_string()).collect(),
            payload,
            service,
            seq,
            spanning,
            resp,
        })
    }

    /// Disconnects, leaving every group.
    pub fn disconnect(self) {
        let _ = self.cmd_tx.send(Cmd::Disconnect {
            name: self.name.clone(),
        });
    }
}

/// Why the pump loop ended.
enum Exit {
    Shutdown,
    RingDead { ring: RingIdx, reason: String },
}

/// Pump-side tracking of one in-flight migration: when to give up and
/// escalate to abort, with jittered backoff between escalations.
struct MigrationWatch {
    started: Instant,
    deadline: Instant,
    backoff: Backoff,
    next_abort: Option<Instant>,
}

/// The serving gate of a daemon that is still catching up: it pulls a
/// state snapshot from its peers under backoff and drops client HELLOs
/// until a snapshot lands (or the deadline passes and it serves anyway).
struct Catchup {
    peers: Vec<SocketAddr>,
    /// Nonce stamped on this incarnation's MAP_PULLs; pushes carrying
    /// any other nonce are someone else's and are ignored.
    nonce: u64,
    started: Instant,
    deadline: Instant,
    backoff: Backoff,
    next_pull: Option<Instant>,
}

struct Pump {
    engine: MultiRingEngine,
    /// All client sessions — in-process channel adapters and remote UDP
    /// sessions alike — behind one slab-indexed mux with shared shed
    /// accounting and fair egress.
    mux: SessionMux,
    /// Frontend snapshot store read by [`MultiRingDaemon::frontend_stats`].
    shared: Arc<Mutex<FrontendStats>>,
    /// Frontend counters as of the last export, for delta-mirroring the
    /// shed counts into the transport probe.
    reported_frontend: FrontendStats,
    /// Highest regular-configuration counter seen on any ring; carried
    /// by skip ticks so lagging rings align to the newest epoch base.
    max_epoch: u64,
    /// Submissions a ring's bounded queue refused, replayed in FIFO
    /// order under jittered backoff instead of being dropped — a held
    /// migration flush must not vanish to backpressure.
    retries: VecDeque<(RingIdx, Bytes, Service)>,
    retry_backoff: Backoff,
    next_retry: Option<Instant>,
    watches: HashMap<String, MigrationWatch>,
    /// Engine counters already reported onto the probe.
    reported: MigrationCounters,
    /// Engine map adoptions already reported onto the probe.
    reported_maps_adopted: u64,
    /// `Some` while the serving gate is closed waiting for catch-up.
    catchup: Option<Catchup>,
    /// Application state mounted on this daemon (serves SVC_QUERY
    /// frames, rides the recovery pull path).
    app: Option<Arc<dyn AppState>>,
    /// Ring-0 node's probe doubles as the daemon-level counter sink for
    /// migration lifecycle stats.
    probe: TransportProbe,
}

impl Pump {
    fn dispatch(&mut self, outputs: Vec<MultiOutput>, nodes: &[NodeHandle]) {
        for out in outputs {
            match out {
                MultiOutput::Submit {
                    ring,
                    payload,
                    service,
                } => {
                    // Queue behind any pending retry for the same ring:
                    // sender FIFO is what orders a daemon's Ready after
                    // its join replays, so overtaking is not allowed.
                    if self.retries.iter().any(|(r, _, _)| *r == ring) {
                        self.retries.push_back((ring, payload, service));
                        continue;
                    }
                    match nodes[ring.as_usize()].submit(payload.clone(), service) {
                        Ok(()) => {}
                        Err(SubmitError::Backlogged) => {
                            self.retries.push_back((ring, payload, service));
                        }
                        // Ring dying; its Fault event ends the pump.
                        Err(SubmitError::Stopped) => {}
                    }
                }
                MultiOutput::Local { client, event } => {
                    self.mux.deliver(&client, event);
                }
            }
        }
    }

    /// Replays backpressured submissions once their backoff elapses.
    fn flush_retries(&mut self, nodes: &[NodeHandle]) {
        if self.retries.is_empty() {
            return;
        }
        if let Some(t) = self.next_retry {
            if Instant::now() < t {
                return;
            }
        }
        while let Some((ring, payload, service)) = self.retries.pop_front() {
            match nodes[ring.as_usize()].submit(payload.clone(), service) {
                Ok(()) => continue,
                Err(SubmitError::Backlogged) => {
                    self.retries.push_front((ring, payload, service));
                    self.next_retry = Some(Instant::now() + self.retry_backoff.next_delay());
                    return;
                }
                Err(SubmitError::Stopped) => continue,
            }
        }
        self.retry_backoff.reset();
        self.next_retry = None;
    }

    /// Drives migration timeouts and mirrors the engine's lifecycle
    /// counters onto the transport probe.
    fn service_migrations(&mut self, nodes: &[NodeHandle], timeout: Duration) {
        let inflight: std::collections::BTreeSet<String> = self
            .engine
            .migrations_in_flight()
            .into_iter()
            .map(|(g, _, _)| g)
            .collect();
        // Decisions that landed: record the fence wait, drop the watch.
        let finished: Vec<String> = self
            .watches
            .keys()
            .filter(|g| !inflight.contains(*g))
            .cloned()
            .collect();
        for g in finished {
            if let Some(w) = self.watches.remove(&g) {
                self.probe.note_fence_wait(w.started.elapsed());
            }
        }
        let now = Instant::now();
        let pid = nodes[0].pid().as_u16();
        for g in &inflight {
            self.watches.entry(g.clone()).or_insert_with(|| {
                let seed = g.bytes().fold(u64::from(pid), |h, b| {
                    h.wrapping_mul(31).wrapping_add(u64::from(b))
                });
                MigrationWatch {
                    started: now,
                    deadline: now + timeout,
                    backoff: Backoff::new(Duration::from_millis(100), Duration::from_secs(1), seed),
                    next_abort: None,
                }
            });
        }
        // Past-deadline migrations: escalate to abort (ordered on the
        // source ring; first escalation to land decides for everyone),
        // re-sending under backoff until the decision comes back.
        let due: Vec<String> = self
            .watches
            .iter()
            .filter(|(g, w)| {
                inflight.contains(*g) && now >= w.deadline && w.next_abort.is_none_or(|t| now >= t)
            })
            .map(|(g, _)| g.clone())
            .collect();
        for g in due {
            let outs = self.engine.abort_migration(&g);
            self.dispatch(outs, nodes);
            if let Some(w) = self.watches.get_mut(&g) {
                w.next_abort = Some(Instant::now() + w.backoff.next_delay());
            }
        }
        let c = self.engine.migration_counters();
        let d = self.reported;
        if c.started > d.started {
            self.probe.note_migrations_started(c.started - d.started);
        }
        if c.committed > d.committed {
            self.probe
                .note_migrations_committed(c.committed - d.committed);
        }
        if c.aborted > d.aborted {
            self.probe.note_migrations_aborted(c.aborted - d.aborted);
        }
        if c.redirected > d.redirected {
            self.probe
                .note_submissions_redirected(c.redirected - d.redirected);
        }
        self.reported = c;
    }

    /// Routes the engine-relevant frames surfaced by one ingest burst of
    /// the session socket.
    fn handle_ingress(&mut self, ingress: &mut Vec<Ingress>, nodes: &[NodeHandle]) {
        for ing in ingress.drain(..) {
            match ing {
                Ingress::Hello {
                    name,
                    resume_seq,
                    nonce,
                    addr,
                } => {
                    // A daemon still catching up must not welcome
                    // clients onto a stale shard map or unseeded dedup
                    // state. The HELLO is dropped *silently* — an ERROR
                    // reply would make `SessionClient::connect` fail
                    // immediately, while a timeout keeps it in its
                    // retry loop, which comfortably outlasts the gate.
                    if self.catchup.is_some() {
                        continue;
                    }
                    // Split borrow: the mux decides new-vs-resume, the
                    // engine registers genuinely new clients (on every
                    // ring at once).
                    let engine = &mut self.engine;
                    let mux = &mut self.mux;
                    mux.handle_hello(name, resume_seq, nonce, addr, |n| {
                        engine.client_connect(n).map_err(|e| match e {
                            MultiRingError::Engine(e) => e,
                            // `client_connect` cannot raise the
                            // multi-ring-only variants; keep the message
                            // for the ERROR frame if it ever does.
                            other => EngineError::UnknownClient(other.to_string()),
                        })
                    });
                }
                Ingress::Submit {
                    name,
                    seq,
                    service,
                    action,
                } => {
                    let result = match action {
                        GroupAction::Data { groups, payload } => {
                            let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                            // The wire protocol has no spanning flag, so
                            // a remote cross-ring multicast degrades to
                            // the split-per-ring path instead of being
                            // silently counted away — remote KV clients
                            // reach cross-shard transactions this way.
                            match self.engine.client_multicast_sequenced(
                                &name,
                                &refs,
                                payload.clone(),
                                service,
                                seq,
                            ) {
                                Err(MultiRingError::CrossRing { .. }) => self
                                    .engine
                                    .client_multicast_spanning(&name, &refs, payload, service, seq),
                                other => other,
                            }
                        }
                        GroupAction::Join { group } => self.engine.client_join(&name, &group),
                        GroupAction::Leave { group } => self.engine.client_leave(&name, &group),
                        GroupAction::Disconnect => {
                            let result = self.engine.client_disconnect(&name);
                            self.mux.close_name(&name);
                            result
                        }
                    };
                    match result {
                        Ok(outputs) => self.dispatch(outputs, nodes),
                        // Cross-ring multicasts land here too: the wire
                        // protocol has no per-submit reply, so a rejected
                        // remote submit is counted, not answered.
                        Err(_) => self.mux.note_rejected(),
                    }
                }
                Ingress::Bye { name } => {
                    if let Ok(outputs) = self.engine.client_disconnect(&name) {
                        self.dispatch(outputs, nodes);
                    }
                }
                Ingress::MapPull {
                    nonce,
                    want_epoch,
                    addr,
                } => {
                    // Serve a state snapshot to a rejoining peer — but
                    // only from trustworthy state: a daemon that is
                    // itself gated, or whose view is behind what the
                    // requester already observed, stays silent and
                    // lets a fresher peer (or the requester's own
                    // deadline) answer.
                    if self.catchup.is_some() || self.max_epoch < want_epoch {
                        continue;
                    }
                    let snap = RecoverySnapshot {
                        epoch: self.max_epoch,
                        cursor: self.engine.merge_cursor(),
                        map: self.engine.map_msg(),
                        seqs: self.engine.export_seqs(),
                        app: self.app.as_ref().map(|a| a.snapshot()).unwrap_or_default(),
                    };
                    let frame = SessionFrame::MapPush {
                        nonce,
                        epoch: snap.epoch,
                        slot: snap.cursor,
                        map_version: snap.map.version,
                        body: encode_snapshot(&snap),
                    };
                    self.mux.send_session_frame(&frame, addr);
                    self.probe.note_recovery_pushes_served(1);
                }
                Ingress::MapPush { nonce, body, .. } => {
                    // Only a gated daemon consumes pushes, and only for
                    // the pull nonce it stamped this incarnation; late
                    // or unsolicited pushes are ignored. A malformed
                    // body degrades to the next backoff pull — a
                    // misbehaving peer cannot wedge recovery.
                    let matches = self.catchup.as_ref().is_some_and(|c| c.nonce == nonce);
                    if !matches {
                        continue;
                    }
                    let Ok(snap) = decode_snapshot(body) else {
                        continue;
                    };
                    // Both applications are monotone (strictly-newer
                    // map adoption, max-merged watermarks), so a
                    // snapshot racing this daemon's own ring traffic
                    // is safe in either order.
                    self.engine.adopt_map(&snap.map);
                    self.engine.seed_seqs(&snap.seqs);
                    if !snap.app.is_empty() {
                        if let Some(app) = &self.app {
                            app.install(&snap.app);
                        }
                    }
                    self.max_epoch = self.max_epoch.max(snap.epoch);
                    self.probe.note_recovery_snapshots_applied(1);
                    if let Some(c) = self.catchup.take() {
                        self.probe.note_recovery_catchup_wait(c.started.elapsed());
                    }
                }
                Ingress::SvcQuery { nonce, body, addr } => {
                    // Answered outside the ordered path — but never from
                    // behind the serving gate: a catching-up daemon's
                    // application state is as stale as its shard map.
                    if self.catchup.is_some() {
                        continue;
                    }
                    let reply = self.app.as_ref().and_then(|a| a.query(&body));
                    if let Some(body) = reply {
                        let frame = SessionFrame::SvcReply { nonce, body };
                        self.mux.send_session_frame(&frame, addr);
                    }
                }
            }
        }
    }

    /// Drives the catch-up gate: re-sends MAP_PULLs under backoff and
    /// opens the gate at the deadline if no snapshot ever landed (every
    /// peer gone means this daemon *is* the cluster now).
    fn service_catchup(&mut self) {
        let Some(c) = self.catchup.as_mut() else {
            return;
        };
        let now = Instant::now();
        if now >= c.deadline {
            let c = self.catchup.take().expect("catchup present");
            self.probe.note_recovery_catchup_wait(c.started.elapsed());
            return;
        }
        if c.next_pull.is_some_and(|t| now < t) {
            return;
        }
        c.next_pull = Some(now + c.backoff.next_delay());
        let nonce = c.nonce;
        let peers = c.peers.clone();
        // Advertise the epoch this daemon has already observed through
        // its reforming rings: a peer that has not seen that far yet is
        // not a catch-up source and stays silent.
        let frame = SessionFrame::MapPull {
            nonce,
            want_epoch: self.max_epoch,
        };
        for addr in &peers {
            self.mux.send_session_frame(&frame, *addr);
        }
        self.probe.note_recovery_pulls_sent(peers.len() as u64);
    }

    /// Handles one client command; `true` ends the pump loop.
    fn handle_cmd(&mut self, cmd: Cmd, nodes: &[NodeHandle]) -> bool {
        match cmd {
            Cmd::Connect { name, events, resp } => {
                let result = self.engine.client_connect(&name);
                if result.is_ok() {
                    self.mux.open_adapter(&name, events);
                }
                let _ = resp.send(result);
            }
            Cmd::Join { name, group, resp } => {
                let result = self.engine.client_join(&name, &group);
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::Leave { name, group, resp } => {
                let result = self.engine.client_leave(&name, &group);
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::Multicast {
                name,
                groups,
                payload,
                service,
                seq,
                spanning,
                resp,
            } => {
                let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                let result = if spanning {
                    self.engine
                        .client_multicast_spanning(&name, &refs, payload, service, seq)
                } else {
                    self.engine
                        .client_multicast_sequenced(&name, &refs, payload, service, seq)
                };
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::Disconnect { name } => {
                if let Ok(outputs) = self.engine.client_disconnect(&name) {
                    self.dispatch(outputs, nodes);
                }
                self.mux.close_name(&name);
            }
            Cmd::Migrate { group, to, resp } => {
                let result = self.engine.begin_migration(&group, to);
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::ExportSeqs { resp } => {
                let _ = resp.send(self.engine.export_seqs());
            }
            Cmd::Inspect { resp } => {
                let _ = resp.send(DaemonInspect {
                    map_version: self.engine.shards().version(),
                    merge_cursor: self.engine.merge_cursor(),
                    max_epoch: self.max_epoch,
                    catching_up: self.catchup.is_some(),
                });
            }
            Cmd::Shutdown => return true,
        }
        false
    }

    /// Publishes frontend counters and mirrors shed deltas into the
    /// ring-0 transport probe so chaos/leak tooling watching
    /// [`TransportStats`] sees the frontend's drops too.
    fn export_frontend_stats(&mut self) {
        let now = self.mux.stats();
        let d_slow = now.shed_slow_session - self.reported_frontend.shed_slow_session;
        let d_budget = now.shed_global_budget - self.reported_frontend.shed_global_budget;
        let d_race = now.shed_disconnect_race - self.reported_frontend.shed_disconnect_race;
        if d_slow > 0 {
            self.probe.note_events_shed(ShedCause::SlowSession, d_slow);
        }
        if d_budget > 0 {
            self.probe
                .note_events_shed(ShedCause::GlobalBudget, d_budget);
        }
        if d_race > 0 {
            self.probe
                .note_events_shed(ShedCause::DisconnectRace, d_race);
        }
        self.reported_frontend = now;
        *self.shared.lock().expect("frontend stats lock") = now;
    }

    /// Mirrors the engine's shard-map adoption count onto the probe so
    /// chaos/bench tooling watching [`TransportStats`] sees gossip heal.
    fn mirror_recovery_counters(&mut self) {
        let adopted = self.engine.maps_adopted();
        if adopted > self.reported_maps_adopted {
            self.probe
                .note_recovery_maps_adopted(adopted - self.reported_maps_adopted);
            self.reported_maps_adopted = adopted;
        }
    }
}

fn pump(
    nodes: Vec<NodeHandle>,
    shards: ShardMap,
    cmd_rx: Receiver<Cmd>,
    options: MultiRingOptions,
    mux: SessionMux,
    shared: Arc<Mutex<FrontendStats>>,
    probe: TransportProbe,
) {
    let pid = nodes[0].pid();
    let mut engine = MultiRingEngine::with_options(pid, shards, options.lambda, options.engine);
    // In-process seed first (free), network catch-up second: both are
    // monotone, so layering them can only tighten the dedup watermarks.
    if let Some(seed) = &options.recovery_seed {
        engine.seed_seqs(seed);
    }
    // The serving gate only arms when there is a socket to pull
    // through; an adapter-only daemon cannot reach its peers.
    let catchup = if !options.recovery_peers.is_empty() && mux.local_addr().is_some() {
        let now = Instant::now();
        // Wall-clock entropy keeps a restarted incarnation's nonce from
        // colliding with its predecessor's, so a push answering the old
        // incarnation's pull is ignored (harmless anyway — application
        // is monotone — but the counters stay honest).
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (u64::from(pid.as_u16()) << 48);
        Some(Catchup {
            peers: options.recovery_peers.clone(),
            nonce,
            started: now,
            deadline: now + CATCHUP_DEADLINE,
            backoff: Backoff::new(
                Duration::from_millis(10),
                Duration::from_millis(250),
                u64::from(pid.as_u16()),
            ),
            next_pull: None,
        })
    } else {
        None
    };
    let mut p = Pump {
        engine,
        mux,
        shared,
        reported_frontend: FrontendStats::default(),
        max_epoch: 0,
        retries: VecDeque::new(),
        retry_backoff: Backoff::new(
            Duration::from_millis(2),
            Duration::from_millis(250),
            u64::from(pid.as_u16()),
        ),
        next_retry: None,
        watches: HashMap::new(),
        reported: MigrationCounters::default(),
        reported_maps_adopted: 0,
        catchup,
        app: options.app_state.clone(),
        probe,
    };
    // When each ring last delivered anything (ticks included): the
    // idleness clock pacing this daemon's skip ticks.
    let mut last_delivery = vec![Instant::now(); nodes.len()];
    // With a session socket, the reactor parks on its descriptor: a
    // datagram wakes it instantly, channel work is drained each tick.
    // Without one, the old fully channel-driven select blocks until a
    // command or ring event arrives (or the tick interval elapses).
    let mut poller = Poller::new();
    let session_fd = p.mux.poll_fd();
    if let Some(fd) = session_fd {
        poller.set_fds(&[fd]);
    }
    let mut ingress: Vec<Ingress> = Vec::new();

    let exit = 'pump: loop {
        if session_fd.is_some() {
            // Skip the park entirely while egress is backed up: drain it.
            let tick = if p.mux.has_pending_egress() {
                Duration::ZERO
            } else {
                REACTOR_TICK
            };
            poller.wait(tick);
        } else {
            let mut sel = Select::new();
            sel.recv(&cmd_rx);
            for node in &nodes {
                sel.recv(node.events());
            }
            let _ = sel.ready_timeout(options.tick_interval);
        }
        p.mux.note_wakeup();

        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if p.handle_cmd(cmd, &nodes) {
                        break 'pump Exit::Shutdown;
                    }
                }
                Err(TryRecvError::Empty) => break,
                // Every daemon and client handle dropped without Shutdown.
                Err(TryRecvError::Disconnected) => break 'pump Exit::Shutdown,
            }
        }
        // Session ingest before the engine flush: submits that just
        // arrived ride the same flush as this tick's command traffic.
        p.mux.ingest(&mut ingress);
        if !ingress.is_empty() {
            p.handle_ingress(&mut ingress, &nodes);
        }
        // Close partially packed payloads so buffered client messages are
        // not held hostage waiting for more traffic.
        let flushed = p.engine.flush();
        p.dispatch(flushed, &nodes);

        for k in 0..nodes.len() {
            let ring = RingIdx::new(k as u16);
            loop {
                match nodes[k].events().try_recv() {
                    Ok(AppEvent::Delivered(d)) => {
                        last_delivery[k] = Instant::now();
                        let outputs = p.engine.on_delivery(ring, &d);
                        p.dispatch(outputs, &nodes);
                    }
                    Ok(AppEvent::Config(c)) => {
                        if !c.transitional {
                            p.max_epoch = p.max_epoch.max(c.ring_id.counter());
                        }
                        let outputs = p.engine.on_config_change(ring, &c);
                        p.dispatch(outputs, &nodes);
                    }
                    Ok(AppEvent::Fault { reason }) => {
                        break 'pump Exit::RingDead { ring, reason };
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        break 'pump Exit::RingDead {
                            ring,
                            reason: "node thread exited".to_string(),
                        };
                    }
                }
            }
        }

        p.flush_retries(&nodes);
        p.service_migrations(&nodes, options.migration_timeout);
        p.service_catchup();
        p.mirror_recovery_counters();

        // Skip ticks, the Multi-Ring Paxos coordinator-skip rule: the
        // participant-0 daemon orders an epoch-carrying no-op on any
        // ring that has been silent for a tick interval, whether or not
        // its *own* merge is blocked — other daemons' mergers may be
        // waiting on the idle ring even when this one has nothing
        // queued. The tick's delivery resets the idleness clock, so a
        // persistently idle ring costs one tiny ordered message per
        // interval; being ordered on the ring makes the advance (and
        // the epoch alignment of a never-reforming ring) intrinsic to
        // the ring's stream, identical at every observer.
        if nodes[0].pid() == ParticipantId::new(0) {
            for (k, last) in last_delivery.iter_mut().enumerate() {
                if last.elapsed() >= options.tick_interval {
                    let _ = nodes[k].submit(tick_payload_with_epoch(p.max_epoch), Service::Agreed);
                    // Also reset on submission: while the ring cannot
                    // order (reforming, partitioned), at most one tick
                    // per interval is queued, not one per loop spin.
                    *last = Instant::now();
                }
            }
        }
        p.mux.flush_egress();
        p.export_frontend_stats();
    };

    match exit {
        Exit::Shutdown => {
            p.mux.flush_egress();
            p.mux.broadcast_disconnected("daemon shutdown");
            for node in nodes {
                node.shutdown();
            }
        }
        Exit::RingDead { ring, reason } => {
            p.mux.flush_egress();
            p.mux
                .broadcast_disconnected(&format!("{ring} died: {reason}"));
            for node in nodes {
                if node.is_alive() {
                    node.shutdown();
                }
            }
        }
    }
    p.export_frontend_stats();
}
