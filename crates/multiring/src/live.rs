//! The runnable multi-ring daemon: a [`MultiRingEngine`] pumped by one
//! thread over R real UDP transport nodes (one per ring), serving
//! in-process clients through channels — the multi-ring analogue of
//! `accelring_daemon::GroupDaemon`.
//!
//! The pump routes every submission to the ring the shard map chose,
//! feeds each ring's deliveries and configuration changes into the
//! deterministic merge, and hands clients their events in the merged
//! cross-ring total order. When any ring's node dies (panic, kill
//! switch, or plain exit) every connected client receives a terminal
//! [`ClientEvent::Disconnected`] — a multi-ring daemon without all of
//! its rings cannot keep its merge promise.
//!
//! ## Idle-ring skip ticks
//!
//! The merge cannot release past a ring that is silent: nothing proves
//! the silent ring will not later order a message with a smaller merge
//! slot. Daemons whose node holds participant id 0 on a blocking ring
//! submit *skip ticks* on it — ordered no-ops carrying the highest
//! regular-configuration counter seen across all rings
//! ([`accelring_daemon::packing::tick_payload_with_epoch`]). Being
//! ordered on the lagging ring makes the advance intrinsic to that
//! ring's stream: every observer aligns the ring's λ-clock identically,
//! and a ring that never reformed catches up to a reformed ring's
//! epoch base.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use accelring_core::{ParticipantId, RingIdx, Service};
use accelring_daemon::packing::tick_payload_with_epoch;
use accelring_daemon::{ClientEvent, EngineOptions};
use accelring_transport::{AppEvent, NodeHandle, TransportProbe, TransportStats};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender, TryRecvError};

use crate::engine::{MultiOutput, MultiRingEngine, MultiRingError};
use crate::shard::ShardMap;

/// How long the pump blocks handing a terminal
/// [`ClientEvent::Disconnected`] to a slow client before giving up.
const DISCONNECT_SEND_TIMEOUT: Duration = Duration::from_secs(1);

/// Runtime settings for a [`MultiRingDaemon`].
#[derive(Debug, Clone, Copy)]
pub struct MultiRingOptions {
    /// Packing/fragmentation settings for the per-ring engines.
    pub engine: EngineOptions,
    /// Merge pace: token rounds per merge slot.
    pub lambda: u64,
    /// How often the tick leader checks for blocking rings and orders a
    /// skip tick on them. Bounds the merge latency an idle ring adds.
    pub tick_interval: Duration,
}

impl Default for MultiRingOptions {
    fn default() -> Self {
        MultiRingOptions {
            engine: EngineOptions::default(),
            lambda: 1,
            tick_interval: Duration::from_millis(25),
        }
    }
}

enum Cmd {
    Connect {
        name: String,
        events: Sender<ClientEvent>,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Join {
        name: String,
        group: String,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Leave {
        name: String,
        group: String,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Multicast {
        name: String,
        groups: Vec<String>,
        payload: Bytes,
        service: Service,
        seq: u64,
        resp: Sender<Result<(), MultiRingError>>,
    },
    Disconnect {
        name: String,
    },
    Shutdown,
}

/// A running multi-ring daemon: one transport node per ring plus the
/// routing engine, serving local clients in the merged order.
#[derive(Debug)]
pub struct MultiRingDaemon {
    cmd_tx: Sender<Cmd>,
    thread: Option<std::thread::JoinHandle<()>>,
    probes: Vec<TransportProbe>,
}

impl MultiRingDaemon {
    /// Starts the multi-ring layer over one running transport node per
    /// ring (`nodes[k]` is this daemon's node on ring `k`) with default
    /// options.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, its length disagrees with
    /// `shards.rings()`, or the nodes carry different participant ids —
    /// one daemon must be the same participant on every ring.
    pub fn start(nodes: Vec<NodeHandle>, shards: ShardMap) -> MultiRingDaemon {
        MultiRingDaemon::start_with(nodes, shards, MultiRingOptions::default())
    }

    /// Starts the multi-ring layer with explicit options.
    ///
    /// # Panics
    ///
    /// As [`MultiRingDaemon::start`].
    pub fn start_with(
        nodes: Vec<NodeHandle>,
        shards: ShardMap,
        options: MultiRingOptions,
    ) -> MultiRingDaemon {
        assert!(!nodes.is_empty(), "a multi-ring daemon needs rings");
        assert_eq!(
            nodes.len(),
            shards.rings() as usize,
            "one node per shard-map ring"
        );
        let pid = nodes[0].pid();
        assert!(
            nodes.iter().all(|n| n.pid() == pid),
            "one daemon must be the same participant on every ring"
        );
        let (cmd_tx, cmd_rx) = unbounded();
        // Taken before the handles move into the pump thread: one probe
        // per ring keeps the transport counters readable from outside.
        let probes: Vec<TransportProbe> = nodes.iter().map(NodeHandle::probe).collect();
        let thread = std::thread::Builder::new()
            .name(format!("multiring-daemon-{pid}"))
            .spawn(move || pump(nodes, shards, cmd_rx, options))
            .expect("spawn multi-ring daemon thread");
        MultiRingDaemon {
            cmd_tx,
            thread: Some(thread),
            probes,
        }
    }

    /// Per-ring snapshots of the underlying transport nodes' counters
    /// (`stats[k]` is this daemon's node on ring `k`), readable even
    /// though the node handles live inside the pump thread.
    pub fn transport_stats(&self) -> Vec<TransportStats> {
        self.probes.iter().map(TransportProbe::stats).collect()
    }

    /// Clonable per-ring probes onto transport counters and buffer pools,
    /// outliving this daemon's shutdown (useful for leak checks).
    pub fn transport_probes(&self) -> Vec<TransportProbe> {
        self.probes.clone()
    }

    /// Connects a new local client with no session history.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] for invalid or duplicate names.
    pub fn connect(&self, name: &str) -> Result<MultiRingClient, MultiRingError> {
        let (event_tx, event_rx) = unbounded();
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(Cmd::Connect {
            name: name.to_string(),
            events: event_tx,
            resp: resp_tx,
        });
        resp_rx.recv().unwrap_or(Err(MultiRingError::Engine(
            accelring_daemon::EngineError::UnknownClient(name.to_string()),
        )))?;
        Ok(MultiRingClient {
            name: name.to_string(),
            cmd_tx: self.cmd_tx.clone(),
            event_rx,
            next_seq: AtomicU64::new(0),
        })
    }

    /// Stops the daemon thread and every ring node. Connected clients
    /// receive [`ClientEvent::Disconnected`].
    pub fn shutdown(mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MultiRingDaemon {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A client connected to a local [`MultiRingDaemon`]. Its event stream
/// is the daemon's merged cross-ring total order, filtered to this
/// client's groups.
#[derive(Debug)]
pub struct MultiRingClient {
    name: String,
    cmd_tx: Sender<Cmd>,
    event_rx: Receiver<ClientEvent>,
    next_seq: AtomicU64,
}

impl MultiRingClient {
    /// This client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The merged stream of messages, views, configuration notices, and
    /// the terminal [`ClientEvent::Disconnected`].
    pub fn events(&self) -> &Receiver<ClientEvent> {
        &self.event_rx
    }

    fn call(
        &self,
        make: impl FnOnce(Sender<Result<(), MultiRingError>>) -> Cmd,
    ) -> Result<(), MultiRingError> {
        let (resp_tx, resp_rx) = bounded(1);
        let _ = self.cmd_tx.send(make(resp_tx));
        resp_rx.recv().unwrap_or(Err(MultiRingError::Engine(
            accelring_daemon::EngineError::UnknownClient(self.name.clone()),
        )))
    }

    /// Joins a group on whichever ring the shard map routes it to.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] for invalid group names.
    pub fn join(&self, group: &str) -> Result<(), MultiRingError> {
        self.call(|resp| Cmd::Join {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Leaves a group.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError`] for invalid group names.
    pub fn leave(&self, group: &str) -> Result<(), MultiRingError> {
        self.call(|resp| Cmd::Leave {
            name: self.name.clone(),
            group: group.to_string(),
            resp,
        })
    }

    /// Multicasts to one or more groups; all targets must shard onto the
    /// same ring.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::CrossRing`] when the groups span rings,
    /// or the engine's error otherwise.
    pub fn multicast(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<(), MultiRingError> {
        self.send_with_seq(groups, payload, service, 0)
    }

    /// Like [`MultiRingClient::multicast`] with the session's next
    /// sequence number stamped on for duplicate suppression; returns it.
    ///
    /// # Errors
    ///
    /// As [`MultiRingClient::multicast`].
    pub fn multicast_sequenced(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<u64, MultiRingError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.send_with_seq(groups, payload, service, seq)?;
        Ok(seq)
    }

    fn send_with_seq(
        &self,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
    ) -> Result<(), MultiRingError> {
        self.call(|resp| Cmd::Multicast {
            name: self.name.clone(),
            groups: groups.iter().map(|g| g.to_string()).collect(),
            payload,
            service,
            seq,
            resp,
        })
    }

    /// Disconnects, leaving every group.
    pub fn disconnect(self) {
        let _ = self.cmd_tx.send(Cmd::Disconnect {
            name: self.name.clone(),
        });
    }
}

/// Why the pump loop ended.
enum Exit {
    Shutdown,
    RingDead { ring: RingIdx, reason: String },
}

struct Pump {
    engine: MultiRingEngine,
    channels: HashMap<String, Sender<ClientEvent>>,
    /// Highest regular-configuration counter seen on any ring; carried
    /// by skip ticks so lagging rings align to the newest epoch base.
    max_epoch: u64,
}

impl Pump {
    fn dispatch(&mut self, outputs: Vec<MultiOutput>, nodes: &[NodeHandle]) {
        for out in outputs {
            match out {
                MultiOutput::Submit {
                    ring,
                    payload,
                    service,
                } => {
                    let _ = nodes[ring.as_usize()].submit(payload, service);
                }
                MultiOutput::Local { client, event } => {
                    if let Some(tx) = self.channels.get(&client) {
                        let _ = tx.send(event);
                    }
                }
            }
        }
    }

    /// Handles one client command; `true` ends the pump loop.
    fn handle_cmd(&mut self, cmd: Cmd, nodes: &[NodeHandle]) -> bool {
        match cmd {
            Cmd::Connect { name, events, resp } => {
                let result = self.engine.client_connect(&name);
                if result.is_ok() {
                    self.channels.insert(name, events);
                }
                let _ = resp.send(result);
            }
            Cmd::Join { name, group, resp } => {
                let result = self.engine.client_join(&name, &group);
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::Leave { name, group, resp } => {
                let result = self.engine.client_leave(&name, &group);
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::Multicast {
                name,
                groups,
                payload,
                service,
                seq,
                resp,
            } => {
                let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
                let result = self
                    .engine
                    .client_multicast_sequenced(&name, &refs, payload, service, seq);
                let _ = resp.send(result.map(|o| self.dispatch(o, nodes)));
            }
            Cmd::Disconnect { name } => {
                if let Ok(outputs) = self.engine.client_disconnect(&name) {
                    self.dispatch(outputs, nodes);
                }
                self.channels.remove(&name);
            }
            Cmd::Shutdown => return true,
        }
        false
    }

    fn broadcast_disconnected(&self, reason: &str) {
        for tx in self.channels.values() {
            let _ = tx.send_timeout(
                ClientEvent::Disconnected {
                    reason: reason.to_string(),
                },
                DISCONNECT_SEND_TIMEOUT,
            );
        }
    }
}

fn pump(
    nodes: Vec<NodeHandle>,
    shards: ShardMap,
    cmd_rx: Receiver<Cmd>,
    options: MultiRingOptions,
) {
    let mut p = Pump {
        engine: MultiRingEngine::with_options(
            nodes[0].pid(),
            shards,
            options.lambda,
            options.engine,
        ),
        channels: HashMap::new(),
        max_epoch: 0,
    };
    // When each ring last delivered anything (ticks included): the
    // idleness clock pacing this daemon's skip ticks.
    let mut last_delivery = vec![Instant::now(); nodes.len()];

    let exit = 'pump: loop {
        {
            let mut sel = Select::new();
            sel.recv(&cmd_rx);
            for node in &nodes {
                sel.recv(node.events());
            }
            let _ = sel.ready_timeout(options.tick_interval);
        }

        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if p.handle_cmd(cmd, &nodes) {
                        break 'pump Exit::Shutdown;
                    }
                }
                Err(TryRecvError::Empty) => break,
                // Every daemon and client handle dropped without Shutdown.
                Err(TryRecvError::Disconnected) => break 'pump Exit::Shutdown,
            }
        }
        // Close partially packed payloads so buffered client messages are
        // not held hostage waiting for more traffic.
        let flushed = p.engine.flush();
        p.dispatch(flushed, &nodes);

        for k in 0..nodes.len() {
            let ring = RingIdx::new(k as u16);
            loop {
                match nodes[k].events().try_recv() {
                    Ok(AppEvent::Delivered(d)) => {
                        last_delivery[k] = Instant::now();
                        let outputs = p.engine.on_delivery(ring, &d);
                        p.dispatch(outputs, &nodes);
                    }
                    Ok(AppEvent::Config(c)) => {
                        if !c.transitional {
                            p.max_epoch = p.max_epoch.max(c.ring_id.counter());
                        }
                        let outputs = p.engine.on_config_change(ring, &c);
                        p.dispatch(outputs, &nodes);
                    }
                    Ok(AppEvent::Fault { reason }) => {
                        break 'pump Exit::RingDead { ring, reason };
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        break 'pump Exit::RingDead {
                            ring,
                            reason: "node thread exited".to_string(),
                        };
                    }
                }
            }
        }

        // Skip ticks, the Multi-Ring Paxos coordinator-skip rule: the
        // participant-0 daemon orders an epoch-carrying no-op on any
        // ring that has been silent for a tick interval, whether or not
        // its *own* merge is blocked — other daemons' mergers may be
        // waiting on the idle ring even when this one has nothing
        // queued. The tick's delivery resets the idleness clock, so a
        // persistently idle ring costs one tiny ordered message per
        // interval; being ordered on the ring makes the advance (and
        // the epoch alignment of a never-reforming ring) intrinsic to
        // the ring's stream, identical at every observer.
        if nodes[0].pid() == ParticipantId::new(0) {
            for (k, last) in last_delivery.iter_mut().enumerate() {
                if last.elapsed() >= options.tick_interval {
                    let _ = nodes[k].submit(tick_payload_with_epoch(p.max_epoch), Service::Agreed);
                    // Also reset on submission: while the ring cannot
                    // order (reforming, partitioned), at most one tick
                    // per interval is queued, not one per loop spin.
                    *last = Instant::now();
                }
            }
        }
    };

    match exit {
        Exit::Shutdown => {
            p.broadcast_disconnected("daemon shutdown");
            for node in nodes {
                node.shutdown();
            }
        }
        Exit::RingDead { ring, reason } => {
            p.broadcast_disconnected(&format!("{ring} died: {reason}"));
            for node in nodes {
                if node.is_alive() {
                    node.shutdown();
                }
            }
        }
    }
}
