//! The deterministic cross-ring merge.
//!
//! Each ring hands the [`Merger`] its own totally ordered stream; the
//! merger interleaves the streams into one total order every observer
//! computes identically. The rule is Multi-Ring Paxos' deterministic
//! round-robin: each entry is stamped with a λ-quantized merge slot
//! derived from the token round it was ordered in (see
//! [`accelring_core::mclock::LambdaClock`]), and entries are released in
//! global `(slot, ring index)` order, per-ring FIFO within a slot.
//!
//! Crucially, the merged **order** is a pure function of the per-ring
//! streams — slot and ring index are intrinsic to each message — while
//! the per-ring **watermarks** (how far each ring is known to have
//! progressed) control only *when* entries become releasable. Two
//! observers may release at different times, but never in different
//! orders.
//!
//! An idle ring would stall the merge (its watermark stops moving, so
//! other rings' entries at later slots can never be proven final). The
//! fix is Multi-Ring Paxos' skip messages: the runtime orders contentless
//! tick messages on idle rings, and their deliveries advance the
//! watermark through [`Merger::advance`] without enqueuing anything. A
//! permanently dead ring is removed with [`Merger::retire`].

use std::collections::VecDeque;

use accelring_core::{epoch_base, LambdaClock, RingIdx, Round};

/// One released element of the merged stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergedEntry<T> {
    /// An ordered item from one ring.
    Item {
        /// Ring that ordered it.
        ring: RingIdx,
        /// Merge slot it was released at.
        slot: u64,
        /// The item.
        item: T,
    },
    /// An EVS view-change fence: ring `ring` installed a new regular
    /// configuration at this point of the merged stream. Everything the
    /// ring ordered before its view change merges before the fence,
    /// everything after merges after it.
    Fence {
        /// Ring whose configuration changed.
        ring: RingIdx,
        /// Merge slot the fence was released at.
        slot: u64,
        /// The item carried with the fence (e.g. configuration-change
        /// notifications for local clients).
        item: T,
    },
}

impl<T> MergedEntry<T> {
    /// Ring the entry came from.
    pub fn ring(&self) -> RingIdx {
        match self {
            MergedEntry::Item { ring, .. } | MergedEntry::Fence { ring, .. } => *ring,
        }
    }

    /// Merge slot the entry was released at.
    pub fn slot(&self) -> u64 {
        match self {
            MergedEntry::Item { slot, .. } | MergedEntry::Fence { slot, .. } => *slot,
        }
    }

    /// The carried item, discarding merge metadata.
    pub fn into_item(self) -> T {
        match self {
            MergedEntry::Item { item, .. } | MergedEntry::Fence { item, .. } => item,
        }
    }
}

#[derive(Debug)]
struct Queued<T> {
    slot: u64,
    fence: bool,
    item: T,
}

#[derive(Debug)]
struct RingLane<T> {
    clock: LambdaClock,
    queue: VecDeque<Queued<T>>,
    /// Watermark: every future entry of this ring has slot ≥ `floor`.
    floor: u64,
    /// Retired rings never produce again (treated as floor = ∞).
    retired: bool,
}

impl<T> RingLane<T> {
    fn effective_floor(&self) -> u64 {
        if self.retired {
            u64::MAX
        } else {
            self.floor
        }
    }
}

/// Deterministic λ-paced merger over R totally ordered ring streams.
///
/// Feed each ring's deliveries in its own order via [`push`]/[`advance`]
/// and view changes via [`push_fence`]; each call returns the entries the
/// merged stream can now release. The release order is identical for
/// every observer fed the same per-ring streams, regardless of how the
/// calls interleave across rings.
///
/// [`push`]: Merger::push
/// [`advance`]: Merger::advance
/// [`push_fence`]: Merger::push_fence
#[derive(Debug)]
pub struct Merger<T> {
    rings: Vec<RingLane<T>>,
    /// Highest slot released so far (the delivered-slot cursor a state
    /// snapshot is anchored at: a joiner seeded with this cursor resumes
    /// gap-free at `cursor + 1`).
    cursor: u64,
}

impl<T> Merger<T> {
    /// A merger over `rings` rings, all paced at `lambda` rounds per
    /// merge slot.
    pub fn new(rings: u16, lambda: u64) -> Merger<T> {
        Merger {
            rings: (0..rings.max(1))
                .map(|_| RingLane {
                    clock: LambdaClock::new(lambda),
                    queue: VecDeque::new(),
                    floor: 0,
                    retired: false,
                })
                .collect(),
            cursor: 0,
        }
    }

    /// Highest merge slot released so far (0 before the first release).
    /// Every observer fed the same per-ring streams computes the same
    /// cursor after the same releases — it is the snapshot anchor for
    /// ordered state transfer.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Number of rings being merged.
    pub fn rings(&self) -> u16 {
        self.rings.len() as u16
    }

    fn lane(&mut self, ring: RingIdx) -> &mut RingLane<T> {
        &mut self.rings[ring.as_usize()]
    }

    /// The watermark of one ring (∞-as-`u64::MAX` if retired).
    pub fn floor(&self, ring: RingIdx) -> u64 {
        self.rings[ring.as_usize()].effective_floor()
    }

    /// Entries queued but not yet releasable, across all rings.
    pub fn pending(&self) -> usize {
        self.rings.iter().map(|l| l.queue.len()).sum()
    }

    /// Rings whose lagging watermark is what currently blocks the merged
    /// stream (empty when nothing is queued or the head is releasable).
    ///
    /// The live runtime uses this to decide where skip ticks are needed.
    pub fn blocking_rings(&self) -> Vec<RingIdx> {
        let Some((slot, ring)) = self.min_head() else {
            return Vec::new();
        };
        self.rings
            .iter()
            .enumerate()
            .filter(|&(q, lane)| {
                q != ring
                    && !(lane.effective_floor() > slot
                        || (lane.effective_floor() == slot && q > ring))
            })
            .map(|(q, _)| RingIdx::new(q as u16))
            .collect()
    }

    /// Enqueues one ordered item from `ring`, stamped from the token
    /// round it was ordered in, and returns any entries the merged
    /// stream releases as a result.
    pub fn push(&mut self, ring: RingIdx, round: Round, item: T) -> Vec<MergedEntry<T>> {
        let lane = self.lane(ring);
        let slot = lane.clock.stamp(round);
        lane.floor = lane.floor.max(slot);
        lane.queue.push_back(Queued {
            slot,
            fence: false,
            item,
        });
        self.drain()
    }

    /// Advances `ring`'s watermark from an ordered delivery that carries
    /// no client-visible content (a skip tick, an undecodable payload),
    /// and returns any entries the merged stream releases as a result.
    pub fn advance(&mut self, ring: RingIdx, round: Round) -> Vec<MergedEntry<T>> {
        self.advance_to(ring, 0, round)
    }

    /// Like [`advance`](Merger::advance), but the tick also carries a
    /// configuration-epoch hint: the ring's λ-clock is first aligned to
    /// `epoch`'s base. This is how a ring stuck at a low epoch (it never
    /// reformed) stops gating rings whose configurations — and therefore
    /// slot bases — have moved far ahead: the runtime orders an
    /// epoch-carrying tick *on the lagging ring*, so every observer of
    /// that ring's stream aligns at the same point of it.
    pub fn advance_to(&mut self, ring: RingIdx, epoch: u64, round: Round) -> Vec<MergedEntry<T>> {
        let lane = self.lane(ring);
        lane.clock.align(epoch_base(epoch));
        let slot = lane.clock.stamp(round);
        lane.floor = lane.floor.max(slot);
        self.drain()
    }

    /// Records that `ring` installed a new regular configuration with
    /// ring-id counter `epoch`: a fence entry is queued at the ring's
    /// current slot, and the λ-clock is aligned to the configuration's
    /// intrinsic epoch base, so the fresh token's restarted rounds stamp
    /// slots every observer of the ring computes identically — even
    /// observers whose own configuration histories diverged earlier.
    pub fn push_fence(&mut self, ring: RingIdx, epoch: u64, item: T) -> Vec<MergedEntry<T>> {
        let lane = self.lane(ring);
        let slot = lane.clock.current();
        lane.queue.push_back(Queued {
            slot,
            fence: true,
            item,
        });
        lane.clock.align(epoch_base(epoch));
        lane.floor = lane.floor.max(lane.clock.current());
        self.drain()
    }

    /// Enqueues an item at `ring`'s current slot without consuming a
    /// round (used for per-ring events that carry no token round, e.g.
    /// transitional-configuration notifications).
    pub fn push_now(&mut self, ring: RingIdx, item: T) -> Vec<MergedEntry<T>> {
        let lane = self.lane(ring);
        let slot = lane.clock.current();
        lane.queue.push_back(Queued {
            slot,
            fence: false,
            item,
        });
        self.drain()
    }

    /// Permanently removes `ring` from the merge: its queued entries
    /// still release in order, but its watermark no longer gates the
    /// other rings. Called after a rebalance moves the dead ring's
    /// groups elsewhere.
    pub fn retire(&mut self, ring: RingIdx) -> Vec<MergedEntry<T>> {
        self.lane(ring).retired = true;
        self.drain()
    }

    /// Flushes everything still queued, in merge-key order, ignoring
    /// watermarks. Only sound once no ring will produce again (end of a
    /// simulation, offline journal merging).
    pub fn finish(&mut self) -> Vec<MergedEntry<T>> {
        for lane in &mut self.rings {
            lane.retired = true;
        }
        self.drain()
    }

    /// The smallest `(slot, ring)` among queue heads, if any.
    fn min_head(&self) -> Option<(u64, usize)> {
        self.rings
            .iter()
            .enumerate()
            .filter_map(|(i, lane)| lane.queue.front().map(|q| (q.slot, i)))
            .min()
    }

    /// Releases every entry proven final: the globally minimal queued
    /// key, repeatedly, as long as every *other* ring's watermark shows
    /// it can never produce a smaller key.
    fn drain(&mut self) -> Vec<MergedEntry<T>> {
        let mut out = Vec::new();
        while let Some((slot, ring)) = self.min_head() {
            let releasable = self.rings.iter().enumerate().all(|(q, lane)| {
                q == ring
                    || lane.effective_floor() > slot
                    || (lane.effective_floor() == slot && q > ring)
            });
            if !releasable {
                break;
            }
            let q = self.rings[ring].queue.pop_front().expect("head exists");
            self.cursor = self.cursor.max(q.slot);
            let ring = RingIdx::new(ring as u16);
            out.push(if q.fence {
                MergedEntry::Fence {
                    ring,
                    slot: q.slot,
                    item: q.item,
                }
            } else {
                MergedEntry::Item {
                    ring,
                    slot: q.slot,
                    item: q.item,
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: RingIdx = RingIdx::new(0);
    const R1: RingIdx = RingIdx::new(1);
    const R2: RingIdx = RingIdx::new(2);

    fn labels<T: Clone>(entries: &[MergedEntry<T>]) -> Vec<T> {
        entries.iter().map(|e| e.clone().into_item()).collect()
    }

    #[test]
    fn single_ring_passes_through_in_order() {
        let mut m: Merger<u32> = Merger::new(1, 1);
        let mut got = Vec::new();
        for (i, round) in [(1u32, 0u64), (2, 0), (3, 1)] {
            got.extend(m.push(R0, Round::new(round), i));
        }
        got.extend(m.finish());
        assert_eq!(labels(&got), vec![1, 2, 3]);
    }

    #[test]
    fn release_waits_for_other_rings_watermark() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        // Ring 0 orders "a" at slot 0. Ring 1's floor is also 0, but
        // anything ring 1 still produces at slot 0 sorts after ring 0's
        // entries, so "a" is already final.
        let got = m.push(R0, Round::new(0), "a");
        assert_eq!(labels(&got), vec!["a"]);
        // Ring 1 at slot 0 now needs ring 0 to pass slot 0.
        assert!(m.push(R1, Round::new(0), "b").is_empty());
        assert_eq!(m.blocking_rings(), vec![R0]);
        let got = m.advance(R0, Round::new(1));
        assert_eq!(labels(&got), vec!["b"]);
    }

    #[test]
    fn merged_order_is_slot_then_ring() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        let mut got = Vec::new();
        got.extend(m.push(R1, Round::new(0), "r1s0"));
        got.extend(m.push(R1, Round::new(1), "r1s1"));
        got.extend(m.push(R0, Round::new(0), "r0s0"));
        got.extend(m.push(R0, Round::new(1), "r0s1"));
        got.extend(m.finish());
        assert_eq!(labels(&got), vec!["r0s0", "r1s0", "r0s1", "r1s1"]);
    }

    #[test]
    fn merge_order_is_arrival_invariant() {
        // The defining property: any interleaving of the same per-ring
        // streams merges identically.
        let r0 = [(0u64, "a0"), (0, "a1"), (2, "a2")];
        let r1 = [(0u64, "b0"), (1, "b1"), (1, "b2")];
        let r2 = [(3u64, "c0")];
        let feed = |order: &[usize]| {
            let mut m: Merger<&str> = Merger::new(3, 1);
            let (mut i0, mut i1, mut i2) = (0, 0, 0);
            let mut got = Vec::new();
            for &ring in order {
                match ring {
                    0 if i0 < r0.len() => {
                        got.extend(m.push(R0, Round::new(r0[i0].0), r0[i0].1));
                        i0 += 1;
                    }
                    1 if i1 < r1.len() => {
                        got.extend(m.push(R1, Round::new(r1[i1].0), r1[i1].1));
                        i1 += 1;
                    }
                    2 if i2 < r2.len() => {
                        got.extend(m.push(R2, Round::new(r2[i2].0), r2[i2].1));
                        i2 += 1;
                    }
                    _ => {}
                }
            }
            got.extend(m.finish());
            labels(&got)
        };
        let a = feed(&[0, 0, 0, 1, 1, 1, 2]);
        let b = feed(&[2, 1, 0, 1, 0, 1, 0]);
        let c = feed(&[1, 0, 2, 0, 1, 0, 1]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn lambda_batches_rounds_per_slot() {
        let mut m: Merger<&str> = Merger::new(2, 2);
        let mut got = Vec::new();
        // λ=2: rounds 0..2 are slot 0, rounds 2..4 slot 1.
        got.extend(m.push(R0, Round::new(0), "a"));
        got.extend(m.push(R0, Round::new(1), "b"));
        got.extend(m.push(R1, Round::new(0), "c"));
        got.extend(m.push(R0, Round::new(2), "d"));
        got.extend(m.advance(R1, Round::new(2)));
        assert_eq!(labels(&got), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn idle_ring_skip_unblocks_via_advance() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        assert!(m.push(R1, Round::new(5), "late").is_empty());
        assert_eq!(m.blocking_rings(), vec![R0]);
        // Ring 0 is idle; ticks ordered on it advance the watermark
        // without contributing items. A floor *equal* to the blocked
        // slot is not enough for a lower-indexed ring (it may still
        // produce more messages in that slot's rounds).
        assert!(m.advance(R0, Round::new(3)).is_empty());
        assert!(m.advance(R0, Round::new(5)).is_empty());
        let got = m.advance(R0, Round::new(6));
        assert_eq!(labels(&got), vec!["late"]);
        assert!(m.blocking_rings().is_empty());
    }

    #[test]
    fn fence_orders_between_epochs_and_carries_forward() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        let mut got = Vec::new();
        got.extend(m.push(R0, Round::new(4), "old"));
        got.extend(m.push_fence(R0, 8, "fence"));
        // New configuration (counter 8): rounds restart, slots continue
        // from the configuration's intrinsic epoch base.
        got.extend(m.push(R0, Round::new(0), "new"));
        got.extend(m.push(R0, Round::new(3), "newer"));
        got.extend(m.retire(R1));
        got.extend(m.finish());
        assert_eq!(labels(&got), vec!["old", "fence", "new", "newer"]);
        assert_eq!(got[2].slot(), accelring_core::epoch_base(8));
        let fence = |e: &MergedEntry<&str>| matches!(e, MergedEntry::Fence { .. });
        assert_eq!(got.iter().position(fence), Some(1));
        // Slots never rewind across the fence.
        let slots: Vec<u64> = got.iter().map(MergedEntry::slot).collect();
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn divergent_config_histories_stamp_common_messages_identically() {
        // Two observers of the same ring saw different configuration
        // histories (one transited an extra configuration while
        // partitioned away), yet messages common to both get identical
        // slots: the stamp derives from the delivering configuration's
        // counter, never from the observer's accumulated history.
        let run = |extra: bool| {
            let mut m: Merger<&str> = Merger::new(1, 1);
            let mut got = Vec::new();
            got.extend(m.push_fence(R0, 4, "cfg4"));
            got.extend(m.push(R0, Round::new(1), "common1"));
            if extra {
                got.extend(m.push_fence(R0, 8, "cfg8"));
                got.extend(m.push(R0, Round::new(7), "private"));
            }
            got.extend(m.push_fence(R0, 12, "cfg12"));
            got.extend(m.push(R0, Round::new(2), "common2"));
            got.extend(m.finish());
            got.into_iter()
                .filter_map(|e| match e {
                    MergedEntry::Item { slot, item, .. } if item.starts_with("common") => {
                        Some((item, slot))
                    }
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn epoch_carrying_tick_unblocks_a_lagging_ring() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        // Ring 0 reformed (counter 8); ring 1 never did. Ring 0's
        // post-reformation message sits above every slot ring 1's local
        // rounds can reach.
        let fence = m.push_fence(R0, 8, "cfg");
        assert_eq!(labels(&fence), vec!["cfg"]);
        assert!(m.push(R0, Round::new(1), "blocked").is_empty());
        assert_eq!(m.blocking_rings(), vec![R1]);
        // A plain tick on ring 1 cannot help: its local rounds stamp
        // below ring 0's epoch base forever…
        assert!(m.advance(R1, Round::new(50)).is_empty());
        // …but an epoch-carrying tick aligns ring 1 past that base.
        let got = m.advance_to(R1, 8, Round::new(51));
        assert_eq!(labels(&got), vec!["blocked"]);
    }

    #[test]
    fn retire_removes_a_dead_ring_from_the_gate() {
        let mut m: Merger<&str> = Merger::new(3, 1);
        assert!(m.push(R1, Round::new(2), "x").is_empty());
        assert!(m.advance(R2, Round::new(9)).is_empty());
        // Ring 0 is dead. Retiring it leaves rings 1 and 2 to merge.
        let got = m.retire(R0);
        assert_eq!(labels(&got), vec!["x"]);
    }

    #[test]
    fn push_now_orders_at_current_slot() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        let mut got = Vec::new();
        got.extend(m.push(R0, Round::new(1), "a"));
        got.extend(m.push_now(R0, "note"));
        got.extend(m.push(R0, Round::new(2), "b"));
        got.extend(m.retire(R1));
        got.extend(m.finish());
        assert_eq!(labels(&got), vec!["a", "note", "b"]);
    }

    #[test]
    fn cursor_tracks_max_released_slot() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        assert_eq!(m.cursor(), 0);
        // Nothing queued releases while ring 1's watermark lags.
        assert!(m.push(R1, Round::new(3), "late").is_empty());
        assert_eq!(m.cursor(), 0, "queued-but-unreleased must not move it");
        let got = m.advance(R0, Round::new(4));
        assert_eq!(labels(&got), vec!["late"]);
        assert_eq!(m.cursor(), 3);
        // The cursor is a pure function of the released prefix: a second
        // merger fed the same streams lands on the same cursor.
        let mut m2: Merger<&str> = Merger::new(2, 1);
        m2.advance(R0, Round::new(4));
        m2.push(R1, Round::new(3), "late");
        assert_eq!(m2.cursor(), 3);
    }

    #[test]
    fn finish_flushes_everything_in_key_order() {
        let mut m: Merger<&str> = Merger::new(2, 1);
        let mut got = Vec::new();
        got.extend(m.push(R1, Round::new(1), "b"));
        got.extend(m.push(R0, Round::new(1), "a"));
        got.extend(m.push(R0, Round::new(9), "z"));
        got.extend(m.finish());
        assert_eq!(labels(&got), vec!["a", "b", "z"]);
        assert_eq!(m.pending(), 0);
    }
}
