//! The ordered state-transfer snapshot a rejoining daemon pulls from a
//! peer before it serves clients.
//!
//! A restarted daemon's hazard is not losing the *ordered* state — the
//! rings re-deliver group membership through the total order as soon as
//! it merges back in — but the *derived* state that only exists at each
//! daemon: the live shard map (which ring owns which group after
//! migrations and rebalances it slept through) and the per-client dedup
//! watermarks (which session sequences were already ordered, so a
//! client's resubmission after the restart is suppressed instead of
//! delivered twice). This module is the codec for that state.
//!
//! The snapshot travels as the opaque body of a `MAP_PUSH` session
//! frame ([`accelring_daemon::proto::SessionFrame::MapPush`]): the
//! daemon crate frames it, this crate owns its meaning. It is anchored
//! at the responder's released merge-slot cursor ([`RecoverySnapshot::cursor`])
//! — the snapshot fence: everything at or below the cursor is reflected
//! in the snapshot, so a seeded joiner resumes gap-free at `cursor + 1`
//! through the ordinary merged stream.
//!
//! Dedup watermarks are carried **per ring**, never max-merged across
//! rings: a held-send resubmission re-ordered on a group's *new* home
//! ring after a migration must not be suppressed by the watermark its
//! *old* ring set, or the joiner's merged order would diverge from
//! every other observer's.

use accelring_core::wire::DecodeError;
use accelring_daemon::packing::{map_payload, parse_map, MapMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Longest client name the snapshot codec accepts (matches the session
/// protocol's name bound).
const MAX_NAME: usize = accelring_daemon::proto::MAX_NAME;

/// Per-ring dedup watermarks: `seqs[r]` holds `(client, max_seq)` pairs
/// for ring `r`.
pub type RingSeqs = Vec<Vec<(String, u64)>>;

/// Everything a rejoining daemon needs to serve safely, as captured by
/// one peer at one point of its merged stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// The responder's highest observed regular-configuration counter
    /// across its rings. A joiner only trusts snapshots whose epoch is
    /// at least its own observed maximum — a peer still behind the
    /// joiner's view is not a catch-up source.
    pub epoch: u64,
    /// The responder's released merge-slot cursor: the snapshot fence.
    pub cursor: u64,
    /// The responder's shard map (version, placements, retired rings).
    pub map: MapMsg,
    /// Per-ring dedup watermarks: `seqs[r]` holds `(client, max_seq)`
    /// pairs for ring `r`.
    pub seqs: RingSeqs,
    /// Opaque application state piggybacked on the pull path (the
    /// replicated KV store's machine snapshot rides here; empty when no
    /// application is mounted). The multi-ring layer carries it blind —
    /// the mounted [`crate::live::AppState`] owns its codec, exactly as
    /// this crate owns the `MAP_PUSH` body.
    pub app: Bytes,
}

/// Encodes a snapshot as a `MAP_PUSH` body:
/// `[epoch(8 LE), cursor(8 LE), map_len(4 LE), map bytes,
///   n_rings(2 LE), {n(4 LE), {name_len(2 LE), name, seq(8 LE)}*}*,
///   app_len(4 LE), app bytes]`.
pub fn encode_snapshot(snap: &RecoverySnapshot) -> Bytes {
    let map = map_payload(&snap.map);
    let mut buf = BytesMut::with_capacity(26 + map.len() + 16 * snap.seqs.len() + snap.app.len());
    buf.put_u64_le(snap.epoch);
    buf.put_u64_le(snap.cursor);
    buf.put_u32_le(map.len() as u32);
    buf.put_slice(&map);
    buf.put_u16_le(snap.seqs.len() as u16);
    for ring in &snap.seqs {
        buf.put_u32_le(ring.len() as u32);
        for (name, seq) in ring {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u64_le(*seq);
        }
    }
    buf.put_u32_le(snap.app.len() as u32);
    buf.put_slice(&snap.app);
    buf.freeze()
}

/// Decodes a `MAP_PUSH` body back into a snapshot.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input — a recovering daemon
/// must survive a misbehaving peer, so garbage degrades to a retried
/// pull, never a panic.
pub fn decode_snapshot(mut buf: Bytes) -> Result<RecoverySnapshot, DecodeError> {
    if buf.remaining() < 20 {
        return Err(DecodeError::Truncated);
    }
    let epoch = buf.get_u64_le();
    let cursor = buf.get_u64_le();
    let map_len = buf.get_u32_le() as usize;
    if buf.remaining() < map_len {
        return Err(DecodeError::BadLength {
            declared: map_len,
            available: buf.remaining(),
        });
    }
    let map_bytes = buf.split_to(map_len);
    let map = parse_map(&map_bytes).ok_or(DecodeError::Truncated)?;
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n_rings = buf.get_u16_le() as usize;
    let mut seqs = Vec::with_capacity(n_rings.min(64));
    for _ in 0..n_rings {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n = buf.get_u32_le() as usize;
        let mut ring = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let len = buf.get_u16_le() as usize;
            if len == 0 || len > MAX_NAME || buf.remaining() < len + 8 {
                return Err(DecodeError::BadLength {
                    declared: len,
                    available: buf.remaining(),
                });
            }
            let raw = buf.split_to(len);
            let name = String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Truncated)?;
            let seq = buf.get_u64_le();
            ring.push((name, seq));
        }
        seqs.push(ring);
    }
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let app_len = buf.get_u32_le() as usize;
    if buf.remaining() < app_len {
        return Err(DecodeError::BadLength {
            declared: app_len,
            available: buf.remaining(),
        });
    }
    let app = buf.split_to(app_len);
    if buf.has_remaining() {
        return Err(DecodeError::BadLength {
            declared: 0,
            available: buf.remaining(),
        });
    }
    Ok(RecoverySnapshot {
        epoch,
        cursor,
        map,
        seqs,
        app,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> RecoverySnapshot {
        RecoverySnapshot {
            epoch: 12,
            cursor: 9001,
            map: MapMsg {
                version: 7,
                rings: 2,
                sender: 1,
                retired: vec![1],
                overrides: vec![("hot".to_string(), 0)],
            },
            seqs: vec![
                vec![("alice".to_string(), 41), ("bob".to_string(), 7)],
                Vec::new(),
            ],
            app: Bytes::from_static(b"opaque application snapshot"),
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = snapshot();
        assert_eq!(decode_snapshot(encode_snapshot(&snap)).unwrap(), snap);
        // The degenerate empty snapshot (fresh cluster) round-trips too.
        let empty = RecoverySnapshot {
            epoch: 0,
            cursor: 0,
            map: MapMsg {
                version: 0,
                rings: 1,
                sender: 0,
                retired: Vec::new(),
                overrides: Vec::new(),
            },
            seqs: vec![Vec::new()],
            app: Bytes::new(),
        };
        assert_eq!(decode_snapshot(encode_snapshot(&empty)).unwrap(), empty);
    }

    #[test]
    fn snapshot_truncation_and_trailing_junk_rejected() {
        let full = encode_snapshot(&snapshot());
        for cut in 0..full.len() {
            assert!(
                decode_snapshot(full.slice(..cut)).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut padded = full.to_vec();
        padded.push(0);
        assert!(decode_snapshot(Bytes::from(padded)).is_err());
    }

    #[test]
    fn snapshot_rejects_hostile_names() {
        let mut bad = snapshot();
        bad.seqs[0][0].0 = "x".repeat(MAX_NAME + 1);
        assert!(decode_snapshot(encode_snapshot(&bad)).is_err());
        bad.seqs[0][0].0 = String::new();
        assert!(decode_snapshot(encode_snapshot(&bad)).is_err());
    }
}
