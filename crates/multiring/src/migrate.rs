//! Online group migration: the state one daemon keeps per in-flight
//! handoff, plus its lifecycle counters.
//!
//! The protocol itself lives in [`MultiRingEngine`](crate::MultiRingEngine)
//! and is driven entirely by ordered [`MigMsg`](accelring_daemon::packing::MigMsg)
//! deliveries; this module is the bookkeeping. See DESIGN.md §11 for the
//! full state machine and the determinism argument.

use std::collections::BTreeSet;

use accelring_core::{RingIdx, Service};
use bytes::Bytes;

/// A client send caught behind a migration fence, decoded back to its
/// submission parameters so it can be resubmitted verbatim once the
/// group's new home is decided (target ring on commit, source ring on
/// abort). Client-session sequence numbers travel with it, so the
/// duplicate-suppression layer keeps the resubmission exactly-once even
/// if the original escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldSend {
    /// Local client the send is on behalf of.
    pub client: String,
    /// Target groups of the multicast.
    pub groups: Vec<String>,
    /// Application payload.
    pub payload: Bytes,
    /// Requested service.
    pub service: Service,
    /// Client-session sequence number (`0` = unsequenced).
    pub seq: u64,
}

/// One in-flight migration, as observed by one daemon. Created when the
/// [`MigOp::Start`](accelring_daemon::packing::MigOp) fence is delivered
/// on the source ring; destroyed by the commit or abort delivered on the
/// same stream — so every daemon creates and destroys it at the same
/// point of the source ring's total order.
#[derive(Debug, Clone)]
pub struct Migration {
    /// The migrating group.
    pub group: String,
    /// The ring the group is leaving.
    pub from: RingIdx,
    /// The ring the group is moving to.
    pub to: RingIdx,
    /// Daemons hosting members of the group at the fence point (computed
    /// from the source ring's group table when the fence is delivered —
    /// identical everywhere, because the table is a pure function of the
    /// source stream).
    pub expected: BTreeSet<u16>,
    /// Daemons whose readiness proof has been delivered on the target
    /// ring. The handoff commits when `expected ⊆ ready`.
    pub ready: BTreeSet<u16>,
    /// This daemon's own sends caught behind the fence, awaiting the
    /// commit/abort decision.
    pub held: Vec<HeldSend>,
    /// Whether this daemon already submitted the commit decision (guards
    /// against re-submitting on every late readiness delivery).
    pub commit_requested: bool,
}

impl Migration {
    /// Whether the readiness barrier is met: every daemon that hosted a
    /// member at the fence point has proven its members are present on
    /// the target ring.
    pub fn barrier_met(&self) -> bool {
        self.expected.iter().all(|d| self.ready.contains(d))
    }
}

/// Lifecycle counters for the migrations a daemon has observed, exported
/// through the transport probe as part of `TransportStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationCounters {
    /// Fences delivered (migrations started).
    pub started: u64,
    /// Handoffs committed.
    pub committed: u64,
    /// Migrations aborted (timeout, target ring death).
    pub aborted: u64,
    /// Own client submissions caught behind a fence and redirected —
    /// held for the commit/abort decision, or rerouted on the spot when
    /// the decision had already landed.
    pub redirected: u64,
}
