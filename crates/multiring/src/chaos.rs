//! Multi-ring chaos: R independent seeded chaos runs plus the
//! cross-ring order-agreement invariant over the merged streams.
//!
//! Each ring is a full `accelring-chaos` scenario — its own virtual-time
//! cluster, its own seeded [`FaultSchedule`] — so faults are inherently
//! ring-targeted: a partition on ring 0 never perturbs ring 1, exactly
//! like partitioning one shard's daemon group in a real deployment. On
//! top of the generated schedules the harness splices in the two faults
//! the acceptance criteria call out by name: a partition of ring 0 and a
//! daemon kill (crash + restart) on the last ring.
//!
//! Two designated observer nodes are [shielded](FaultSchedule::shield)
//! on every ring: they keep complete journals, stay together through
//! every partition, and never crash. After the per-ring EVS check, each
//! observer's R journals are folded through the deterministic [`Merger`]
//! — regular configurations align the ring's λ-clock to the intrinsic
//! epoch base of their ring-id counter, exactly as
//! [`crate::engine::MultiRingEngine`] does live — and the two merged
//! streams are handed to
//! [`accelring_chaos::checker::check_cross_ring_agreement`]. Extended
//! Virtual Synchrony is what makes this sound: every message is
//! delivered under its ordering configuration (or the transitional one
//! closing it, which keeps the old epoch), so its merge slot —
//! `epoch_base(counter) + round/λ` — is a property of the message
//! itself, identical at every observer even when the observers' own
//! configuration histories diverged around it (e.g. one briefly dropped
//! to a singleton view the other never saw).

use accelring_chaos::checker::{self, MsgId, RingMsg, Violation};
use accelring_chaos::runner::{run_schedule_to_input, ChaosConfig, ChaosStats};
use accelring_chaos::schedule::{FaultEvent, FaultKind, FaultSchedule, ScheduleConfig};
use accelring_core::RingIdx;
use accelring_membership::testing::NodeEvent;

use crate::merge::{MergedEntry, Merger};

/// The two journal-keeping observer nodes every ring shields.
pub const OBSERVERS: [usize; 2] = [0, 1];

/// Configuration of one multi-ring chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRingChaosConfig {
    /// Number of independent rings.
    pub rings: u16,
    /// Daemons per ring.
    pub nodes_per_ring: u16,
    /// Base seed; each ring derives its own schedule and workload seed.
    pub seed: u64,
    /// Fault events generated per ring (before the spliced-in
    /// ring-targeted faults).
    pub events: usize,
    /// Merge pace: token rounds per merge slot.
    pub lambda: u64,
}

impl MultiRingChaosConfig {
    /// A fast two-ring configuration for the default test suite.
    pub fn smoke(seed: u64) -> MultiRingChaosConfig {
        MultiRingChaosConfig {
            rings: 2,
            nodes_per_ring: 5,
            seed,
            events: 90,
            lambda: 1,
        }
    }
}

/// The outcome of a multi-ring chaos run.
#[derive(Debug, Clone)]
pub struct MultiRingReport {
    /// The base seed that reproduces the run.
    pub seed: u64,
    /// Number of rings driven.
    pub rings: u16,
    /// All violations: per-ring EVS violations (detail prefixed with the
    /// ring) plus cross-ring order disagreements.
    pub violations: Vec<Violation>,
    /// Per-ring chaos run counters.
    pub per_ring_stats: Vec<ChaosStats>,
    /// Length of each observer's merged stream (must be > 0 for the
    /// cross-ring check to have teeth).
    pub merged_lens: Vec<usize>,
}

impl MultiRingReport {
    /// True when every invariant — per-ring EVS and cross-ring order —
    /// held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "multiring chaos seed={} rings={}: merged streams {:?}\n",
            self.seed, self.rings, self.merged_lens
        );
        for (k, s) in self.per_ring_stats.iter().enumerate() {
            out.push_str(&format!(
                "  ring{k}: {} events applied, {} submitted, {} delivered\n",
                s.events_applied, s.submitted, s.delivered
            ));
        }
        if self.ok() {
            out.push_str("all per-ring EVS and cross-ring order invariants hold\n");
        } else {
            out.push_str(&format!(
                "{} INVARIANT VIOLATION(S) — replay with seed {}\n",
                self.violations.len(),
                self.seed
            ));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// Per-ring seed derivation (golden-ratio salted, like the scaling
/// harness) so rings run uncorrelated schedules and workloads.
fn ring_seed(base: u64, ring: u16) -> u64 {
    base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(ring) + 1))
}

/// Builds ring `k`'s schedule: generated from the ring seed, observer
/// nodes shielded, and the acceptance-criteria faults spliced in — a
/// partition on ring 0, a daemon kill and later restart on the last
/// ring.
fn ring_schedule(cfg: &MultiRingChaosConfig, shape: ScheduleConfig, ring: u16) -> FaultSchedule {
    let mut schedule = FaultSchedule::generate(ring_seed(cfg.seed, ring), shape).shield(&OBSERVERS);
    let n = cfg.nodes_per_ring as usize;
    let at0 = shape.warmup_ns + 1;
    if ring == 0 {
        // Ring-targeted partition: observers together in the majority
        // side, the tail nodes split off. Only ring 0 sees it.
        let split = n.div_ceil(2).max(OBSERVERS.len() + 1).min(n - 1);
        schedule.events.push(FaultEvent {
            at: at0,
            kind: FaultKind::Partition(vec![(0..split).collect(), (split..n).collect()]),
        });
        schedule.events.push(FaultEvent {
            at: at0 + 20_000_000,
            kind: FaultKind::Heal,
        });
    }
    if ring == cfg.rings - 1 && cfg.rings > 1 {
        // Daemon kill on one ring: crash the last (unshielded) daemon
        // and bring it back as a fresh incarnation.
        schedule.events.push(FaultEvent {
            at: at0,
            kind: FaultKind::Crash(n - 1),
        });
        schedule.events.push(FaultEvent {
            at: at0 + 25_000_000,
            kind: FaultKind::Restart(n - 1),
        });
    }
    schedule.events.sort_by_key(|e| e.at);
    schedule
}

/// Folds one observer's per-ring journals through the deterministic
/// merge and returns the merged `(ring, msg)` stream. Regular
/// configurations fence the ring's λ-clock (rounds restart on every
/// reformation); transitional configurations and unparseable payloads
/// are skipped — they carry no order of their own.
fn merged_stream(journals: &[&[NodeEvent]], rings: u16, lambda: u64) -> Vec<RingMsg> {
    // Fences need a placeholder item; it never reaches the stream.
    const FENCE: RingMsg = (
        u16::MAX,
        MsgId {
            sender: u16::MAX,
            counter: 0,
        },
    );
    let mut merger: Merger<RingMsg> = Merger::new(rings, lambda);
    let mut stream = Vec::new();
    let release = |entries: Vec<MergedEntry<RingMsg>>, stream: &mut Vec<RingMsg>| {
        for entry in entries {
            if let MergedEntry::Item { item, .. } = entry {
                stream.push(item);
            }
        }
    };
    for (k, journal) in journals.iter().enumerate() {
        let ring = RingIdx::new(k as u16);
        for ev in *journal {
            match ev {
                NodeEvent::Delivered(d) => {
                    if let Some(id) = MsgId::parse(&d.payload) {
                        release(merger.push(ring, d.round, (k as u16, id)), &mut stream);
                    }
                }
                NodeEvent::Config(c) => {
                    if !c.transitional {
                        release(
                            merger.push_fence(ring, c.ring_id.counter(), FENCE),
                            &mut stream,
                        );
                    }
                }
            }
        }
    }
    release(merger.finish(), &mut stream);
    stream
}

/// Runs one multi-ring chaos scenario: R shielded per-ring chaos runs
/// (with the ring-targeted partition and daemon kill spliced in), the
/// full per-ring EVS check, and the cross-ring order-agreement check
/// over both observers' merged streams.
pub fn run_multiring_chaos(cfg: MultiRingChaosConfig) -> MultiRingReport {
    assert!(cfg.rings >= 1);
    assert!(cfg.nodes_per_ring as usize > OBSERVERS.len());
    let n = cfg.nodes_per_ring as usize;
    let mut shape = ScheduleConfig::smoke(n);
    shape.events = cfg.events;

    let mut violations = Vec::new();
    let mut per_ring_stats = Vec::with_capacity(cfg.rings as usize);
    let mut inputs = Vec::with_capacity(cfg.rings as usize);
    for k in 0..cfg.rings {
        let schedule = ring_schedule(&cfg, shape, k);
        let ring_cfg = ChaosConfig {
            nodes: cfg.nodes_per_ring,
            seed: ring_seed(cfg.seed, k),
            schedule: shape,
            submit_gap_ns: 700_000,
            settle_ns: 400_000_000,
        };
        let (input, mut stats) = run_schedule_to_input(ring_cfg, &schedule);
        stats.delivered = input
            .journals
            .iter()
            .flatten()
            .filter(|e| matches!(e, NodeEvent::Delivered(_)))
            .count() as u64;
        violations.extend(checker::check(&input).into_iter().map(|v| Violation {
            invariant: v.invariant,
            detail: format!("ring{k}: {}", v.detail),
        }));
        per_ring_stats.push(stats);
        inputs.push(input);
    }

    // Fold each observer's R journals through the deterministic merge.
    let mut observers = Vec::with_capacity(OBSERVERS.len());
    let mut merged_lens = Vec::with_capacity(OBSERVERS.len());
    for &node in &OBSERVERS {
        let journals: Vec<&[NodeEvent]> = inputs
            .iter()
            .map(|input| input.journals[node].as_slice())
            .collect();
        let stream = merged_stream(&journals, cfg.rings, cfg.lambda);
        merged_lens.push(stream.len());
        observers.push((node, stream));
    }
    violations.extend(checker::check_cross_ring_agreement(&observers));

    MultiRingReport {
        seed: cfg.seed,
        rings: cfg.rings,
        violations,
        per_ring_stats,
        merged_lens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_clean_and_nonempty() {
        let report = run_multiring_chaos(MultiRingChaosConfig::smoke(1));
        assert!(report.ok(), "{}", report.render());
        assert!(report.merged_lens.iter().all(|&l| l > 0));
        assert_eq!(report.per_ring_stats.len(), 2);
        // The spliced-in ring-targeted faults must actually have fired.
        for s in &report.per_ring_stats {
            assert!(s.events_applied > 0);
        }
    }

    #[test]
    fn run_is_deterministic_in_the_seed() {
        let a = run_multiring_chaos(MultiRingChaosConfig::smoke(7));
        let b = run_multiring_chaos(MultiRingChaosConfig::smoke(7));
        assert_eq!(a.merged_lens, b.merged_lens);
        assert_eq!(a.per_ring_stats, b.per_ring_stats);
        assert_eq!(a.violations.len(), b.violations.len());
    }

    #[test]
    fn cross_ring_checker_fires_on_a_swapped_stream() {
        // Sanity: the invariant is not vacuously true. Give two
        // observers the same entries in different relative order.
        let a = vec![
            (
                0u16,
                MsgId {
                    sender: 2,
                    counter: 1,
                },
            ),
            (
                1u16,
                MsgId {
                    sender: 3,
                    counter: 1,
                },
            ),
        ];
        let mut b = a.clone();
        b.swap(0, 1);
        let v = checker::check_cross_ring_agreement(&[(0, a), (1, b)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "cross-ring-order");
    }
}
