//! Live churn execution: a restartable multi-ring cluster on real
//! localhost UDP sockets that applies
//! [`ChurnKind`](accelring_chaos::churn::ChurnKind) events — per-ring
//! packet loss, online group migration, daemons leaving and rejoining —
//! while tests drive a workload through it.
//!
//! This is the multi-ring counterpart of the chaos crate's single-ring
//! `LiveRun`: the cluster keeps each daemon's bound addresses, each
//! ring's address book, and each ring's fault plane, so a cycled daemon
//! rebinds the *same* ports (peers keep routing to it without a book
//! update) and rejoins every ring it left. Restart uses the shared
//! jittered [`Backoff`] while the dying incarnation's sockets drain.

use std::sync::Arc;
use std::thread::sleep;
use std::time::{Duration, Instant};

use accelring_chaos::churn::{ChurnKind, ChurnSchedule};
use accelring_core::{Backoff, ParticipantId, ProtocolConfig, RingIdx};
use accelring_membership::MembershipConfig;
use accelring_transport::{
    bind_with_retry, AddressBook, BoundNode, FaultPlane, NodeAddr, NodeHandle, NodeOptions,
    TransportError,
};

use crate::live::{MultiRingDaemon, MultiRingOptions};
use crate::recovery::RingSeqs;
use crate::shard::ShardMap;

/// Ring-counter stride restored per incarnation. The pump thread owns a
/// dead daemon's node handles, so its exact final ring counters are not
/// recoverable the way the single-ring chaos runner reads them; instead
/// each incarnation restores `incarnation × stride`, a safe
/// over-approximation — a churn run forms nowhere near a million rings,
/// so the reborn daemon can never reuse a ring id from a past life
/// (the stable-storage rule restarts must follow).
const RING_COUNTER_STRIDE: u64 = 1_000_000;

/// How many rebind attempts a restarting daemon makes before giving up
/// (ports linger briefly while the dead incarnation's threads unwind).
const REBIND_ATTEMPTS: u32 = 50;

/// A multi-ring deployment whose daemons can leave and rejoin, wired
/// through one fault plane per ring.
#[derive(Debug)]
pub struct ChurnCluster {
    rings: u16,
    nodes: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    /// Per-daemon options: daemon `i` starts (and restarts) with
    /// `options[i]`, so tests can mount per-daemon application state.
    options: Vec<MultiRingOptions>,
    shards: ShardMap,
    /// `addrs[ring][node]`: the fixed ports every incarnation binds.
    addrs: Vec<Vec<NodeAddr>>,
    books: Vec<AddressBook>,
    planes: Vec<Arc<FaultPlane>>,
    daemons: Vec<Option<MultiRingDaemon>>,
    incarnations: Vec<u64>,
    /// Per-daemon dedup watermarks captured at the last stop, seeded
    /// into the next incarnation so a client resubmission across the
    /// restart stays suppressed (the stable-storage rule for session
    /// state, played by the supervisor).
    seqs: Vec<Option<RingSeqs>>,
}

impl ChurnCluster {
    /// Stands up `rings × nodes` transport nodes on localhost with
    /// default protocol/membership timers and one fault plane per ring
    /// (seeded `seed`, `seed + 1`, …), then one multi-ring daemon per
    /// participant.
    ///
    /// # Errors
    ///
    /// Returns the first bind or spawn failure.
    pub fn start(
        rings: u16,
        nodes: u16,
        seed: u64,
        shards: ShardMap,
        options: MultiRingOptions,
    ) -> Result<ChurnCluster, TransportError> {
        let options = (0..nodes).map(|_| options.clone()).collect();
        ChurnCluster::start_each(rings, nodes, seed, shards, options)
    }

    /// Like [`ChurnCluster::start`], but with distinct options per
    /// daemon — how a replicated application mounts each daemon's own
    /// [`app_state`](MultiRingOptions::app_state) from the first
    /// incarnation on.
    ///
    /// # Errors
    ///
    /// Returns the first bind or spawn failure.
    ///
    /// # Panics
    ///
    /// Panics unless `options` has exactly one entry per daemon.
    pub fn start_each(
        rings: u16,
        nodes: u16,
        seed: u64,
        shards: ShardMap,
        options: Vec<MultiRingOptions>,
    ) -> Result<ChurnCluster, TransportError> {
        assert_eq!(rings, shards.rings(), "one ring per shard-map ring");
        assert_eq!(
            options.len(),
            nodes as usize,
            "one options entry per daemon"
        );
        let protocol = ProtocolConfig::default();
        let membership = MembershipConfig::for_wall_clock();
        let mut addrs = Vec::with_capacity(rings as usize);
        let mut books = Vec::with_capacity(rings as usize);
        let mut planes = Vec::with_capacity(rings as usize);
        // handles[ring][node], transposed into per-daemon columns below.
        let mut handles: Vec<Vec<NodeHandle>> = Vec::with_capacity(rings as usize);
        for r in 0..rings {
            let bound: Vec<BoundNode> = (0..nodes)
                .map(|i| bind_with_retry(ParticipantId::new(i), "127.0.0.1"))
                .collect::<Result<_, _>>()?;
            let ring_addrs: Vec<NodeAddr> = bound
                .iter()
                .map(BoundNode::addr)
                .collect::<Result<_, _>>()?;
            let book = AddressBook::new(ring_addrs.clone());
            let plane = FaultPlane::new(seed + u64::from(r));
            plane.register_book(&book);
            let ring_handles = bound
                .into_iter()
                .map(|b| {
                    b.start_with(
                        book.clone(),
                        protocol,
                        membership,
                        NodeOptions {
                            plane: Some(plane.clone()),
                            ..NodeOptions::default()
                        },
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            addrs.push(ring_addrs);
            books.push(book);
            planes.push(plane);
            handles.push(ring_handles);
        }
        let mut columns: Vec<Vec<NodeHandle>> = (0..nodes).map(|_| Vec::new()).collect();
        for ring in handles {
            for (i, node) in ring.into_iter().enumerate() {
                columns[i].push(node);
            }
        }
        let daemons = columns
            .into_iter()
            .zip(&options)
            .map(|(column, opts)| {
                Some(MultiRingDaemon::start_with(
                    column,
                    shards.clone(),
                    opts.clone(),
                ))
            })
            .collect();
        Ok(ChurnCluster {
            rings,
            nodes,
            protocol,
            membership,
            options,
            shards,
            addrs,
            books,
            planes,
            daemons,
            incarnations: vec![0; nodes as usize],
            seqs: vec![None; nodes as usize],
        })
    }

    /// Number of daemons (including any currently down).
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// The running daemon with participant id `i`.
    ///
    /// # Panics
    ///
    /// Panics if daemon `i` is currently down.
    pub fn daemon(&self, i: u16) -> &MultiRingDaemon {
        self.daemons[i as usize]
            .as_ref()
            .expect("daemon is currently down")
    }

    /// Replaces the options daemon `i`'s *next* incarnation starts with
    /// (the running incarnation, if any, is untouched). Tests use this
    /// to mount fresh application state before a restart.
    pub fn set_options(&mut self, i: u16, options: MultiRingOptions) {
        self.options[i as usize] = options;
    }

    /// Ring `k`'s fault plane.
    pub fn plane(&self, ring: u16) -> &Arc<FaultPlane> {
        &self.planes[ring as usize]
    }

    /// Gracefully stops daemon `i`: it disconnects its clients and
    /// leaves every ring (the rings reform without it). The daemon's
    /// dedup watermarks are captured first and carried into the next
    /// incarnation by [`ChurnCluster::restart_daemon`].
    pub fn stop_daemon(&mut self, i: u16) {
        if let Some(d) = self.daemons[i as usize].take() {
            if let Some(seqs) = d.export_seqs() {
                self.seqs[i as usize] = Some(seqs);
            }
            d.shutdown();
        }
    }

    /// Rebinds daemon `i`'s original ports on every ring and starts a
    /// fresh incarnation, recovered along both paths of the crash
    /// recovery protocol: the dedup watermarks captured at stop are
    /// seeded in-process, and (when the session socket is enabled) the
    /// rejoining daemon pulls a catch-up snapshot — live shard map
    /// included — from its surviving peers before serving clients.
    /// Shard-map announces on the rings heal whatever the pull missed.
    ///
    /// # Errors
    ///
    /// Returns the bind error if a port cannot be reclaimed within
    /// [`REBIND_ATTEMPTS`], or the spawn failure.
    pub fn restart_daemon(&mut self, i: u16) -> Result<(), TransportError> {
        assert!(
            self.daemons[i as usize].is_none(),
            "stop daemon {i} before restarting it"
        );
        self.incarnations[i as usize] += 1;
        let mut column = Vec::with_capacity(self.rings as usize);
        for r in 0..self.rings as usize {
            let addr = self.addrs[r][i as usize];
            let mut backoff = Backoff::new(
                Duration::from_millis(5),
                Duration::from_millis(100),
                u64::from(i) ^ ((r as u64) << 16),
            );
            let bound = loop {
                match BoundNode::bind_addrs(addr.pid, addr.data, addr.token) {
                    Ok(b) => break b,
                    Err(e) if backoff.attempts() >= REBIND_ATTEMPTS => return Err(e),
                    Err(_) => sleep(backoff.next_delay()),
                }
            };
            let handle = bound.start_with(
                self.books[r].clone(),
                self.protocol,
                self.membership,
                NodeOptions {
                    plane: Some(self.planes[r].clone()),
                    restore_ring_counter: self.incarnations[i as usize] * RING_COUNTER_STRIDE,
                    ..NodeOptions::default()
                },
            )?;
            column.push(handle);
        }
        let mut options = self.options[i as usize].clone();
        options.recovery_seed = self.seqs[i as usize].clone();
        // Pull catch-up from every daemon currently up; daemons without
        // a session socket leave this empty and recover through seeds
        // and ring-borne map announces alone.
        options.recovery_peers = self
            .daemons
            .iter()
            .flatten()
            .filter_map(MultiRingDaemon::session_addr)
            .collect();
        self.daemons[i as usize] = Some(MultiRingDaemon::start_with(
            column,
            self.shards.clone(),
            options,
        ));
        Ok(())
    }

    /// Applies one churn event. `Migrate` is submitted through the first
    /// live daemon and skipped (not an error) when the engine rejects it
    /// — a seeded schedule cannot know the live shard map, so "already
    /// home" or "already migrating" are expected outcomes. `Restart`
    /// blocks for the configured downtime.
    ///
    /// # Errors
    ///
    /// Returns a restart failure; everything else is infallible.
    pub fn apply(&mut self, kind: &ChurnKind) -> Result<(), TransportError> {
        match kind {
            ChurnKind::Loss { ring, rate } => {
                self.planes[*ring as usize].set_loss(*rate, 0.0);
            }
            ChurnKind::HealLoss { ring } => {
                self.planes[*ring as usize].set_loss(0.0, 0.0);
            }
            ChurnKind::Migrate { group, to } => {
                if let Some(d) = self.daemons.iter().flatten().next() {
                    let _ = d.migrate(group, RingIdx::new(*to));
                }
            }
            ChurnKind::Restart { daemon, down } => {
                self.stop_daemon(*daemon);
                sleep(*down);
                self.restart_daemon(*daemon)?;
            }
            ChurnKind::RestartStorm { daemons, down } => {
                // Correlated crash: every storm member goes down before
                // any comes back, so the survivors reform without them
                // and the rejoiners must catch up from a minority of
                // live peers (or, with everyone else down, from the
                // deadline fallback).
                for d in daemons {
                    self.stop_daemon(*d);
                }
                sleep(*down);
                for d in daemons {
                    self.restart_daemon(*d)?;
                }
            }
        }
        Ok(())
    }

    /// Applies every event of `schedule` whose offset from `start` has
    /// elapsed, beginning at `*fired`, and advances `*fired` past them —
    /// the polling hook a workload loop calls between submissions.
    ///
    /// # Errors
    ///
    /// As [`ChurnCluster::apply`].
    pub fn apply_due(
        &mut self,
        schedule: &ChurnSchedule,
        start: Instant,
        fired: &mut usize,
    ) -> Result<(), TransportError> {
        while let Some(ev) = schedule.events.get(*fired) {
            if start.elapsed() < ev.at {
                break;
            }
            self.apply(&ev.kind)?;
            *fired += 1;
        }
        Ok(())
    }

    /// Stops every daemon that is still up.
    pub fn shutdown(mut self) {
        for i in 0..self.nodes {
            self.stop_daemon(i);
        }
    }
}
