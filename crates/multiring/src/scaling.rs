//! Deterministic multi-ring scaling harness over `accelring-sim`.
//!
//! Runs R independent ring simulations (distinct seeds, identical
//! configuration), then replays each ring's node-0 delivery log through
//! the [`Merger`] in global arrival-time order — exactly what a merged
//! observer subscribed to groups on every ring would process. The
//! aggregate ordered throughput is what the paper's single-ring token
//! rotation caps; the merge replay shows the combined stream remains one
//! deterministic total order and measures the extra latency the merge
//! gate adds (time between a message's per-ring delivery and the moment
//! the merge proves it final).

use accelring_core::{PerRingStats, ProtocolConfig, RingIdx, Service};
use accelring_sim::{
    DeliveryRecord, ImplProfile, LossSpec, NetworkProfile, SimDuration, Simulator, Workload,
};

use crate::merge::Merger;

/// Configuration of one multi-ring scaling measurement.
#[derive(Debug, Clone)]
pub struct ScalingSpec {
    /// Number of independent rings.
    pub rings: u16,
    /// Daemons per ring.
    pub nodes_per_ring: u16,
    /// Clean payload bytes per message (equal across rings).
    pub payload_len: usize,
    /// Protocol configuration for every ring.
    pub protocol: ProtocolConfig,
    /// Network profile (1 Gb or 10 Gb).
    pub network: NetworkProfile,
    /// Implementation cost profile.
    pub impl_profile: ImplProfile,
    /// Merge pace: token rounds per merge slot.
    pub lambda: u64,
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Base RNG seed (each ring derives its own).
    pub seed: u64,
}

impl ScalingSpec {
    /// The scaling baseline: the paper's 8-node daemon configuration per
    /// ring, saturating workload, 1350-byte payloads.
    pub fn baseline(rings: u16, network: NetworkProfile) -> ScalingSpec {
        ScalingSpec {
            rings,
            nodes_per_ring: 8,
            payload_len: 1350,
            protocol: ProtocolConfig::accelerated(20, 15),
            network,
            impl_profile: ImplProfile::daemon(),
            lambda: 1,
            warmup: SimDuration::from_millis(30),
            measure: SimDuration::from_millis(100),
            seed: 42,
        }
    }
}

/// Measurements of one multi-ring run.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of rings.
    pub rings: u16,
    /// Sum of the rings' clean ordered goodput (bits/second, the
    /// aggregate ordered throughput the deployment sustains).
    pub aggregate_goodput_bps: f64,
    /// Each ring's own goodput.
    pub per_ring_goodput_bps: Vec<f64>,
    /// Per-ring protocol counters summed over each ring's participants.
    pub per_ring_stats: PerRingStats,
    /// Messages released by the merged observer inside the measurement
    /// window.
    pub merged_in_window: u64,
    /// Goodput of the merged stream itself (payload bits the merged
    /// observer released per second of the measurement window).
    pub merged_goodput_bps: f64,
    /// Mean extra delay the merge gate adds before a delivered message
    /// is proven final, in microseconds (watermark-released messages).
    pub mean_merge_lag_us: f64,
    /// Worst merge-gate delay observed, in microseconds.
    pub max_merge_lag_us: f64,
}

impl ScalingPoint {
    /// Aggregate goodput in megabits per second.
    pub fn aggregate_goodput_mbps(&self) -> f64 {
        self.aggregate_goodput_bps / 1e6
    }

    /// Merged-stream goodput in megabits per second.
    pub fn merged_goodput_mbps(&self) -> f64 {
        self.merged_goodput_bps / 1e6
    }
}

/// Runs `spec.rings` independent ring simulations and merges their
/// node-0 delivery logs deterministically.
///
/// # Panics
///
/// Panics if the merge replay loses or invents messages (an internal
/// invariant; the merger must release exactly what the rings delivered).
pub fn run_scaling(spec: &ScalingSpec) -> ScalingPoint {
    let outcomes: Vec<_> = (0..spec.rings)
        .map(|k| {
            Simulator::new(
                spec.nodes_per_ring,
                spec.protocol,
                spec.network,
                spec.impl_profile,
                LossSpec::None,
                Workload::Saturating,
                spec.payload_len,
                Service::Agreed,
                spec.warmup,
                spec.measure,
                // Distinct deterministic seed per ring: rings drift apart
                // in phase like independent real deployments would.
                spec.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(k) + 1)),
            )
            .with_node0_log()
            .run()
        })
        .collect();

    let per_ring_goodput_bps: Vec<f64> = outcomes.iter().map(|o| o.goodput_bps()).collect();
    let mut per_ring_stats = PerRingStats::new(spec.rings as usize);
    for (k, outcome) in outcomes.iter().enumerate() {
        let ring = per_ring_stats.ring_mut(RingIdx::new(k as u16));
        for s in &outcome.participant_stats {
            ring.absorb(s);
        }
    }

    // Replay the logs through the merger in global arrival order — the
    // schedule a single merged observer fed by all R rings would see.
    let logs: Vec<&[DeliveryRecord]> = outcomes.iter().map(|o| o.node0_log.as_slice()).collect();
    let total: usize = logs.iter().map(|l| l.len()).sum();
    let mut merger: Merger<DeliveryRecord> = Merger::new(spec.rings, spec.lambda);
    let mut cursors = vec![0usize; logs.len()];
    let window_start = spec.warmup.as_nanos();
    let window_end = window_start + spec.measure.as_nanos();
    let mut merged = 0usize;
    let mut merged_in_window = 0u64;
    let mut merged_bits_in_window = 0u64;
    let mut lag_sum_ns = 0u128;
    let mut lag_max_ns = 0u64;
    let mut lag_count = 0u64;
    let mut last_slot = 0u64;
    let mut account = |slot: u64, rec: DeliveryRecord, now_ns: Option<u64>| {
        assert!(slot >= last_slot, "merged slots must be monotone");
        last_slot = slot;
        merged += 1;
        if rec.at_ns >= window_start && rec.at_ns < window_end {
            merged_in_window += 1;
            merged_bits_in_window += rec.payload_len as u64 * 8;
        }
        if let Some(now) = now_ns {
            let lag = now.saturating_sub(rec.at_ns);
            lag_sum_ns += u128::from(lag);
            lag_max_ns = lag_max_ns.max(lag);
            lag_count += 1;
        }
    };
    // Next arrival across all rings by delivery time (ties by ring).
    while let Some(ring) = (0..logs.len())
        .filter(|&k| cursors[k] < logs[k].len())
        .min_by_key(|&k| (logs[k][cursors[k]].at_ns, k))
    {
        let rec = logs[ring][cursors[ring]];
        cursors[ring] += 1;
        for entry in merger.push(RingIdx::new(ring as u16), rec.round, rec) {
            let slot = entry.slot();
            account(slot, entry.into_item(), Some(rec.at_ns));
        }
    }
    // End of run: every ring has stopped; flush the tail (no lag stats —
    // there is no arrival clock to measure against).
    for entry in merger.finish() {
        let slot = entry.slot();
        account(slot, entry.into_item(), None);
    }
    assert_eq!(merged, total, "merge must release every delivered message");

    ScalingPoint {
        rings: spec.rings,
        aggregate_goodput_bps: per_ring_goodput_bps.iter().sum(),
        per_ring_goodput_bps,
        per_ring_stats,
        merged_in_window,
        merged_goodput_bps: merged_bits_in_window as f64 / spec.measure.as_secs_f64(),
        mean_merge_lag_us: if lag_count == 0 {
            0.0
        } else {
            (lag_sum_ns / u128::from(lag_count)) as f64 / 1_000.0
        },
        max_merge_lag_us: lag_max_ns as f64 / 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(rings: u16) -> ScalingSpec {
        let mut spec = ScalingSpec::baseline(rings, NetworkProfile::gigabit());
        spec.warmup = SimDuration::from_millis(10);
        spec.measure = SimDuration::from_millis(30);
        spec
    }

    #[test]
    fn two_rings_nearly_double_one() {
        let one = run_scaling(&quick_spec(1));
        let two = run_scaling(&quick_spec(2));
        assert!(one.aggregate_goodput_bps > 0.0);
        let speedup = two.aggregate_goodput_bps / one.aggregate_goodput_bps;
        assert!(
            speedup > 1.6,
            "2 rings must scale well past one, got {speedup:.2}x"
        );
        assert_eq!(two.per_ring_goodput_bps.len(), 2);
        assert!(two.merged_in_window > 0);
        assert_eq!(two.per_ring_stats.rings(), 2);
        assert!(two.per_ring_stats.ring(RingIdx::new(1)).delivered_agreed > 0);
    }

    #[test]
    fn merged_stream_carries_the_aggregate() {
        let point = run_scaling(&quick_spec(2));
        // The merged observer's own goodput tracks the per-ring node-0
        // streams it was fed (within a few percent: window edges).
        let per_node = point.aggregate_goodput_bps;
        let ratio = point.merged_goodput_bps / per_node;
        assert!(
            (0.9..1.1).contains(&ratio),
            "merged goodput must track aggregate, ratio {ratio:.3}"
        );
        assert!(point.mean_merge_lag_us >= 0.0);
        assert!(point.max_merge_lag_us >= point.mean_merge_lag_us);
    }

    #[test]
    fn scaling_run_is_deterministic() {
        let a = run_scaling(&quick_spec(2));
        let b = run_scaling(&quick_spec(2));
        assert_eq!(a.merged_in_window, b.merged_in_window);
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.mean_merge_lag_us, b.mean_merge_lag_us);
    }
}
