//! # accelring-multiring
//!
//! Multi-ring sharded ordering over the Accelerated Ring stack, after
//! Multi-Ring Paxos (Marandi et al.) and its stretched variant (Benz et
//! al.): R independent rings each order their own shard of the group
//! space, and a deterministic λ-paced merge folds the R totally ordered
//! streams back into one — so a client subscribed to groups on
//! different rings still observes a single total order, while aggregate
//! ordering throughput scales with R instead of being capped by one
//! token rotation.
//!
//! The subsystem has four pieces:
//!
//! * [`ShardMap`] — deterministic group→ring placement: FNV-1a hash by
//!   default, explicit pins on demand, and a deterministic rebalance
//!   that moves a dead ring's groups to the survivors identically at
//!   every daemon.
//! * [`Merger`] — the deterministic merge. Each ring's deliveries are
//!   stamped with λ-quantized merge slots derived from token rounds
//!   (intrinsic to the message, identical at every observer), and
//!   entries release in global `(slot, ring)` order. Idle rings are
//!   kept from stalling the merge by ordered skip ticks; EVS view
//!   changes appear as explicit fences in the merged stream.
//! * [`MultiRingEngine`] — the routed daemon layer: one
//!   [`accelring_daemon::GroupEngine`] per ring, submissions routed by
//!   the shard map (a multicast's groups must share a ring), and local
//!   client events released through the merger.
//! * Runtimes — the deterministic scaling harness over
//!   `accelring-sim` fabrics ([`scaling`]), the chaos harness with the
//!   cross-ring order-agreement invariant ([`chaos`]), and the live
//!   UDP daemon over real sockets ([`live`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod churn;
pub mod engine;
pub mod live;
pub mod merge;
pub mod migrate;
pub mod recovery;
pub mod scaling;
pub mod shard;

pub use chaos::{run_multiring_chaos, MultiRingChaosConfig, MultiRingReport};
pub use churn::ChurnCluster;
pub use engine::{MultiOutput, MultiRingEngine, MultiRingError};
pub use live::{AppState, DaemonInspect, MultiRingClient, MultiRingDaemon, MultiRingOptions};
pub use merge::{MergedEntry, Merger};
pub use migrate::{HeldSend, Migration, MigrationCounters};
pub use recovery::{decode_snapshot, encode_snapshot, RecoverySnapshot, RingSeqs};
pub use scaling::{run_scaling, ScalingPoint, ScalingSpec};
pub use shard::{ShardMap, ShardMove};
