//! The shard map: which ring orders which group.
//!
//! Every daemon holds an identical [`ShardMap`]; a group's ring is a pure
//! function of the map's state, so routing needs no coordination. By
//! default a group hashes to a ring (FNV-1a mod R — stable, seedless,
//! identical on every daemon); explicit placements override the hash for
//! operators who want to co-locate hot groups or balance by hand, exactly
//! like Multi-Ring Paxos' static group-to-ring assignment.
//!
//! When a ring loses all its daemons, [`ShardMap::rebalance`] reassigns
//! its groups to the surviving rings deterministically, so every daemon
//! that observes the same ring death computes the same new placement.

use std::collections::BTreeMap;

use accelring_core::RingIdx;

/// One group's move during a rebalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMove {
    /// The group that moved.
    pub group: String,
    /// The ring it was assigned to before.
    pub from: RingIdx,
    /// The ring that now orders it.
    pub to: RingIdx,
}

/// Deterministic group-to-ring assignment for an R-ring deployment.
#[derive(Debug, Clone)]
pub struct ShardMap {
    rings: u16,
    overrides: BTreeMap<String, RingIdx>,
}

/// FNV-1a, the classic seedless string hash: stable across platforms and
/// processes, which is what makes hash placement coordination-free.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardMap {
    /// A map over `rings` rings with pure hash placement.
    ///
    /// Zero rings is clamped to one (a single-ring deployment is just the
    /// ordinary daemon stack).
    pub fn new(rings: u16) -> ShardMap {
        ShardMap {
            rings: rings.max(1),
            overrides: BTreeMap::new(),
        }
    }

    /// Number of rings in the deployment.
    pub fn rings(&self) -> u16 {
        self.rings
    }

    /// Pins `group` to `ring`, overriding hash placement.
    ///
    /// Out-of-range rings are reduced mod R so a stale placement can never
    /// route outside the deployment.
    pub fn assign(&mut self, group: &str, ring: RingIdx) {
        self.overrides
            .insert(group.to_string(), RingIdx::new(ring.as_u16() % self.rings));
    }

    /// Drops an explicit placement, returning `group` to hash placement.
    pub fn unassign(&mut self, group: &str) {
        self.overrides.remove(group);
    }

    /// The ring that orders `group`.
    pub fn ring_of(&self, group: &str) -> RingIdx {
        if let Some(r) = self.overrides.get(group) {
            return *r;
        }
        RingIdx::new((fnv1a(group) % u64::from(self.rings)) as u16)
    }

    /// The explicit placements currently in force, sorted by group.
    pub fn placements(&self) -> Vec<(String, RingIdx)> {
        self.overrides
            .iter()
            .map(|(g, r)| (g.clone(), *r))
            .collect()
    }

    /// Reassigns every one of `groups` that currently maps to a ring
    /// outside `live`, pinning it to a surviving ring chosen by hash.
    ///
    /// Deterministic: every daemon that calls this with the same group
    /// set and live-ring set installs identical placements. Returns the
    /// moves so the caller can replay group state onto the new rings.
    pub fn rebalance(&mut self, groups: &[String], live: &[RingIdx]) -> Vec<ShardMove> {
        let mut live: Vec<RingIdx> = live
            .iter()
            .filter(|r| r.as_u16() < self.rings)
            .copied()
            .collect();
        live.sort_unstable();
        live.dedup();
        if live.is_empty() {
            return Vec::new();
        }
        let mut moves = Vec::new();
        for group in groups {
            let from = self.ring_of(group);
            if live.contains(&from) {
                continue;
            }
            let to = live[(fnv1a(group) % live.len() as u64) as usize];
            self.overrides.insert(group.clone(), to);
            moves.push(ShardMove {
                group: group.clone(),
                from,
                to,
            });
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_placement_is_stable_and_in_range() {
        let m = ShardMap::new(4);
        for g in ["chat", "audit", "metrics", "a", "b", "c"] {
            let r = m.ring_of(g);
            assert!(r.as_u16() < 4);
            assert_eq!(r, m.ring_of(g), "placement must be a pure function");
        }
        // Identically configured maps agree.
        let m2 = ShardMap::new(4);
        assert_eq!(m.ring_of("chat"), m2.ring_of("chat"));
    }

    #[test]
    fn hash_placement_spreads_groups() {
        let m = ShardMap::new(4);
        let mut used = std::collections::BTreeSet::new();
        for i in 0..64 {
            used.insert(m.ring_of(&format!("group-{i}")));
        }
        assert!(used.len() > 1, "64 groups must not all hash to one ring");
    }

    #[test]
    fn explicit_assignment_overrides_hash() {
        let mut m = ShardMap::new(4);
        m.assign("chat", RingIdx::new(3));
        assert_eq!(m.ring_of("chat"), RingIdx::new(3));
        m.unassign("chat");
        assert_eq!(m.ring_of("chat"), ShardMap::new(4).ring_of("chat"));
    }

    #[test]
    fn assignment_wraps_out_of_range_rings() {
        let mut m = ShardMap::new(2);
        m.assign("g", RingIdx::new(7));
        assert_eq!(m.ring_of("g"), RingIdx::new(1));
    }

    #[test]
    fn zero_rings_clamps_to_single_ring() {
        let m = ShardMap::new(0);
        assert_eq!(m.rings(), 1);
        assert_eq!(m.ring_of("anything"), RingIdx::new(0));
    }

    #[test]
    fn rebalance_moves_only_dead_ring_groups() {
        let mut m = ShardMap::new(2);
        m.assign("left", RingIdx::new(0));
        m.assign("right", RingIdx::new(1));
        let groups = vec!["left".to_string(), "right".to_string()];
        let moves = m.rebalance(&groups, &[RingIdx::new(0)]);
        assert_eq!(
            moves,
            vec![ShardMove {
                group: "right".to_string(),
                from: RingIdx::new(1),
                to: RingIdx::new(0),
            }]
        );
        assert_eq!(m.ring_of("left"), RingIdx::new(0));
        assert_eq!(m.ring_of("right"), RingIdx::new(0));
    }

    #[test]
    fn rebalance_is_deterministic_across_replicas() {
        let groups: Vec<String> = (0..20).map(|i| format!("g{i}")).collect();
        let live = [RingIdx::new(1), RingIdx::new(3)];
        let mut a = ShardMap::new(4);
        let mut b = ShardMap::new(4);
        let ma = a.rebalance(&groups, &live);
        let mb = b.rebalance(&groups, &live);
        assert_eq!(ma, mb);
        for g in &groups {
            assert_eq!(a.ring_of(g), b.ring_of(g));
            assert!(live.contains(&a.ring_of(g)));
        }
    }

    #[test]
    fn rebalance_with_no_live_rings_is_a_noop() {
        let mut m = ShardMap::new(2);
        let before = m.ring_of("g");
        assert!(m.rebalance(&["g".to_string()], &[]).is_empty());
        assert_eq!(m.ring_of("g"), before);
    }
}
