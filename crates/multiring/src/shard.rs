//! The shard map: which ring orders which group.
//!
//! Every daemon holds an identical [`ShardMap`]; a group's ring is a pure
//! function of the map's state, so routing needs no coordination. By
//! default a group hashes to a ring (FNV-1a mod R — stable, seedless,
//! identical on every daemon); explicit placements override the hash for
//! operators who want to co-locate hot groups or balance by hand, exactly
//! like Multi-Ring Paxos' static group-to-ring assignment.
//!
//! When a ring loses all its daemons, [`ShardMap::rebalance`] reassigns
//! its groups to the surviving rings deterministically, so every daemon
//! that observes the same ring death computes the same new placement.
//! Online migrations install placements through
//! [`ShardMap::migrate_pin`], which is idempotent (replay-safe) and
//! refuses to place a group onto a ring an earlier rebalance retired —
//! the two interleave in either order and converge to the same map.
//!
//! The map carries a [`version`](ShardMap::version) counter bumped on
//! every placement change; probes and reports use it as a cheap epoch to
//! detect that two daemons are routing from different map states.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::RingIdx;

/// One group's move during a rebalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMove {
    /// The group that moved.
    pub group: String,
    /// The ring it was assigned to before.
    pub from: RingIdx,
    /// The ring that now orders it.
    pub to: RingIdx,
}

/// Deterministic group-to-ring assignment for an R-ring deployment.
#[derive(Debug, Clone)]
pub struct ShardMap {
    rings: u16,
    overrides: BTreeMap<String, RingIdx>,
    /// Rings a rebalance declared dead: no future placement — hash or
    /// pin — may route onto them. Monotone, like a ring-id counter.
    retired: BTreeSet<RingIdx>,
    version: u64,
}

/// FNV-1a, the classic seedless string hash: stable across platforms and
/// processes, which is what makes hash placement coordination-free.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardMap {
    /// A map over `rings` rings with pure hash placement.
    ///
    /// Zero rings is clamped to one (a single-ring deployment is just the
    /// ordinary daemon stack).
    pub fn new(rings: u16) -> ShardMap {
        ShardMap {
            rings: rings.max(1),
            overrides: BTreeMap::new(),
            retired: BTreeSet::new(),
            version: 0,
        }
    }

    /// Number of rings in the deployment.
    pub fn rings(&self) -> u16 {
        self.rings
    }

    /// Placement epoch: bumped on every change to any group's placement.
    /// Two maps with equal versions that started identical are identical.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether a rebalance has declared `ring` dead.
    pub fn is_retired(&self, ring: RingIdx) -> bool {
        self.retired.contains(&ring)
    }

    /// Pins `group` to `ring`, overriding hash placement.
    ///
    /// Out-of-range rings are reduced mod R so a stale placement can never
    /// route outside the deployment.
    pub fn assign(&mut self, group: &str, ring: RingIdx) {
        let ring = RingIdx::new(ring.as_u16() % self.rings);
        if self.overrides.get(group) != Some(&ring) {
            self.overrides.insert(group.to_string(), ring);
            self.version += 1;
        }
    }

    /// Drops an explicit placement, returning `group` to hash placement.
    pub fn unassign(&mut self, group: &str) {
        if self.overrides.remove(group).is_some() {
            self.version += 1;
        }
    }

    /// The ring that orders `group`.
    ///
    /// Never routes onto a retired ring: a group whose hash lands on a
    /// dead ring is remapped over the survivors with the same formula
    /// [`rebalance`](ShardMap::rebalance) uses, so a group first seen
    /// *after* the ring death lands exactly where the rebalance would
    /// have moved it.
    pub fn ring_of(&self, group: &str) -> RingIdx {
        if let Some(r) = self.overrides.get(group) {
            return *r;
        }
        let hashed = RingIdx::new((fnv1a(group) % u64::from(self.rings)) as u16);
        if !self.retired.contains(&hashed) {
            return hashed;
        }
        let live: Vec<RingIdx> = (0..self.rings)
            .map(RingIdx::new)
            .filter(|r| !self.retired.contains(r))
            .collect();
        if live.is_empty() {
            return hashed; // every ring retired: degenerate, keep the hash
        }
        live[(fnv1a(group) % live.len() as u64) as usize]
    }

    /// The explicit placements currently in force, sorted by group.
    pub fn placements(&self) -> Vec<(String, RingIdx)> {
        self.overrides
            .iter()
            .map(|(g, r)| (g.clone(), *r))
            .collect()
    }

    /// The rings rebalances have retired, sorted.
    pub fn retired_rings(&self) -> Vec<RingIdx> {
        self.retired.iter().copied().collect()
    }

    /// Adopts a peer-announced map state if it is strictly newer than
    /// this one, replacing the explicit placements wholesale and merging
    /// the retired set monotonically (a ring once declared dead stays
    /// dead even if the announcer had not heard yet). Returns whether
    /// anything was adopted.
    ///
    /// This is the receive side of shard-map catch-up: announcements ride
    /// the rings' total order, so same-version announcements are
    /// identical and stale ones are dropped — adoption is idempotent and
    /// order-insensitive across rings.
    pub fn adopt(
        &mut self,
        version: u64,
        placements: &[(String, RingIdx)],
        retired: &[RingIdx],
    ) -> bool {
        if version <= self.version {
            return false;
        }
        self.overrides = placements
            .iter()
            .map(|(g, r)| (g.clone(), RingIdx::new(r.as_u16() % self.rings)))
            .collect();
        for r in retired {
            if r.as_u16() < self.rings {
                self.retired.insert(*r);
            }
        }
        self.version = version;
        true
    }

    /// Installs a migration's committed placement: `group` is pinned to
    /// `to`. Idempotent — replaying the same commit (every daemon
    /// processes the same ordered commit message) changes nothing the
    /// second time — and refuses rings a rebalance has retired, so a
    /// straggling commit can never resurrect a dead ring's placement no
    /// matter how it interleaves with the rebalance. Returns whether the
    /// placement took effect.
    pub fn migrate_pin(&mut self, group: &str, to: RingIdx) -> bool {
        let to = RingIdx::new(to.as_u16() % self.rings);
        if self.retired.contains(&to) {
            return false;
        }
        if self.overrides.get(group) == Some(&to) {
            return true; // replay: already in force
        }
        self.overrides.insert(group.to_string(), to);
        self.version += 1;
        true
    }

    /// Reassigns every one of `groups` that currently maps to a ring
    /// outside `live`, pinning it to a surviving ring chosen by hash, and
    /// permanently retires the dead rings.
    ///
    /// Deterministic: every daemon that calls this with the same group
    /// set and live-ring set installs identical placements, and replaying
    /// the call is a no-op (the moved groups already map to live rings).
    /// Returns the moves so the caller can replay group state onto the
    /// new rings.
    pub fn rebalance(&mut self, groups: &[String], live: &[RingIdx]) -> Vec<ShardMove> {
        let mut live: Vec<RingIdx> = live
            .iter()
            .filter(|r| r.as_u16() < self.rings)
            .copied()
            .collect();
        live.sort_unstable();
        live.dedup();
        if live.is_empty() {
            return Vec::new();
        }
        for ring in 0..self.rings {
            let ring = RingIdx::new(ring);
            if !live.contains(&ring) && self.retired.insert(ring) {
                self.version += 1;
            }
        }
        let mut moves = Vec::new();
        for group in groups {
            let from = self.ring_of(group);
            if live.contains(&from) {
                continue;
            }
            let to = live[(fnv1a(group) % live.len() as u64) as usize];
            self.overrides.insert(group.clone(), to);
            self.version += 1;
            moves.push(ShardMove {
                group: group.clone(),
                from,
                to,
            });
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_placement_is_stable_and_in_range() {
        let m = ShardMap::new(4);
        for g in ["chat", "audit", "metrics", "a", "b", "c"] {
            let r = m.ring_of(g);
            assert!(r.as_u16() < 4);
            assert_eq!(r, m.ring_of(g), "placement must be a pure function");
        }
        // Identically configured maps agree.
        let m2 = ShardMap::new(4);
        assert_eq!(m.ring_of("chat"), m2.ring_of("chat"));
    }

    #[test]
    fn hash_placement_spreads_groups() {
        let m = ShardMap::new(4);
        let mut used = std::collections::BTreeSet::new();
        for i in 0..64 {
            used.insert(m.ring_of(&format!("group-{i}")));
        }
        assert!(used.len() > 1, "64 groups must not all hash to one ring");
    }

    #[test]
    fn explicit_assignment_overrides_hash() {
        let mut m = ShardMap::new(4);
        m.assign("chat", RingIdx::new(3));
        assert_eq!(m.ring_of("chat"), RingIdx::new(3));
        m.unassign("chat");
        assert_eq!(m.ring_of("chat"), ShardMap::new(4).ring_of("chat"));
    }

    #[test]
    fn assignment_wraps_out_of_range_rings() {
        let mut m = ShardMap::new(2);
        m.assign("g", RingIdx::new(7));
        assert_eq!(m.ring_of("g"), RingIdx::new(1));
    }

    #[test]
    fn zero_rings_clamps_to_single_ring() {
        let m = ShardMap::new(0);
        assert_eq!(m.rings(), 1);
        assert_eq!(m.ring_of("anything"), RingIdx::new(0));
    }

    #[test]
    fn version_tracks_placement_changes_only() {
        let mut m = ShardMap::new(4);
        assert_eq!(m.version(), 0);
        m.assign("g", RingIdx::new(1));
        assert_eq!(m.version(), 1);
        m.assign("g", RingIdx::new(1)); // no change
        assert_eq!(m.version(), 1);
        m.unassign("g");
        assert_eq!(m.version(), 2);
        m.unassign("g"); // no change
        assert_eq!(m.version(), 2);
    }

    #[test]
    fn rebalance_moves_only_dead_ring_groups() {
        let mut m = ShardMap::new(2);
        m.assign("left", RingIdx::new(0));
        m.assign("right", RingIdx::new(1));
        let groups = vec!["left".to_string(), "right".to_string()];
        let moves = m.rebalance(&groups, &[RingIdx::new(0)]);
        assert_eq!(
            moves,
            vec![ShardMove {
                group: "right".to_string(),
                from: RingIdx::new(1),
                to: RingIdx::new(0),
            }]
        );
        assert_eq!(m.ring_of("left"), RingIdx::new(0));
        assert_eq!(m.ring_of("right"), RingIdx::new(0));
        assert!(m.is_retired(RingIdx::new(1)));
    }

    #[test]
    fn rebalance_is_deterministic_across_replicas() {
        let groups: Vec<String> = (0..20).map(|i| format!("g{i}")).collect();
        let live = [RingIdx::new(1), RingIdx::new(3)];
        let mut a = ShardMap::new(4);
        let mut b = ShardMap::new(4);
        let ma = a.rebalance(&groups, &live);
        let mb = b.rebalance(&groups, &live);
        assert_eq!(ma, mb);
        for g in &groups {
            assert_eq!(a.ring_of(g), b.ring_of(g));
            assert!(live.contains(&a.ring_of(g)));
        }
        assert_eq!(a.version(), b.version());
    }

    #[test]
    fn rebalance_with_no_live_rings_is_a_noop() {
        let mut m = ShardMap::new(2);
        let before = m.ring_of("g");
        assert!(m.rebalance(&["g".to_string()], &[]).is_empty());
        assert_eq!(m.ring_of("g"), before);
    }

    #[test]
    fn rebalance_replay_is_idempotent() {
        let groups: Vec<String> = (0..10).map(|i| format!("g{i}")).collect();
        let live = [RingIdx::new(0), RingIdx::new(2)];
        let mut m = ShardMap::new(3);
        m.rebalance(&groups, &live);
        let v = m.version();
        let again = m.rebalance(&groups, &live);
        assert!(again.is_empty(), "replayed rebalance must move nothing");
        assert_eq!(m.version(), v, "replayed rebalance must not bump version");
    }

    #[test]
    fn pins_survive_a_ring_death_rebalance() {
        // The determinism edge case: an operator (or migration) pin to a
        // *live* ring must never be disturbed by an unrelated ring dying.
        let mut m = ShardMap::new(3);
        m.assign("pinned", RingIdx::new(1));
        let groups = vec!["pinned".to_string(), "hashed".to_string()];
        let live = [RingIdx::new(0), RingIdx::new(1)];
        let moves = m.rebalance(&groups, &live);
        assert_eq!(m.ring_of("pinned"), RingIdx::new(1), "pin must survive");
        assert!(moves.iter().all(|mv| mv.group != "pinned"));
    }

    #[test]
    fn migrate_pin_is_idempotent_replay() {
        let mut m = ShardMap::new(3);
        assert!(m.migrate_pin("g", RingIdx::new(2)));
        let v = m.version();
        // Every daemon processes the same ordered commit; replays are
        // no-ops.
        assert!(m.migrate_pin("g", RingIdx::new(2)));
        assert_eq!(m.version(), v);
        assert_eq!(m.ring_of("g"), RingIdx::new(2));
    }

    #[test]
    fn migrate_pin_refuses_retired_rings() {
        let mut m = ShardMap::new(3);
        m.rebalance(
            &["x".to_string()],
            &[RingIdx::new(0), RingIdx::new(1)], // ring 2 died
        );
        assert!(!m.migrate_pin("g", RingIdx::new(2)));
        assert_ne!(m.ring_of("g"), RingIdx::new(2));
    }

    #[test]
    fn migration_and_rebalance_interleavings_converge() {
        // Two replicas observe the same migration commit (pin g -> 1) and
        // the same ring-2 death, but in opposite orders. The final maps
        // must agree: the operations commute.
        let groups: Vec<String> = vec!["g".to_string(), "h".to_string()];
        let live = [RingIdx::new(0), RingIdx::new(1)];

        let mut a = ShardMap::new(3);
        assert!(a.migrate_pin("g", RingIdx::new(1)));
        a.rebalance(&groups, &live);

        let mut b = ShardMap::new(3);
        b.rebalance(&groups, &live);
        assert!(b.migrate_pin("g", RingIdx::new(1)));

        for g in &groups {
            assert_eq!(a.ring_of(g), b.ring_of(g), "{g} diverged");
        }

        // And when the migration targets the dying ring, both orders
        // agree the pin does not stick to ring 2.
        let mut c = ShardMap::new(3);
        c.rebalance(&groups, &live);
        assert!(!c.migrate_pin("h", RingIdx::new(2)));
        let mut d = ShardMap::new(3);
        assert!(d.migrate_pin("h", RingIdx::new(2)));
        d.rebalance(&groups, &live);
        assert_eq!(c.ring_of("h"), d.ring_of("h"), "h diverged across orders");
        assert!(c.ring_of("h") != RingIdx::new(2));
    }

    #[test]
    fn adopt_takes_strictly_newer_maps_only() {
        let mut live = ShardMap::new(3);
        live.assign("hot", RingIdx::new(2));
        live.rebalance(&["x".to_string()], &[RingIdx::new(0), RingIdx::new(2)]);
        let (v, p, r) = (live.version(), live.placements(), live.retired_rings());

        // A restarted daemon holding the initial map converges in one
        // adoption.
        let mut stale = ShardMap::new(3);
        assert!(stale.adopt(v, &p, &r));
        assert_eq!(stale.version(), v);
        assert_eq!(stale.ring_of("hot"), RingIdx::new(2));
        assert!(stale.is_retired(RingIdx::new(1)));

        // Replay and older announcements are no-ops.
        assert!(!stale.adopt(v, &p, &r), "same version must not re-adopt");
        assert!(!stale.adopt(v - 1, &[], &[]), "older must be dropped");
        assert_eq!(stale.ring_of("hot"), RingIdx::new(2));

        // Adoption replaces placements wholesale: an override the stale
        // map had that the live map dropped must not survive.
        let mut diverged = ShardMap::new(3);
        diverged.assign("ghost", RingIdx::new(0));
        assert!(diverged.adopt(v, &p, &r));
        assert_eq!(diverged.placements(), p, "placements replaced wholesale");

        // Retirement stays monotone even when the announcer lags on it.
        let mut knows_death = ShardMap::new(3);
        knows_death.rebalance(&[], &[RingIdx::new(0), RingIdx::new(2)]);
        assert!(knows_death.is_retired(RingIdx::new(1)));
        assert!(knows_death.adopt(v + 10, &p, &[]));
        assert!(
            knows_death.is_retired(RingIdx::new(1)),
            "a known ring death must survive adoption"
        );
    }

    #[test]
    fn concurrent_join_during_migration_keeps_pins_deterministic() {
        // A client join materializes a new group name mid-migration: the
        // group set passed to rebalance differs before/after the join,
        // but pinned groups are unaffected and the join's own placement
        // is the same pure hash on every replica.
        let mut early = ShardMap::new(3);
        early.migrate_pin("hot", RingIdx::new(1));
        let with_join = vec!["hot".to_string(), "fresh".to_string()];
        early.rebalance(&with_join, &[RingIdx::new(0), RingIdx::new(1)]);

        let mut late = ShardMap::new(3);
        late.migrate_pin("hot", RingIdx::new(1));
        let without_join = vec!["hot".to_string()];
        late.rebalance(&without_join, &[RingIdx::new(0), RingIdx::new(1)]);
        // The late replica learns of the join afterwards; its rebalance
        // replay with the fuller group set converges.
        let extra = late.rebalance(&with_join, &[RingIdx::new(0), RingIdx::new(1)]);
        for g in &with_join {
            assert_eq!(early.ring_of(g), late.ring_of(g), "{g} diverged");
        }
        assert!(extra.len() <= 1, "at most the late-joined group moves");
    }
}
