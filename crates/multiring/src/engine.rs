//! The multi-ring routing engine: one [`GroupEngine`] per ring, a
//! [`ShardMap`] deciding which ring orders which group, and a [`Merger`]
//! folding the R delivery streams back into one total order.
//!
//! Like [`GroupEngine`], the [`MultiRingEngine`] is pure: runtimes feed
//! it client commands plus each ring's deliveries and configuration
//! changes, and carry out the [`MultiOutput`]s — submissions now carry
//! the ring they must be ordered on, and local client events come out
//! already merged across rings. Every daemon running the same shard map
//! over the same per-ring streams emits client events in the same merged
//! order, which is the whole point.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::{Delivery, ParticipantId, PerRingStats, RingIdx, Service};
use accelring_daemon::{ClientEvent, EngineError, EngineOptions, EngineOutput, GroupEngine};
use accelring_membership::ConfigChange;
use bytes::Bytes;

use crate::merge::{MergedEntry, Merger};
use crate::shard::{ShardMap, ShardMove};

/// An effect the runtime must carry out for the multi-ring engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiOutput {
    /// Submit this payload for totally ordered multicast on one ring.
    Submit {
        /// The ring that must order it.
        ring: RingIdx,
        /// Encoded group message.
        payload: Bytes,
        /// Requested service.
        service: Service,
    },
    /// Hand an event to a local client (already cross-ring merged).
    Local {
        /// The local client's name.
        client: String,
        /// The event.
        event: ClientEvent,
    },
}

/// Errors from multi-ring client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiRingError {
    /// The underlying per-ring engine rejected the operation.
    Engine(EngineError),
    /// A multicast addressed groups sharded onto different rings. One
    /// message is ordered by exactly one ring (as in Multi-Ring Paxos);
    /// the caller must split the send or co-locate the groups with
    /// [`ShardMap::assign`].
    CrossRing {
        /// The offending group list.
        groups: Vec<String>,
        /// The distinct rings they map to.
        rings: Vec<RingIdx>,
    },
}

impl std::fmt::Display for MultiRingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiRingError::Engine(e) => write!(f, "{e}"),
            MultiRingError::CrossRing { groups, rings } => {
                write!(
                    f,
                    "groups {groups:?} span rings {rings:?}; a multicast must target one ring"
                )
            }
        }
    }
}

impl std::error::Error for MultiRingError {}

impl From<EngineError> for MultiRingError {
    fn from(e: EngineError) -> Self {
        MultiRingError::Engine(e)
    }
}

/// The per-daemon multi-ring engine.
#[derive(Debug)]
pub struct MultiRingEngine {
    shards: ShardMap,
    engines: Vec<GroupEngine>,
    merger: Merger<Vec<EngineOutput>>,
    /// Groups each local client has joined (join minus leave), used to
    /// replay joins when a rebalance moves a group to a new ring.
    local_joins: BTreeMap<String, BTreeSet<String>>,
    stats: PerRingStats,
}

impl MultiRingEngine {
    /// Creates the engine for daemon `pid` over `shards.rings()` rings,
    /// pacing the merge at `lambda` token rounds per merge slot.
    pub fn new(pid: ParticipantId, shards: ShardMap, lambda: u64) -> MultiRingEngine {
        Self::with_options(pid, shards, lambda, EngineOptions::default())
    }

    /// Like [`MultiRingEngine::new`] with explicit packing options for
    /// the per-ring engines.
    pub fn with_options(
        pid: ParticipantId,
        shards: ShardMap,
        lambda: u64,
        options: EngineOptions,
    ) -> MultiRingEngine {
        let rings = shards.rings();
        MultiRingEngine {
            shards,
            engines: (0..rings)
                .map(|_| GroupEngine::with_options(pid, options))
                .collect(),
            merger: Merger::new(rings, lambda),
            local_joins: BTreeMap::new(),
            stats: PerRingStats::new(rings as usize),
        }
    }

    /// Number of rings this engine routes over.
    pub fn rings(&self) -> u16 {
        self.shards.rings()
    }

    /// The shard map in force.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// The ring that orders `group` under the current shard map.
    pub fn ring_of(&self, group: &str) -> RingIdx {
        self.shards.ring_of(group)
    }

    /// Per-ring delivery/submission counters, maintained from the
    /// streams this engine has processed.
    pub fn stats(&self) -> &PerRingStats {
        &self.stats
    }

    /// Read access to one ring's engine (tests, reports).
    pub fn ring_engine(&self, ring: RingIdx) -> &GroupEngine {
        &self.engines[ring.as_usize()]
    }

    /// Rings whose lagging watermark currently blocks the merged stream;
    /// the runtime orders skip ticks on them (leader only) so an idle
    /// ring cannot stall the merge.
    pub fn blocking_rings(&self) -> Vec<RingIdx> {
        self.merger.blocking_rings()
    }

    /// Sequenced messages dropped as duplicates, summed over rings.
    pub fn duplicates_dropped(&self) -> u64 {
        self.engines
            .iter()
            .map(GroupEngine::duplicates_dropped)
            .sum()
    }

    /// The highest session sequence number seen for `client` on the ring
    /// that orders `group`-less traffic — across all rings, the max.
    pub fn last_seq(&self, client: &str) -> u64 {
        self.engines
            .iter()
            .map(|e| e.last_seq(client))
            .max()
            .unwrap_or(0)
    }

    fn ring_for_groups(&self, groups: &[&str]) -> Result<RingIdx, MultiRingError> {
        let mut rings: Vec<RingIdx> = groups.iter().map(|g| self.shards.ring_of(g)).collect();
        rings.sort_unstable();
        rings.dedup();
        match rings.as_slice() {
            [one] => Ok(*one),
            _ => Err(MultiRingError::CrossRing {
                groups: groups.iter().map(|g| g.to_string()).collect(),
                rings,
            }),
        }
    }

    fn submits(&mut self, ring: RingIdx, outputs: Vec<EngineOutput>) -> Vec<MultiOutput> {
        outputs
            .into_iter()
            .map(|out| match out {
                EngineOutput::Submit { payload, service } => {
                    self.stats.ring_mut(ring).submitted += 1;
                    MultiOutput::Submit {
                        ring,
                        payload,
                        service,
                    }
                }
                // Client operations only ever produce submissions; local
                // events flow exclusively from deliveries, which keeps
                // every client-visible event inside the merged order.
                EngineOutput::Local { client, event } => MultiOutput::Local { client, event },
            })
            .collect()
    }

    /// Registers a local client on every ring (its groups may shard
    /// anywhere).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid or duplicate names.
    pub fn client_connect(&mut self, name: &str) -> Result<(), MultiRingError> {
        for (i, engine) in self.engines.iter_mut().enumerate() {
            if let Err(e) = engine.client_connect(name) {
                // Roll back the rings already joined so a failed connect
                // leaves no trace.
                for engine in self.engines.iter_mut().take(i) {
                    let _ = engine.client_disconnect(name);
                }
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// Unregisters a local client; departures are multicast on every
    /// ring so all replicas prune it.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::Engine`] if not connected.
    pub fn client_disconnect(&mut self, name: &str) -> Result<Vec<MultiOutput>, MultiRingError> {
        let mut out = Vec::new();
        for ring in 0..self.engines.len() {
            let outputs = self.engines[ring].client_disconnect(name)?;
            out.extend(self.submits(RingIdx::new(ring as u16), outputs));
        }
        self.local_joins.remove(name);
        Ok(out)
    }

    /// The named client joins `group` on the ring the shard map routes
    /// it to.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients or invalid group names.
    pub fn client_join(
        &mut self,
        name: &str,
        group: &str,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let ring = self.shards.ring_of(group);
        let outputs = self.engines[ring.as_usize()].client_join(name, group)?;
        self.local_joins
            .entry(name.to_string())
            .or_default()
            .insert(group.to_string());
        Ok(self.submits(ring, outputs))
    }

    /// The named client leaves `group`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients or invalid group names.
    pub fn client_leave(
        &mut self,
        name: &str,
        group: &str,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let ring = self.shards.ring_of(group);
        let outputs = self.engines[ring.as_usize()].client_leave(name, group)?;
        if let Some(joined) = self.local_joins.get_mut(name) {
            joined.remove(group);
        }
        Ok(self.submits(ring, outputs))
    }

    /// Multicasts `payload` to one or more groups. All target groups
    /// must shard onto the same ring — one message is ordered by exactly
    /// one ring.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::CrossRing`] when the groups span rings,
    /// or the per-ring engine's error otherwise.
    pub fn client_multicast(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        self.client_multicast_sequenced(name, groups, payload, service, 0)
    }

    /// Like [`MultiRingEngine::client_multicast`] with a client-session
    /// sequence number for duplicate suppression. A given sender name
    /// must keep a group set on one ring for suppression to apply (the
    /// seen-sequence map is per ring).
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::CrossRing`] when the groups span rings,
    /// or the per-ring engine's error otherwise.
    pub fn client_multicast_sequenced(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let ring = self.ring_for_groups(groups)?;
        let outputs = self.engines[ring.as_usize()]
            .client_multicast_sequenced(name, groups, payload, service, seq)?;
        Ok(self.submits(ring, outputs))
    }

    /// Closes partially filled packed payloads on every ring.
    pub fn flush(&mut self) -> Vec<MultiOutput> {
        let mut out = Vec::new();
        for ring in 0..self.engines.len() {
            let outputs = self.engines[ring].flush();
            out.extend(self.submits(RingIdx::new(ring as u16), outputs));
        }
        out
    }

    fn release(&mut self, released: Vec<MergedEntry<Vec<EngineOutput>>>) -> Vec<MultiOutput> {
        released
            .into_iter()
            .flat_map(|entry| entry.into_item())
            .map(|out| match out {
                EngineOutput::Local { client, event } => MultiOutput::Local { client, event },
                // Deliveries never produce submissions.
                EngineOutput::Submit { payload, service } => MultiOutput::Submit {
                    ring: RingIdx::new(0),
                    payload,
                    service,
                },
            })
            .collect()
    }

    /// Processes one ordered delivery from `ring`, producing merged
    /// local client events. Every delivery — including skip ticks and
    /// undecodable payloads — advances the ring's merge watermark, so
    /// idle-ring ticks unblock the other rings' streams by construction.
    pub fn on_delivery(&mut self, ring: RingIdx, delivery: &Delivery) -> Vec<MultiOutput> {
        let stats = self.stats.ring_mut(ring);
        if delivery.service.requires_stability() {
            stats.delivered_safe += 1;
        } else {
            stats.delivered_agreed += 1;
        }
        if let Some(epoch) = accelring_daemon::packing::parse_tick(&delivery.payload) {
            // Skip ticks carry the highest configuration counter seen
            // across rings: aligning this ring's clock to that epoch
            // base keeps an idle, never-reforming ring from stalling
            // the merge behind a reformed ring's epoch.
            let released = self.merger.advance_to(ring, epoch, delivery.round);
            return self.release(released);
        }
        let outputs = self.engines[ring.as_usize()].on_delivery(delivery);
        let released = if outputs.is_empty() {
            self.merger.advance(ring, delivery.round)
        } else {
            self.merger.push(ring, delivery.round, outputs)
        };
        self.release(released)
    }

    /// Processes an EVS configuration change on one ring. A regular
    /// configuration fences the ring's position in the merged stream; a
    /// transitional configuration is a plain merged notification.
    pub fn on_config_change(&mut self, ring: RingIdx, change: &ConfigChange) -> Vec<MultiOutput> {
        let outputs = self.engines[ring.as_usize()].on_config_change(change);
        // A merging configuration makes the engine re-announce its local
        // memberships (see [`GroupEngine::on_config_change`]): those are
        // submissions for *this* ring and leave immediately; only
        // client-visible events enter the merged stream.
        let (resubmits, locals): (Vec<_>, Vec<_>) = outputs
            .into_iter()
            .partition(|o| matches!(o, EngineOutput::Submit { .. }));
        let mut out = self.submits(ring, resubmits);
        let released = if change.transitional {
            self.merger.push_now(ring, locals)
        } else {
            self.merger
                .push_fence(ring, change.ring_id.counter(), locals)
        };
        out.extend(self.release(released));
        out
    }

    /// Reacts to the death of entire rings: groups mapped to rings
    /// outside `live` are re-sharded onto the survivors, dead rings are
    /// retired from the merge gate, and joins for this daemon's clients
    /// in moved groups are replayed on their new rings (idempotent at
    /// the replicas, so every daemon may replay its own).
    ///
    /// Returns the moves and the submissions to carry out.
    pub fn apply_rebalance(&mut self, live: &[RingIdx]) -> (Vec<ShardMove>, Vec<MultiOutput>) {
        let mut groups: BTreeSet<String> = BTreeSet::new();
        for engine in &self.engines {
            groups.extend(engine.groups().group_names());
        }
        for joined in self.local_joins.values() {
            groups.extend(joined.iter().cloned());
        }
        let groups: Vec<String> = groups.into_iter().collect();
        let moves = self.shards.rebalance(&groups, live);
        let mut out = Vec::new();
        for ring in 0..self.rings() {
            let ring = RingIdx::new(ring);
            if !live.contains(&ring) {
                let released = self.merger.retire(ring);
                out.extend(self.release(released));
            }
        }
        let replays: Vec<(String, String, RingIdx)> = moves
            .iter()
            .flat_map(|mv| {
                self.local_joins
                    .iter()
                    .filter(|(_, joined)| joined.contains(&mv.group))
                    .map(|(client, _)| (client.clone(), mv.group.clone(), mv.to))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (client, group, ring) in replays {
            if let Ok(outputs) = self.engines[ring.as_usize()].client_join(&client, &group) {
                out.extend(self.submits(ring, outputs));
            }
        }
        (moves, out)
    }

    /// Flushes everything still held in the merger, in merge order.
    /// Only sound when no ring will deliver again (shutdown, offline
    /// journal replay).
    pub fn finish(&mut self) -> Vec<MultiOutput> {
        let released = self.merger.finish();
        self.release(released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelring_core::{Round, Seq};

    const LEFT_RING: RingIdx = RingIdx::new(0);
    const RIGHT_RING: RingIdx = RingIdx::new(1);

    fn two_ring_shards() -> ShardMap {
        let mut shards = ShardMap::new(2);
        shards.assign("left", LEFT_RING);
        shards.assign("right", RIGHT_RING);
        shards
    }

    fn engine(pid: u16) -> MultiRingEngine {
        let mut e = MultiRingEngine::new(ParticipantId::new(pid), two_ring_shards(), 1);
        e.client_connect(&format!("c{pid}")).unwrap();
        e
    }

    fn submit_payloads(outputs: &[MultiOutput]) -> Vec<(RingIdx, Bytes, Service)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                MultiOutput::Submit {
                    ring,
                    payload,
                    service,
                } => Some((*ring, payload.clone(), *service)),
                MultiOutput::Local { .. } => None,
            })
            .collect()
    }

    fn delivery(seq: u64, sender: u16, round: u64, payload: Bytes, service: Service) -> Delivery {
        Delivery {
            seq: Seq::new(seq),
            sender: ParticipantId::new(sender),
            round: Round::new(round),
            service,
            payload,
        }
    }

    fn messages(outputs: &[MultiOutput]) -> Vec<String> {
        outputs
            .iter()
            .filter_map(|o| match o {
                MultiOutput::Local {
                    event: ClientEvent::Message { payload, .. },
                    ..
                } => Some(String::from_utf8_lossy(payload).into_owned()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn joins_route_to_the_sharded_ring() {
        let mut e = engine(0);
        let out = e.client_join("c0", "left").unwrap();
        assert_eq!(submit_payloads(&out)[0].0, LEFT_RING);
        let out = e.client_join("c0", "right").unwrap();
        assert_eq!(submit_payloads(&out)[0].0, RIGHT_RING);
        assert_eq!(e.stats().ring(LEFT_RING).submitted, 1);
        assert_eq!(e.stats().ring(RIGHT_RING).submitted, 1);
    }

    #[test]
    fn cross_ring_multicast_is_rejected() {
        let mut e = engine(0);
        let err = e
            .client_multicast(
                "c0",
                &["left", "right"],
                Bytes::from_static(b"x"),
                Service::Agreed,
            )
            .unwrap_err();
        assert!(matches!(err, MultiRingError::CrossRing { .. }));
        // Same-ring multi-group multicast is fine.
        let mut shards = two_ring_shards();
        shards.assign("also-left", LEFT_RING);
        let mut e = MultiRingEngine::new(ParticipantId::new(0), shards, 1);
        e.client_connect("c0").unwrap();
        let out = e
            .client_multicast(
                "c0",
                &["left", "also-left"],
                Bytes::from_static(b"x"),
                Service::Agreed,
            )
            .unwrap();
        assert_eq!(submit_payloads(&out)[0].0, LEFT_RING);
    }

    #[test]
    fn disconnect_submits_on_every_ring() {
        let mut e = engine(0);
        let out = e.client_disconnect("c0").unwrap();
        let rings: Vec<RingIdx> = submit_payloads(&out).iter().map(|s| s.0).collect();
        assert_eq!(rings, vec![LEFT_RING, RIGHT_RING]);
    }

    /// Drives two observer engines with the same per-ring streams in
    /// different arrival interleavings and returns both merged message
    /// sequences.
    fn merged_orders_for(
        interleave_a: &[usize],
        interleave_b: &[usize],
    ) -> (Vec<String>, Vec<String>) {
        // Build the two per-ring streams once, from a third engine's
        // submissions: two messages on "left", two on "right".
        let mut sender = engine(9);
        let mut streams: Vec<Vec<Delivery>> = vec![Vec::new(), Vec::new()];
        let mut seqs = [0u64, 0u64];
        let mut feed = |ring: RingIdx, round: u64, outs: Vec<MultiOutput>| {
            for (r, payload, service) in submit_payloads(&outs) {
                assert_eq!(r, ring);
                let i = ring.as_usize();
                seqs[i] += 1;
                streams[i].push(delivery(seqs[i], 9, round, payload, service));
            }
        };
        feed(LEFT_RING, 0, sender.client_join("c9", "left").unwrap());
        feed(RIGHT_RING, 0, sender.client_join("c9", "right").unwrap());
        feed(
            LEFT_RING,
            1,
            sender
                .client_multicast("c9", &["left"], Bytes::from_static(b"L1"), Service::Agreed)
                .unwrap(),
        );
        feed(
            RIGHT_RING,
            1,
            sender
                .client_multicast("c9", &["right"], Bytes::from_static(b"R1"), Service::Agreed)
                .unwrap(),
        );
        feed(
            LEFT_RING,
            2,
            sender
                .client_multicast("c9", &["left"], Bytes::from_static(b"L2"), Service::Agreed)
                .unwrap(),
        );
        feed(
            RIGHT_RING,
            3,
            sender
                .client_multicast("c9", &["right"], Bytes::from_static(b"R2"), Service::Agreed)
                .unwrap(),
        );

        let run = |order: &[usize]| {
            let mut obs = MultiRingEngine::new(ParticipantId::new(9), two_ring_shards(), 1);
            obs.client_connect("c9").unwrap();
            let mut idx = [0usize, 0usize];
            let mut got = Vec::new();
            for &ring in order {
                if idx[ring] < streams[ring].len() {
                    let d = &streams[ring][idx[ring]];
                    idx[ring] += 1;
                    got.extend(messages(&obs.on_delivery(RingIdx::new(ring as u16), d)));
                }
            }
            got.extend(messages(&obs.finish()));
            got
        };
        (run(interleave_a), run(interleave_b))
    }

    #[test]
    fn merged_client_order_is_arrival_invariant() {
        let (a, b) = merged_orders_for(&[0, 0, 0, 1, 1, 1], &[1, 1, 1, 0, 0, 0]);
        assert_eq!(a.len(), 4, "all four data messages must surface");
        assert_eq!(a, b, "merged order must not depend on arrival timing");
        let (c, d) = merged_orders_for(&[0, 1, 0, 1, 0, 1], &[1, 0, 0, 1, 1, 0]);
        assert_eq!(a, c);
        assert_eq!(c, d);
    }

    #[test]
    fn tick_deliveries_advance_the_merge_without_events() {
        let mut e = engine(0);
        // Feed the join so c0 is a member of "right".
        let join = e.client_join("c0", "right").unwrap();
        let (ring, payload, service) = submit_payloads(&join)[0].clone();
        assert!(e
            .on_delivery(ring, &delivery(1, 0, 0, payload, service))
            .is_empty()); // blocked: ring 0 floor still at 0
                          // A data message on "right" at round 2 is blocked by idle ring 0.
        let m = e
            .client_multicast("c0", &["right"], Bytes::from_static(b"hi"), Service::Agreed)
            .unwrap();
        let (ring, payload, service) = submit_payloads(&m)[0].clone();
        assert!(e
            .on_delivery(ring, &delivery(2, 0, 2, payload, service))
            .is_empty());
        assert_eq!(e.blocking_rings(), vec![LEFT_RING]);
        // Ticks ordered on ring 0 (tag rejected by unpack → no outputs)
        // advance the watermark and release everything.
        let tick = accelring_daemon::packing::tick_payload();
        let out = e.on_delivery(LEFT_RING, &delivery(1, 0, 3, tick, Service::Agreed));
        assert_eq!(messages(&out), vec!["hi"]);
        assert!(e.blocking_rings().is_empty());
    }

    #[test]
    fn regular_config_fences_the_merged_stream() {
        let mut e = engine(0);
        let change = ConfigChange {
            ring_id: accelring_core::RingId::new(ParticipantId::new(0), 1),
            members: vec![ParticipantId::new(0)],
            transitional: false,
        };
        let out = e.on_config_change(RIGHT_RING, &change);
        // The fence releases immediately (both rings at slot 0 and ring 1
        // fences after anything ring 0 could still say at slot 0 — but
        // ring 0's floor equals the slot, so the Config event is held
        // until ring 0 passes slot 0).
        assert!(out.is_empty());
        let out = e.on_delivery(
            LEFT_RING,
            &delivery(
                1,
                0,
                1,
                accelring_daemon::packing::tick_payload(),
                Service::Agreed,
            ),
        );
        assert!(out.iter().any(|o| matches!(
            o,
            MultiOutput::Local {
                event: ClientEvent::Config {
                    transitional: false,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn rebalance_moves_groups_and_replays_joins() {
        let mut e = engine(0);
        for out in e.client_join("c0", "right").unwrap() {
            if let MultiOutput::Submit {
                ring,
                payload,
                service,
            } = out
            {
                e.on_delivery(ring, &delivery(1, 0, 0, payload, service));
            }
        }
        // Ring 1 dies; "right" must move to ring 0 and c0's join replay
        // must target ring 0.
        let (moves, out) = e.apply_rebalance(&[LEFT_RING]);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].group, "right");
        assert_eq!(moves[0].to, LEFT_RING);
        assert_eq!(e.ring_of("right"), LEFT_RING);
        let subs = submit_payloads(&out);
        assert_eq!(subs.len(), 1, "one replayed join");
        assert_eq!(subs[0].0, LEFT_RING);
        // The retired ring no longer gates the merge.
        let m = e
            .client_multicast("c0", &["right"], Bytes::from_static(b"x"), Service::Agreed)
            .unwrap();
        let (ring, payload, service) = submit_payloads(&m)[0].clone();
        // Deliver the replayed join first so membership exists on ring 0.
        let (jr, jp, js) = subs[0].clone();
        e.on_delivery(jr, &delivery(1, 0, 1, jp, js));
        let out = e.on_delivery(ring, &delivery(2, 0, 2, payload, service));
        assert_eq!(messages(&out), vec!["x"]);
    }

    #[test]
    fn failed_connect_rolls_back_all_rings() {
        let mut e = engine(0);
        // "c0" exists on every ring; reconnecting must fail and leave
        // the engines consistent.
        assert!(e.client_connect("c0").is_err());
        assert!(e.client_disconnect("c0").is_ok());
        assert!(e.client_connect("c0").is_ok());
    }
}
