//! The multi-ring routing engine: one [`GroupEngine`] per ring, a
//! [`ShardMap`] deciding which ring orders which group, and a [`Merger`]
//! folding the R delivery streams back into one total order.
//!
//! Like [`GroupEngine`], the [`MultiRingEngine`] is pure: runtimes feed
//! it client commands plus each ring's deliveries and configuration
//! changes, and carry out the [`MultiOutput`]s — submissions now carry
//! the ring they must be ordered on, and local client events come out
//! already merged across rings. Every daemon running the same shard map
//! over the same per-ring streams emits client events in the same merged
//! order, which is the whole point.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::{Delivery, ParticipantId, PerRingStats, RingIdx, Service};
use accelring_daemon::packing::{self, MapMsg, MigMsg, MigOp};
use accelring_daemon::proto::decode_group_message;
use accelring_daemon::{
    ClientEvent, EngineError, EngineOptions, EngineOutput, GroupAction, GroupEngine, GroupMessage,
};
use accelring_membership::ConfigChange;
use bytes::Bytes;

use crate::merge::{MergedEntry, Merger};
use crate::migrate::{HeldSend, Migration, MigrationCounters};
use crate::shard::{ShardMap, ShardMove};

/// An effect the runtime must carry out for the multi-ring engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiOutput {
    /// Submit this payload for totally ordered multicast on one ring.
    Submit {
        /// The ring that must order it.
        ring: RingIdx,
        /// Encoded group message.
        payload: Bytes,
        /// Requested service.
        service: Service,
    },
    /// Hand an event to a local client (already cross-ring merged).
    Local {
        /// The local client's name.
        client: String,
        /// The event.
        event: ClientEvent,
    },
}

/// Errors from multi-ring client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiRingError {
    /// The underlying per-ring engine rejected the operation.
    Engine(EngineError),
    /// A multicast addressed groups sharded onto different rings. One
    /// message is ordered by exactly one ring (as in Multi-Ring Paxos);
    /// the caller must split the send or co-locate the groups with
    /// [`ShardMap::assign`].
    CrossRing {
        /// The offending group list.
        groups: Vec<String>,
        /// The distinct rings they map to.
        rings: Vec<RingIdx>,
    },
    /// A migration request was rejected before it touched the wire
    /// (nonexistent or retired target, group already migrating, …).
    Migration {
        /// The group that was asked to move.
        group: String,
        /// Why it cannot.
        reason: String,
    },
}

impl std::fmt::Display for MultiRingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiRingError::Engine(e) => write!(f, "{e}"),
            MultiRingError::CrossRing { groups, rings } => {
                write!(
                    f,
                    "groups {groups:?} span rings {rings:?}; a multicast must target one ring"
                )
            }
            MultiRingError::Migration { group, reason } => {
                write!(f, "cannot migrate group {group:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for MultiRingError {}

impl From<EngineError> for MultiRingError {
    fn from(e: EngineError) -> Self {
        MultiRingError::Engine(e)
    }
}

/// The per-daemon multi-ring engine.
#[derive(Debug)]
pub struct MultiRingEngine {
    shards: ShardMap,
    engines: Vec<GroupEngine>,
    merger: Merger<Vec<EngineOutput>>,
    /// Groups each local client has joined (join minus leave), used to
    /// replay joins when a rebalance moves a group to a new ring.
    local_joins: BTreeMap<String, BTreeSet<String>>,
    /// Per-ring migration fences: a group in `frozen[r]` has its data
    /// messages dropped when ring `r` orders them. Mutated *only* by
    /// deliveries from ring `r`'s own total order (Start adds on the
    /// source, Abort removes on the source, Open removes on the target),
    /// so every observer of the same streams drops the same messages —
    /// the zero-gap/zero-overlap argument rests on this.
    frozen: Vec<BTreeSet<String>>,
    /// In-flight migrations, keyed by group. Each entry lives on its
    /// own `(group, from)` stream: created by a Start ordered on `from`,
    /// removed by the Commit/Abort ordered on `from`. A group can
    /// briefly hold *two* entries at an observer consuming the rings
    /// with cross-ring skew — a back-migration's Start (on the new
    /// source ring) seen before the previous handoff's Commit (on the
    /// old one) — which is exactly why the key cannot be the group
    /// alone: each decision must find *its* entry by `(from, to)`.
    migrations: BTreeMap<String, Vec<Migration>>,
    /// Readiness proofs delivered on a target ring before this observer
    /// processed the source ring's Start (cross-ring processing skew),
    /// keyed by `(group, from, to)` so a parked proof can only ever be
    /// consumed by the Start of the same migration direction.
    pending_ready: BTreeMap<(String, u16, u16), BTreeSet<u16>>,
    counters: MigrationCounters,
    stats: PerRingStats,
    /// Shard-map epochs adopted from ordered announcements (strictly
    /// newer than the local map at delivery time).
    maps_adopted: u64,
    /// Shard-map announcements this daemon submitted (it was the lowest
    /// pid of a freshly installed regular configuration).
    maps_announced: u64,
}

impl MultiRingEngine {
    /// Creates the engine for daemon `pid` over `shards.rings()` rings,
    /// pacing the merge at `lambda` token rounds per merge slot.
    pub fn new(pid: ParticipantId, shards: ShardMap, lambda: u64) -> MultiRingEngine {
        Self::with_options(pid, shards, lambda, EngineOptions::default())
    }

    /// Like [`MultiRingEngine::new`] with explicit packing options for
    /// the per-ring engines.
    pub fn with_options(
        pid: ParticipantId,
        shards: ShardMap,
        lambda: u64,
        options: EngineOptions,
    ) -> MultiRingEngine {
        let rings = shards.rings();
        MultiRingEngine {
            shards,
            engines: (0..rings)
                .map(|_| GroupEngine::with_options(pid, options))
                .collect(),
            merger: Merger::new(rings, lambda),
            local_joins: BTreeMap::new(),
            frozen: (0..rings).map(|_| BTreeSet::new()).collect(),
            migrations: BTreeMap::new(),
            pending_ready: BTreeMap::new(),
            counters: MigrationCounters::default(),
            stats: PerRingStats::new(rings as usize),
            maps_adopted: 0,
            maps_announced: 0,
        }
    }

    fn pid(&self) -> ParticipantId {
        self.engines[0].pid()
    }

    /// Number of rings this engine routes over.
    pub fn rings(&self) -> u16 {
        self.shards.rings()
    }

    /// The shard map in force.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// The ring that orders `group` under the current shard map.
    pub fn ring_of(&self, group: &str) -> RingIdx {
        self.shards.ring_of(group)
    }

    /// Per-ring delivery/submission counters, maintained from the
    /// streams this engine has processed.
    pub fn stats(&self) -> &PerRingStats {
        &self.stats
    }

    /// Read access to one ring's engine (tests, reports).
    pub fn ring_engine(&self, ring: RingIdx) -> &GroupEngine {
        &self.engines[ring.as_usize()]
    }

    /// Rings whose lagging watermark currently blocks the merged stream;
    /// the runtime orders skip ticks on them (leader only) so an idle
    /// ring cannot stall the merge.
    pub fn blocking_rings(&self) -> Vec<RingIdx> {
        self.merger.blocking_rings()
    }

    /// Migration lifecycle counters this engine has accumulated.
    pub fn migration_counters(&self) -> MigrationCounters {
        self.counters
    }

    /// Shard-map epochs adopted from ordered announcements.
    pub fn maps_adopted(&self) -> u64 {
        self.maps_adopted
    }

    /// Shard-map announcements this daemon submitted.
    pub fn maps_announced(&self) -> u64 {
        self.maps_announced
    }

    /// The highest merge slot released so far — the delivered-slot
    /// cursor a recovery snapshot is anchored at.
    pub fn merge_cursor(&self) -> u64 {
        self.merger.cursor()
    }

    /// The current shard map as an announce/snapshot message.
    pub fn map_msg(&self) -> MapMsg {
        MapMsg {
            version: self.shards.version(),
            rings: self.shards.rings(),
            sender: self.pid().as_u16(),
            retired: self
                .shards
                .retired_rings()
                .iter()
                .map(|r| r.as_u16())
                .collect(),
            overrides: self
                .shards
                .placements()
                .into_iter()
                .map(|(g, r)| (g, r.as_u16()))
                .collect(),
        }
    }

    /// Adopts a peer-announced map if strictly newer than the local one
    /// (see [`ShardMap::adopt`]). Returns whether anything changed.
    pub fn adopt_map(&mut self, msg: &MapMsg) -> bool {
        let placements: Vec<(String, RingIdx)> = msg
            .overrides
            .iter()
            .map(|(g, r)| (g.clone(), RingIdx::new(*r)))
            .collect();
        let retired: Vec<RingIdx> = msg.retired.iter().map(|r| RingIdx::new(*r)).collect();
        let adopted = self.shards.adopt(msg.version, &placements, &retired);
        if adopted {
            self.maps_adopted += 1;
        }
        adopted
    }

    /// Every ring's per-client dedup watermarks — the dedup half of a
    /// recovery snapshot. Exported per ring, never max-merged across
    /// rings: a resubmission legitimately re-ordered on a group's *new*
    /// home ring must not be suppressed by a watermark its *old* ring
    /// set, or observers' merged orders would diverge.
    pub fn export_seqs(&self) -> Vec<Vec<(String, u64)>> {
        self.engines.iter().map(GroupEngine::export_seqs).collect()
    }

    /// Seeds per-ring dedup watermarks from a snapshot (max-merge per
    /// ring; extra rings in the snapshot are ignored).
    pub fn seed_seqs(&mut self, seqs: &[Vec<(String, u64)>]) {
        for (engine, ring_seqs) in self.engines.iter_mut().zip(seqs) {
            engine.seed_seqs(ring_seqs);
        }
    }

    /// The migrations currently in flight: `(group, from, to)` triples.
    /// The runtime polls this to drive abort timers.
    pub fn migrations_in_flight(&self) -> Vec<(String, RingIdx, RingIdx)> {
        self.migrations
            .values()
            .flatten()
            .map(|m| (m.group.clone(), m.from, m.to))
            .collect()
    }

    /// The in-flight migration of `group`, if any (tests, reports).
    /// Under cross-ring skew a group can hold more than one entry; this
    /// returns the one fencing the group's current local home if
    /// present, else the newest.
    pub fn migration(&self, group: &str) -> Option<&Migration> {
        let home = self.shards.ring_of(group);
        let v = self.migrations.get(group)?;
        v.iter().find(|m| m.from == home).or_else(|| v.last())
    }

    /// Whether `group` is behind a migration fence on `ring` (its data
    /// ordered by that ring is being dropped).
    pub fn is_frozen(&self, ring: RingIdx, group: &str) -> bool {
        self.frozen[ring.as_usize()].contains(group)
    }

    /// Starts an online migration of `group` to ring `to`: returns the
    /// Start fence to submit on the group's current (source) ring. State
    /// changes only when the fence comes back through the source ring's
    /// total order, so a lost submission is simply a migration that
    /// never began.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::Migration`] if the target does not
    /// exist, is the current ring, or is retired, or if the group is
    /// already migrating or still fenced from an earlier handoff.
    pub fn begin_migration(
        &mut self,
        group: &str,
        to: RingIdx,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let reject = |reason: String| MultiRingError::Migration {
            group: group.to_string(),
            reason,
        };
        accelring_daemon::proto::validate_name(group).map_err(|e| reject(e.to_string()))?;
        let from = self.shards.ring_of(group);
        if to.as_u16() >= self.rings() {
            return Err(reject(format!(
                "target ring {} does not exist",
                to.as_u16()
            )));
        }
        if to == from {
            return Err(reject(format!(
                "group already lives on ring {}",
                to.as_u16()
            )));
        }
        if self.shards.is_retired(to) {
            return Err(reject(format!("target ring {} is retired", to.as_u16())));
        }
        if self.migrations.contains_key(group) {
            return Err(reject("a migration is already in flight".to_string()));
        }
        if self.frozen[from.as_usize()].contains(group) {
            return Err(reject(format!("group is fenced on ring {}", from.as_u16())));
        }
        Ok(self.submit_mig(from, MigOp::Start, group, from, to))
    }

    /// Escalates an in-flight migration to abort: returns the Abort to
    /// submit on the source ring (where it races the commit — whichever
    /// the ring orders first wins, identically at every observer). The
    /// runtime calls this when the readiness barrier misses its
    /// deadline, e.g. because the target ring partitioned. No-op if the
    /// group is not migrating.
    pub fn abort_migration(&mut self, group: &str) -> Vec<MultiOutput> {
        let Some(m) = self.migration(group) else {
            return Vec::new();
        };
        let (from, to) = (m.from, m.to);
        self.submit_mig(from, MigOp::Abort, group, from, to)
    }

    fn submit_mig(
        &mut self,
        ring: RingIdx,
        op: MigOp,
        group: &str,
        from: RingIdx,
        to: RingIdx,
    ) -> Vec<MultiOutput> {
        let payload = packing::mig_payload(&MigMsg {
            op,
            group: group.to_string(),
            from: from.as_u16(),
            to: to.as_u16(),
            sender: self.pid().as_u16(),
        });
        self.stats.ring_mut(ring).submitted += 1;
        vec![MultiOutput::Submit {
            ring,
            payload,
            service: Service::Agreed,
        }]
    }

    /// Sequenced messages dropped as duplicates, summed over rings.
    pub fn duplicates_dropped(&self) -> u64 {
        self.engines
            .iter()
            .map(GroupEngine::duplicates_dropped)
            .sum()
    }

    /// The highest session sequence number seen for `client` on the ring
    /// that orders `group`-less traffic — across all rings, the max.
    pub fn last_seq(&self, client: &str) -> u64 {
        self.engines
            .iter()
            .map(|e| e.last_seq(client))
            .max()
            .unwrap_or(0)
    }

    fn ring_for_groups(&self, groups: &[&str]) -> Result<RingIdx, MultiRingError> {
        let mut rings: Vec<RingIdx> = groups.iter().map(|g| self.shards.ring_of(g)).collect();
        rings.sort_unstable();
        rings.dedup();
        match rings.as_slice() {
            [one] => Ok(*one),
            _ => Err(MultiRingError::CrossRing {
                groups: groups.iter().map(|g| g.to_string()).collect(),
                rings,
            }),
        }
    }

    fn submits(&mut self, ring: RingIdx, outputs: Vec<EngineOutput>) -> Vec<MultiOutput> {
        outputs
            .into_iter()
            .map(|out| match out {
                EngineOutput::Submit { payload, service } => {
                    self.stats.ring_mut(ring).submitted += 1;
                    MultiOutput::Submit {
                        ring,
                        payload,
                        service,
                    }
                }
                // Client operations only ever produce submissions; local
                // events flow exclusively from deliveries, which keeps
                // every client-visible event inside the merged order.
                EngineOutput::Local { client, event } => MultiOutput::Local { client, event },
            })
            .collect()
    }

    /// Registers a local client on every ring (its groups may shard
    /// anywhere).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid or duplicate names.
    pub fn client_connect(&mut self, name: &str) -> Result<(), MultiRingError> {
        for (i, engine) in self.engines.iter_mut().enumerate() {
            if let Err(e) = engine.client_connect(name) {
                // Roll back the rings already joined so a failed connect
                // leaves no trace.
                for engine in self.engines.iter_mut().take(i) {
                    let _ = engine.client_disconnect(name);
                }
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// Unregisters a local client; departures are multicast on every
    /// ring so all replicas prune it.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::Engine`] if not connected.
    pub fn client_disconnect(&mut self, name: &str) -> Result<Vec<MultiOutput>, MultiRingError> {
        let mut out = Vec::new();
        for ring in 0..self.engines.len() {
            let outputs = self.engines[ring].client_disconnect(name)?;
            out.extend(self.submits(RingIdx::new(ring as u16), outputs));
        }
        self.local_joins.remove(name);
        Ok(out)
    }

    /// The named client joins `group` on the ring the shard map routes
    /// it to.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients or invalid group names.
    pub fn client_join(
        &mut self,
        name: &str,
        group: &str,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let ring = self.shards.ring_of(group);
        let outputs = self.engines[ring.as_usize()].client_join(name, group)?;
        self.local_joins
            .entry(name.to_string())
            .or_default()
            .insert(group.to_string());
        Ok(self.submits(ring, outputs))
    }

    /// The named client leaves `group`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clients or invalid group names.
    pub fn client_leave(
        &mut self,
        name: &str,
        group: &str,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let ring = self.shards.ring_of(group);
        let outputs = self.engines[ring.as_usize()].client_leave(name, group)?;
        if let Some(joined) = self.local_joins.get_mut(name) {
            joined.remove(group);
        }
        Ok(self.submits(ring, outputs))
    }

    /// Multicasts `payload` to one or more groups. All target groups
    /// must shard onto the same ring — one message is ordered by exactly
    /// one ring.
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::CrossRing`] when the groups span rings,
    /// or the per-ring engine's error otherwise.
    pub fn client_multicast(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        self.client_multicast_sequenced(name, groups, payload, service, 0)
    }

    /// Like [`MultiRingEngine::client_multicast`] with a client-session
    /// sequence number for duplicate suppression. A given sender name
    /// must keep a group set on one ring for suppression to apply (the
    /// seen-sequence map is per ring).
    ///
    /// # Errors
    ///
    /// Returns [`MultiRingError::CrossRing`] when the groups span rings,
    /// or the per-ring engine's error otherwise.
    pub fn client_multicast_sequenced(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let ring = self.ring_for_groups(groups)?;
        // A send into a migrating group is held, not submitted: the
        // commit or abort decision flushes it to whichever ring ends up
        // owning the group, after the handoff point in that ring's
        // order. (Only for known clients — errors must still surface.)
        if let Some(mig_group) = groups.iter().find(|g| self.migrations.contains_key(**g)) {
            if self.engines[ring.as_usize()]
                .local_clients()
                .iter()
                .any(|c| c == name)
            {
                let held = HeldSend {
                    client: name.to_string(),
                    groups: groups.iter().map(|g| g.to_string()).collect(),
                    payload,
                    service,
                    seq,
                };
                let mig_group = (*mig_group).to_string();
                self.holding_migration_mut(&mig_group)
                    .expect("checked above")
                    .held
                    .push(held);
                self.counters.redirected += 1;
                return Ok(Vec::new());
            }
        }
        let outputs = self.engines[ring.as_usize()]
            .client_multicast_sequenced(name, groups, payload, service, seq)?;
        Ok(self.submits(ring, outputs))
    }

    /// Multicasts `payload` to groups that may span rings by splitting
    /// the send into one fragment per ring, each targeting that ring's
    /// subset of the groups (same payload, same sequence). A receiver
    /// subscribed across the span observes one fragment per ring in the
    /// merged order; state machines that need atomicity (the KV store's
    /// cross-shard transactions) buffer fragments by `(sender, seq)`
    /// and commit when every involved group has been covered — the
    /// commit point, the merged position of the last fragment, is a
    /// pure function of the merged stream and therefore identical at
    /// every replica. Per-ring dedup watermarks stay sound: a sender's
    /// sequences remain strictly increasing within each ring because
    /// fragment routing is deterministic in the shard map.
    ///
    /// Groups on one ring degrade to a plain
    /// [`MultiRingEngine::client_multicast_sequenced`].
    ///
    /// # Errors
    ///
    /// Returns the per-ring engine's error (unknown client, invalid
    /// group name). An error on a later ring does not retract fragments
    /// already produced for earlier rings — the caller treats the send
    /// as in-doubt and may resubmit under the same sequence.
    pub fn client_multicast_spanning(
        &mut self,
        name: &str,
        groups: &[&str],
        payload: Bytes,
        service: Service,
        seq: u64,
    ) -> Result<Vec<MultiOutput>, MultiRingError> {
        let mut by_ring: std::collections::BTreeMap<RingIdx, Vec<&str>> =
            std::collections::BTreeMap::new();
        for g in groups {
            by_ring.entry(self.shards.ring_of(g)).or_default().push(g);
        }
        if by_ring.len() <= 1 {
            return self.client_multicast_sequenced(name, groups, payload, service, seq);
        }
        let mut out = Vec::new();
        for subset in by_ring.into_values() {
            // Each fragment re-routes through the sequenced path so a
            // subset whose group is mid-migration is held and flushed
            // exactly like a single-ring send.
            out.extend(self.client_multicast_sequenced(
                name,
                &subset,
                payload.clone(),
                service,
                seq,
            )?);
        }
        Ok(out)
    }

    /// Closes partially filled packed payloads on every ring.
    pub fn flush(&mut self) -> Vec<MultiOutput> {
        let mut out = Vec::new();
        for ring in 0..self.engines.len() {
            let outputs = self.engines[ring].flush();
            out.extend(self.submits(RingIdx::new(ring as u16), outputs));
        }
        out
    }

    fn release(&mut self, released: Vec<MergedEntry<Vec<EngineOutput>>>) -> Vec<MultiOutput> {
        released
            .into_iter()
            .flat_map(|entry| entry.into_item())
            .map(|out| match out {
                EngineOutput::Local { client, event } => MultiOutput::Local { client, event },
                // Deliveries never produce submissions.
                EngineOutput::Submit { payload, service } => MultiOutput::Submit {
                    ring: RingIdx::new(0),
                    payload,
                    service,
                },
            })
            .collect()
    }

    /// Processes one ordered delivery from `ring`, producing merged
    /// local client events. Every delivery — including skip ticks and
    /// undecodable payloads — advances the ring's merge watermark, so
    /// idle-ring ticks unblock the other rings' streams by construction.
    pub fn on_delivery(&mut self, ring: RingIdx, delivery: &Delivery) -> Vec<MultiOutput> {
        let stats = self.stats.ring_mut(ring);
        if delivery.service.requires_stability() {
            stats.delivered_safe += 1;
        } else {
            stats.delivered_agreed += 1;
        }
        if let Some(epoch) = accelring_daemon::packing::parse_tick(&delivery.payload) {
            // Skip ticks carry the highest configuration counter seen
            // across rings: aligning this ring's clock to that epoch
            // base keeps an idle, never-reforming ring from stalling
            // the merge behind a reformed ring's epoch.
            let released = self.merger.advance_to(ring, epoch, delivery.round);
            return self.release(released);
        }
        if let Some(mig) = packing::parse_mig(&delivery.payload) {
            // Migration control rides the total order so every observer
            // applies the state transition at the same stream position;
            // like a tick, it advances the merge watermark and emits no
            // client events of its own.
            let mut out = self.on_mig_delivery(ring, &mig);
            let released = self.merger.advance(ring, delivery.round);
            out.extend(self.release(released));
            return out;
        }
        if let Some(map) = packing::parse_map(&delivery.payload) {
            // A shard-map epoch announcement: adopt-if-strictly-newer at
            // the same stream position everywhere. Live daemons already
            // at this version drop it; a rejoined daemon routing from a
            // stale map converges here without replaying history.
            self.adopt_map(&map);
            let released = self.merger.advance(ring, delivery.round);
            return self.release(released);
        }
        match self.filter_frozen(ring, &delivery.payload, delivery.service) {
            Some((None, mut out)) => {
                // Everything in the delivery was fenced: pure watermark.
                let released = self.merger.advance(ring, delivery.round);
                out.extend(self.release(released));
                out
            }
            Some((Some(payload), mut out)) => {
                let survivor = Delivery {
                    payload,
                    ..delivery.clone()
                };
                out.extend(self.deliver_to_engine(ring, &survivor));
                out
            }
            None => self.deliver_to_engine(ring, delivery),
        }
    }

    fn deliver_to_engine(&mut self, ring: RingIdx, delivery: &Delivery) -> Vec<MultiOutput> {
        let outputs = self.engines[ring.as_usize()].on_delivery(delivery);
        let released = if outputs.is_empty() {
            self.merger.advance(ring, delivery.round)
        } else {
            self.merger.push(ring, delivery.round, outputs)
        };
        self.release(released)
    }

    /// Applies the migration fence to one ring payload. Data messages
    /// whose target groups are *all* frozen on `ring` are dropped —
    /// identically at every observer, because the frozen sets are a pure
    /// function of the ring streams — and this daemon's own dropped
    /// sends are recovered into the migration's held queue (or rerouted
    /// outright if the decision already landed).
    ///
    /// Returns `None` when the delivery passes untouched; otherwise the
    /// re-framed survivor payload (`None` = wholly fenced) plus any
    /// redirect submissions. Fragments bypass the fence (they reassemble
    /// identically everywhere, so determinism holds; the assembled
    /// message leaks past the fence exactly once — a documented
    /// limitation for large messages in migrating groups).
    fn filter_frozen(
        &mut self,
        ring: RingIdx,
        payload: &Bytes,
        service: Service,
    ) -> Option<(Option<Bytes>, Vec<MultiOutput>)> {
        if self.frozen[ring.as_usize()].is_empty() {
            return None;
        }
        let msgs = packing::unpack(payload.clone()).ok()?;
        let mut survivors = Vec::with_capacity(msgs.len());
        let mut out = Vec::new();
        let mut fenced = false;
        for m in msgs {
            let mut cursor = m.clone();
            let keep = match decode_group_message(&mut cursor) {
                Ok(gm) => {
                    let frozen_all = matches!(
                        &gm.action,
                        GroupAction::Data { groups, .. }
                            if !groups.is_empty()
                                && groups
                                    .iter()
                                    .all(|g| self.frozen[ring.as_usize()].contains(g))
                    );
                    if frozen_all {
                        fenced = true;
                        if gm.sender.daemon == self.pid() {
                            out.extend(self.redirect_own(gm, service));
                        }
                        false
                    } else {
                        // Membership changes and partially frozen
                        // multi-group sends pass through: deterministic
                        // either way, and the commit replay reconciles
                        // membership on the new home ring.
                        true
                    }
                }
                Err(_) => true,
            };
            if keep {
                survivors.push(m);
            }
        }
        if !fenced {
            return None;
        }
        let survivor_payload = if survivors.is_empty() {
            None
        } else {
            Some(packing::pack_all(&survivors))
        };
        Some((survivor_payload, out))
    }

    /// Recovers one of this daemon's own sends that the fence dropped.
    fn redirect_own(&mut self, gm: GroupMessage, service: Service) -> Vec<MultiOutput> {
        let GroupMessage {
            sender,
            seq,
            action: GroupAction::Data { groups, payload },
        } = gm
        else {
            return Vec::new();
        };
        self.counters.redirected += 1;
        if let Some(g) = groups.iter().find(|g| self.migrations.contains_key(*g)) {
            let g = g.clone();
            self.holding_migration_mut(&g)
                .expect("checked above")
                .held
                .push(HeldSend {
                    client: sender.name,
                    groups,
                    payload,
                    service,
                    seq,
                });
            return Vec::new();
        }
        // The commit (or abort) already landed and removed the
        // migration: the shard map knows the group's home — resubmit
        // there directly. Duplicate suppression makes this exactly-once
        // even if the original also surfaces somewhere.
        let refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        self.client_multicast_sequenced(&sender.name, &refs, payload, service, seq)
            .unwrap_or_default()
    }

    /// Applies one ordered migration control message. Deliveries on the
    /// wrong ring, duplicates, and stale decisions are ignored — the
    /// first decision a stream orders wins, at every observer alike.
    fn on_mig_delivery(&mut self, ring: RingIdx, mig: &MigMsg) -> Vec<MultiOutput> {
        let rings = self.rings();
        if mig.from >= rings || mig.to >= rings || mig.from == mig.to {
            return Vec::new();
        }
        let (from, to) = (RingIdx::new(mig.from), RingIdx::new(mig.to));
        match mig.op {
            MigOp::Start => {
                // Guarded only by *source-stream-pure* state: the fence
                // set of `from` and whether an entry with this `from`
                // already exists (both mutated solely by this ring's
                // deliveries). In particular the group having *some*
                // entry is NOT a reason to ignore — under cross-ring
                // skew a back-migration's Start arrives here while the
                // previous handoff's entry (sourced on the other ring)
                // is still open, and ignoring it would leave this ring
                // unfenced, double-delivering everything past the fence.
                if ring != from
                    || self.frozen[from.as_usize()].contains(&mig.group)
                    || self
                        .migrations
                        .get(&mig.group)
                        .is_some_and(|v| v.iter().any(|m| m.from == from))
                {
                    return Vec::new();
                }
                self.counters.started += 1;
                self.frozen[from.as_usize()].insert(mig.group.clone());
                // The barrier: every daemon hosting a member at the
                // fence point must prove itself on the target ring. The
                // source ring's table is a pure function of the source
                // stream, so `expected` is identical everywhere.
                let expected: BTreeSet<u16> = self.engines[from.as_usize()]
                    .groups()
                    .members(&mig.group)
                    .iter()
                    .map(|c| c.daemon.as_u16())
                    .collect();
                let ready = self
                    .pending_ready
                    .remove(&(mig.group.clone(), mig.from, mig.to))
                    .unwrap_or_default();
                self.migrations
                    .entry(mig.group.clone())
                    .or_default()
                    .push(Migration {
                        group: mig.group.clone(),
                        from,
                        to,
                        expected,
                        ready,
                        held: Vec::new(),
                        commit_requested: false,
                    });
                let mut out = self.replay_joins_onto(&mig.group, to);
                // Sender-FIFO puts this daemon's Ready after its join
                // replays in the target ring's order: when the barrier
                // is met, every member join is already ordered on the
                // target, which is the zero-gap guarantee.
                out.extend(self.submit_mig(to, MigOp::Ready, &mig.group, from, to));
                out.extend(self.maybe_commit(&mig.group, from, to));
                out
            }
            MigOp::Ready => {
                if ring != to {
                    return Vec::new();
                }
                let matched = self
                    .migrations
                    .get_mut(&mig.group)
                    .and_then(|v| v.iter_mut().find(|m| m.from == from && m.to == to))
                    .map(|m| m.ready.insert(mig.sender))
                    .is_some();
                if matched {
                    return self.maybe_commit(&mig.group, from, to);
                }
                // Cross-ring skew: this observer has not yet processed
                // the source ring's Start. Park the proof under the full
                // migration direction so only that Start consumes it.
                self.pending_ready
                    .entry((mig.group.clone(), mig.from, mig.to))
                    .or_default()
                    .insert(mig.sender);
                Vec::new()
            }
            MigOp::Commit => {
                if ring != from {
                    return Vec::new();
                }
                let Some(m) = self.remove_migration(&mig.group, from, to) else {
                    return Vec::new(); // duplicate / already decided
                };
                self.counters.committed += 1;
                self.pending_ready
                    .remove(&(mig.group.clone(), mig.from, mig.to));
                self.shards.migrate_pin(&mig.group, to);
                // The group stays frozen on the source: its fence only
                // reopens if a later migration brings the group back and
                // its Open is ordered here.
                let mut out = self.replay_joins_onto(&mig.group, to);
                out.extend(self.replay_leaves_onto(&mig.group, to));
                out.extend(self.submit_mig(to, MigOp::Open, &mig.group, from, to));
                out.extend(self.flush_held(m.held));
                out
            }
            MigOp::Abort => {
                if ring != from {
                    return Vec::new();
                }
                let Some(m) = self.remove_migration(&mig.group, from, to) else {
                    return Vec::new(); // lost the race against a commit
                };
                self.counters.aborted += 1;
                self.pending_ready
                    .remove(&(mig.group.clone(), mig.from, mig.to));
                self.frozen[from.as_usize()].remove(&mig.group);
                // Held sends flush back to the source, which never
                // stopped serving the group's order.
                self.flush_held(m.held)
            }
            MigOp::Open => {
                if ring != to {
                    return Vec::new();
                }
                // Ordered on the group's new home: reopen it there (a
                // no-op unless an earlier migration away from this ring
                // had fenced it — the back-migration case).
                self.frozen[to.as_usize()].remove(&mig.group);
                Vec::new()
            }
        }
    }

    /// The entry a held client send for `group` lands in when any
    /// migration of it is in flight: the one fencing the group's
    /// current local home if present (its decision is the one that
    /// flushes toward the final owner), else the newest entry. `None`
    /// only when no entry exists.
    fn holding_migration_mut(&mut self, group: &str) -> Option<&mut Migration> {
        let home = self.shards.ring_of(group);
        let v = self.migrations.get_mut(group)?;
        if let Some(i) = v.iter().position(|m| m.from == home) {
            v.get_mut(i)
        } else {
            v.last_mut()
        }
    }

    /// Removes and returns the in-flight entry of `group` matching the
    /// exact `(from, to)` direction, dropping the group key once its
    /// last entry is gone.
    fn remove_migration(&mut self, group: &str, from: RingIdx, to: RingIdx) -> Option<Migration> {
        let v = self.migrations.get_mut(group)?;
        let i = v.iter().position(|m| m.from == from && m.to == to)?;
        let m = v.remove(i);
        if v.is_empty() {
            self.migrations.remove(group);
        }
        Some(m)
    }

    /// Submits the commit decision once the readiness barrier is met
    /// (at most once per daemon; delivery-side dedup handles the rest).
    fn maybe_commit(&mut self, group: &str, from: RingIdx, to: RingIdx) -> Vec<MultiOutput> {
        let Some(m) = self
            .migrations
            .get_mut(group)
            .and_then(|v| v.iter_mut().find(|m| m.from == from && m.to == to))
        else {
            return Vec::new();
        };
        if m.commit_requested || !m.barrier_met() {
            return Vec::new();
        }
        m.commit_requested = true;
        self.submit_mig(from, MigOp::Commit, group, from, to)
    }

    /// Replays this daemon's local joins of `group` onto `ring`
    /// (idempotent at the replicas, like the rebalance replay).
    fn replay_joins_onto(&mut self, group: &str, ring: RingIdx) -> Vec<MultiOutput> {
        let clients: Vec<String> = self
            .local_joins
            .iter()
            .filter(|(_, joined)| joined.contains(group))
            .map(|(client, _)| client.clone())
            .collect();
        let mut out = Vec::new();
        for client in clients {
            if let Ok(outputs) = self.engines[ring.as_usize()].client_join(&client, group) {
                out.extend(self.submits(ring, outputs));
            }
        }
        out
    }

    /// Reconciles mid-migration leavers: a local client that left the
    /// group after the Start replay joined it on the target must leave
    /// there too.
    fn replay_leaves_onto(&mut self, group: &str, ring: RingIdx) -> Vec<MultiOutput> {
        let pid = self.pid();
        let stale: Vec<String> = self.engines[ring.as_usize()]
            .groups()
            .members(group)
            .into_iter()
            .filter(|c| c.daemon == pid)
            .map(|c| c.name)
            .filter(|name| !matches!(self.local_joins.get(name), Some(j) if j.contains(group)))
            .collect();
        let mut out = Vec::new();
        for client in stale {
            if let Ok(outputs) = self.engines[ring.as_usize()].client_leave(&client, group) {
                out.extend(self.submits(ring, outputs));
            }
        }
        out
    }

    /// Resubmits held sends through the normal routing path (the shard
    /// map now points at the group's post-decision home).
    fn flush_held(&mut self, held: Vec<HeldSend>) -> Vec<MultiOutput> {
        let mut out = Vec::new();
        for h in held {
            let refs: Vec<&str> = h.groups.iter().map(String::as_str).collect();
            if let Ok(outputs) =
                self.client_multicast_sequenced(&h.client, &refs, h.payload, h.service, h.seq)
            {
                out.extend(outputs);
            }
        }
        out
    }

    /// Processes an EVS configuration change on one ring. A regular
    /// configuration fences the ring's position in the merged stream; a
    /// transitional configuration is a plain merged notification.
    pub fn on_config_change(&mut self, ring: RingIdx, change: &ConfigChange) -> Vec<MultiOutput> {
        let outputs = self.engines[ring.as_usize()].on_config_change(change);
        // A merging configuration makes the engine re-announce its local
        // memberships (see [`GroupEngine::on_config_change`]): those are
        // submissions for *this* ring and leave immediately; only
        // client-visible events enter the merged stream.
        let (resubmits, locals): (Vec<_>, Vec<_>) = outputs
            .into_iter()
            .partition(|o| matches!(o, EngineOutput::Submit { .. }));
        let mut out = self.submits(ring, resubmits);
        let released = if change.transitional {
            self.merger.push_now(ring, locals)
        } else {
            self.merger
                .push_fence(ring, change.ring_id.counter(), locals)
        };
        out.extend(self.release(released));
        if !change.transitional
            && change.members.iter().min() == Some(&self.pid())
            && self.shards.version() > 0
        {
            // Every freshly installed regular configuration carries one
            // shard-map announcement, submitted by the lowest member pid
            // (one announcer per configuration, no storm). A rejoining
            // daemon triggers a configuration change by merging back in,
            // so the epoch that catches it up is ordered on the very
            // stream it rejoined — catch-up needs no side channel.
            self.maps_announced += 1;
            let payload = packing::map_payload(&self.map_msg());
            self.stats.ring_mut(ring).submitted += 1;
            out.push(MultiOutput::Submit {
                ring,
                payload,
                service: Service::Agreed,
            });
        }
        out
    }

    /// Reacts to the death of entire rings: groups mapped to rings
    /// outside `live` are re-sharded onto the survivors, dead rings are
    /// retired from the merge gate, and joins for this daemon's clients
    /// in moved groups are replayed on their new rings (idempotent at
    /// the replicas, so every daemon may replay its own).
    ///
    /// Returns the moves and the submissions to carry out.
    pub fn apply_rebalance(&mut self, live: &[RingIdx]) -> (Vec<ShardMove>, Vec<MultiOutput>) {
        let mut groups: BTreeSet<String> = BTreeSet::new();
        for engine in &self.engines {
            groups.extend(engine.groups().group_names());
        }
        for joined in self.local_joins.values() {
            groups.extend(joined.iter().cloned());
        }
        let groups: Vec<String> = groups.into_iter().collect();
        // Migrations whose *source* ring died lose the stream that
        // carries their commit/abort decision: cancel them locally and
        // let the held sends chase the rebalanced map below. (A dead
        // *target* ring is left to the runtime's abort escalation — the
        // Abort travels the still-alive source stream, keeping the
        // unfreeze deterministic.)
        let doomed: Vec<(String, RingIdx, RingIdx)> = self
            .migrations
            .values()
            .flatten()
            .filter(|m| !live.contains(&m.from))
            .map(|m| (m.group.clone(), m.from, m.to))
            .collect();
        let mut orphaned = Vec::new();
        for (group, from, to) in doomed {
            if let Some(m) = self.remove_migration(&group, from, to) {
                self.counters.aborted += 1;
                orphaned.extend(m.held);
            }
        }
        self.pending_ready
            .retain(|(_, from, _), _| live.contains(&RingIdx::new(*from)));
        for ring in 0..self.rings() {
            let ring = RingIdx::new(ring);
            if !live.contains(&ring) {
                self.frozen[ring.as_usize()].clear();
            }
        }
        let moves = self.shards.rebalance(&groups, live);
        let mut out = Vec::new();
        for ring in 0..self.rings() {
            let ring = RingIdx::new(ring);
            if !live.contains(&ring) {
                let released = self.merger.retire(ring);
                out.extend(self.release(released));
            }
        }
        let replays: Vec<(String, String, RingIdx)> = moves
            .iter()
            .flat_map(|mv| {
                self.local_joins
                    .iter()
                    .filter(|(_, joined)| joined.contains(&mv.group))
                    .map(|(client, _)| (client.clone(), mv.group.clone(), mv.to))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (client, group, ring) in replays {
            if let Ok(outputs) = self.engines[ring.as_usize()].client_join(&client, &group) {
                out.extend(self.submits(ring, outputs));
            }
        }
        out.extend(self.flush_held(orphaned));
        (moves, out)
    }

    /// Flushes everything still held in the merger, in merge order.
    /// Only sound when no ring will deliver again (shutdown, offline
    /// journal replay).
    pub fn finish(&mut self) -> Vec<MultiOutput> {
        let released = self.merger.finish();
        self.release(released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelring_core::{Round, Seq};

    const LEFT_RING: RingIdx = RingIdx::new(0);
    const RIGHT_RING: RingIdx = RingIdx::new(1);

    fn two_ring_shards() -> ShardMap {
        let mut shards = ShardMap::new(2);
        shards.assign("left", LEFT_RING);
        shards.assign("right", RIGHT_RING);
        shards
    }

    fn engine(pid: u16) -> MultiRingEngine {
        let mut e = MultiRingEngine::new(ParticipantId::new(pid), two_ring_shards(), 1);
        e.client_connect(&format!("c{pid}")).unwrap();
        e
    }

    fn submit_payloads(outputs: &[MultiOutput]) -> Vec<(RingIdx, Bytes, Service)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                MultiOutput::Submit {
                    ring,
                    payload,
                    service,
                } => Some((*ring, payload.clone(), *service)),
                MultiOutput::Local { .. } => None,
            })
            .collect()
    }

    fn delivery(seq: u64, sender: u16, round: u64, payload: Bytes, service: Service) -> Delivery {
        Delivery {
            seq: Seq::new(seq),
            sender: ParticipantId::new(sender),
            round: Round::new(round),
            service,
            payload,
        }
    }

    fn messages(outputs: &[MultiOutput]) -> Vec<String> {
        outputs
            .iter()
            .filter_map(|o| match o {
                MultiOutput::Local {
                    event: ClientEvent::Message { payload, .. },
                    ..
                } => Some(String::from_utf8_lossy(payload).into_owned()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn joins_route_to_the_sharded_ring() {
        let mut e = engine(0);
        let out = e.client_join("c0", "left").unwrap();
        assert_eq!(submit_payloads(&out)[0].0, LEFT_RING);
        let out = e.client_join("c0", "right").unwrap();
        assert_eq!(submit_payloads(&out)[0].0, RIGHT_RING);
        assert_eq!(e.stats().ring(LEFT_RING).submitted, 1);
        assert_eq!(e.stats().ring(RIGHT_RING).submitted, 1);
    }

    #[test]
    fn cross_ring_multicast_is_rejected() {
        let mut e = engine(0);
        let err = e
            .client_multicast(
                "c0",
                &["left", "right"],
                Bytes::from_static(b"x"),
                Service::Agreed,
            )
            .unwrap_err();
        assert!(matches!(err, MultiRingError::CrossRing { .. }));
        // Same-ring multi-group multicast is fine.
        let mut shards = two_ring_shards();
        shards.assign("also-left", LEFT_RING);
        let mut e = MultiRingEngine::new(ParticipantId::new(0), shards, 1);
        e.client_connect("c0").unwrap();
        let out = e
            .client_multicast(
                "c0",
                &["left", "also-left"],
                Bytes::from_static(b"x"),
                Service::Agreed,
            )
            .unwrap();
        assert_eq!(submit_payloads(&out)[0].0, LEFT_RING);
    }

    #[test]
    fn disconnect_submits_on_every_ring() {
        let mut e = engine(0);
        let out = e.client_disconnect("c0").unwrap();
        let rings: Vec<RingIdx> = submit_payloads(&out).iter().map(|s| s.0).collect();
        assert_eq!(rings, vec![LEFT_RING, RIGHT_RING]);
    }

    /// Drives two observer engines with the same per-ring streams in
    /// different arrival interleavings and returns both merged message
    /// sequences.
    fn merged_orders_for(
        interleave_a: &[usize],
        interleave_b: &[usize],
    ) -> (Vec<String>, Vec<String>) {
        // Build the two per-ring streams once, from a third engine's
        // submissions: two messages on "left", two on "right".
        let mut sender = engine(9);
        let mut streams: Vec<Vec<Delivery>> = vec![Vec::new(), Vec::new()];
        let mut seqs = [0u64, 0u64];
        let mut feed = |ring: RingIdx, round: u64, outs: Vec<MultiOutput>| {
            for (r, payload, service) in submit_payloads(&outs) {
                assert_eq!(r, ring);
                let i = ring.as_usize();
                seqs[i] += 1;
                streams[i].push(delivery(seqs[i], 9, round, payload, service));
            }
        };
        feed(LEFT_RING, 0, sender.client_join("c9", "left").unwrap());
        feed(RIGHT_RING, 0, sender.client_join("c9", "right").unwrap());
        feed(
            LEFT_RING,
            1,
            sender
                .client_multicast("c9", &["left"], Bytes::from_static(b"L1"), Service::Agreed)
                .unwrap(),
        );
        feed(
            RIGHT_RING,
            1,
            sender
                .client_multicast("c9", &["right"], Bytes::from_static(b"R1"), Service::Agreed)
                .unwrap(),
        );
        feed(
            LEFT_RING,
            2,
            sender
                .client_multicast("c9", &["left"], Bytes::from_static(b"L2"), Service::Agreed)
                .unwrap(),
        );
        feed(
            RIGHT_RING,
            3,
            sender
                .client_multicast("c9", &["right"], Bytes::from_static(b"R2"), Service::Agreed)
                .unwrap(),
        );

        let run = |order: &[usize]| {
            let mut obs = MultiRingEngine::new(ParticipantId::new(9), two_ring_shards(), 1);
            obs.client_connect("c9").unwrap();
            let mut idx = [0usize, 0usize];
            let mut got = Vec::new();
            for &ring in order {
                if idx[ring] < streams[ring].len() {
                    let d = &streams[ring][idx[ring]];
                    idx[ring] += 1;
                    got.extend(messages(&obs.on_delivery(RingIdx::new(ring as u16), d)));
                }
            }
            got.extend(messages(&obs.finish()));
            got
        };
        (run(interleave_a), run(interleave_b))
    }

    #[test]
    fn merged_client_order_is_arrival_invariant() {
        let (a, b) = merged_orders_for(&[0, 0, 0, 1, 1, 1], &[1, 1, 1, 0, 0, 0]);
        assert_eq!(a.len(), 4, "all four data messages must surface");
        assert_eq!(a, b, "merged order must not depend on arrival timing");
        let (c, d) = merged_orders_for(&[0, 1, 0, 1, 0, 1], &[1, 0, 0, 1, 1, 0]);
        assert_eq!(a, c);
        assert_eq!(c, d);
    }

    #[test]
    fn tick_deliveries_advance_the_merge_without_events() {
        let mut e = engine(0);
        // Feed the join so c0 is a member of "right".
        let join = e.client_join("c0", "right").unwrap();
        let (ring, payload, service) = submit_payloads(&join)[0].clone();
        assert!(e
            .on_delivery(ring, &delivery(1, 0, 0, payload, service))
            .is_empty()); // blocked: ring 0 floor still at 0
                          // A data message on "right" at round 2 is blocked by idle ring 0.
        let m = e
            .client_multicast("c0", &["right"], Bytes::from_static(b"hi"), Service::Agreed)
            .unwrap();
        let (ring, payload, service) = submit_payloads(&m)[0].clone();
        assert!(e
            .on_delivery(ring, &delivery(2, 0, 2, payload, service))
            .is_empty());
        assert_eq!(e.blocking_rings(), vec![LEFT_RING]);
        // Ticks ordered on ring 0 (tag rejected by unpack → no outputs)
        // advance the watermark and release everything.
        let tick = accelring_daemon::packing::tick_payload();
        let out = e.on_delivery(LEFT_RING, &delivery(1, 0, 3, tick, Service::Agreed));
        assert_eq!(messages(&out), vec!["hi"]);
        assert!(e.blocking_rings().is_empty());
    }

    #[test]
    fn regular_config_fences_the_merged_stream() {
        let mut e = engine(0);
        let change = ConfigChange {
            ring_id: accelring_core::RingId::new(ParticipantId::new(0), 1),
            members: vec![ParticipantId::new(0)],
            transitional: false,
        };
        let out = e.on_config_change(RIGHT_RING, &change);
        // The fence releases nothing (both rings at slot 0 and ring 1
        // fences after anything ring 0 could still say at slot 0 — but
        // ring 0's floor equals the slot, so the Config event is held
        // until ring 0 passes slot 0). The only output is this daemon's
        // shard-map announce: pid 0 is the lowest member of the reformed
        // ring, so it submits the map for lagging peers to adopt.
        assert!(!out.iter().any(|o| matches!(o, MultiOutput::Local { .. })));
        let subs = submit_payloads(&out);
        assert_eq!(subs.len(), 1, "one map announce");
        assert_eq!(subs[0].0, RIGHT_RING);
        assert!(accelring_daemon::packing::parse_map(&subs[0].1).is_some());
        let out = e.on_delivery(
            LEFT_RING,
            &delivery(
                1,
                0,
                1,
                accelring_daemon::packing::tick_payload(),
                Service::Agreed,
            ),
        );
        assert!(out.iter().any(|o| matches!(
            o,
            MultiOutput::Local {
                event: ClientEvent::Config {
                    transitional: false,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn map_announce_only_from_lowest_member_on_regular_configs() {
        let members = vec![ParticipantId::new(0), ParticipantId::new(1)];
        // Not the lowest member: stays silent (one announcer per
        // config, not a storm).
        let mut e = engine(1);
        let change = ConfigChange {
            ring_id: accelring_core::RingId::new(ParticipantId::new(0), 1),
            members: members.clone(),
            transitional: false,
        };
        assert!(submit_payloads(&e.on_config_change(RIGHT_RING, &change)).is_empty());
        assert_eq!(e.maps_announced(), 0);
        // Transitional configs carry no announce either.
        let mut e = engine(0);
        let transitional = ConfigChange {
            ring_id: accelring_core::RingId::new(ParticipantId::new(0), 1),
            members: members.clone(),
            transitional: true,
        };
        assert!(submit_payloads(&e.on_config_change(RIGHT_RING, &transitional)).is_empty());
        // A version-0 map is pure hash placement — nothing to say.
        let mut fresh = MultiRingEngine::new(ParticipantId::new(0), ShardMap::new(2), 1);
        assert!(submit_payloads(&fresh.on_config_change(RIGHT_RING, &change)).is_empty());
        // Lowest member, regular config, versioned map: announce.
        let out = e.on_config_change(RIGHT_RING, &change);
        let subs = submit_payloads(&out);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].0, RIGHT_RING);
        let msg = accelring_daemon::packing::parse_map(&subs[0].1).expect("a map announce");
        assert_eq!(msg.version, e.shards().version());
        assert_eq!(e.maps_announced(), 1);
    }

    #[test]
    fn stale_observer_converges_through_a_delivered_map_announce() {
        // A daemon that slept through migrations restarts from the
        // initial map; a peer's TAG_MAP announce ordered on the ring
        // brings it to the live placement — and a replayed announce
        // is a no-op.
        let mut e = engine(1);
        assert_eq!(e.ring_of("right"), RIGHT_RING);
        let live = MapMsg {
            version: e.shards().version() + 10,
            rings: 2,
            sender: 0,
            retired: Vec::new(),
            overrides: vec![("left".to_string(), 0), ("right".to_string(), 0)],
        };
        let payload = packing::map_payload(&live);
        let out = e.on_delivery(
            RIGHT_RING,
            &delivery(1, 0, 0, payload.clone(), Service::Agreed),
        );
        assert!(
            messages(&out).is_empty(),
            "a map announce is not client-visible"
        );
        assert_eq!(e.shards().version(), live.version);
        assert_eq!(e.ring_of("right"), LEFT_RING, "stale placement healed");
        assert_eq!(e.maps_adopted(), 1);
        e.on_delivery(RIGHT_RING, &delivery(2, 0, 1, payload, Service::Agreed));
        assert_eq!(e.maps_adopted(), 1, "replay must not re-adopt");
    }

    #[test]
    fn rebalance_moves_groups_and_replays_joins() {
        let mut e = engine(0);
        for out in e.client_join("c0", "right").unwrap() {
            if let MultiOutput::Submit {
                ring,
                payload,
                service,
            } = out
            {
                e.on_delivery(ring, &delivery(1, 0, 0, payload, service));
            }
        }
        // Ring 1 dies; "right" must move to ring 0 and c0's join replay
        // must target ring 0.
        let (moves, out) = e.apply_rebalance(&[LEFT_RING]);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].group, "right");
        assert_eq!(moves[0].to, LEFT_RING);
        assert_eq!(e.ring_of("right"), LEFT_RING);
        let subs = submit_payloads(&out);
        assert_eq!(subs.len(), 1, "one replayed join");
        assert_eq!(subs[0].0, LEFT_RING);
        // The retired ring no longer gates the merge.
        let m = e
            .client_multicast("c0", &["right"], Bytes::from_static(b"x"), Service::Agreed)
            .unwrap();
        let (ring, payload, service) = submit_payloads(&m)[0].clone();
        // Deliver the replayed join first so membership exists on ring 0.
        let (jr, jp, js) = subs[0].clone();
        e.on_delivery(jr, &delivery(1, 0, 1, jp, js));
        let out = e.on_delivery(ring, &delivery(2, 0, 2, payload, service));
        assert_eq!(messages(&out), vec!["x"]);
    }

    fn mig_shards() -> ShardMap {
        let mut shards = ShardMap::new(2);
        shards.assign("hot", LEFT_RING);
        shards.assign("cold", RIGHT_RING);
        shards
    }

    /// Two daemons (pids 0 and 1), one local client each, over two
    /// shared ring streams. Submissions are ordered in emission order —
    /// the harness *is* the ring — and deliveries feed back into both
    /// engines until quiescent, so the full migration handshake
    /// (Start → join replays → Ready → Commit → Open → held flush) runs
    /// exactly as it would across a live deployment.
    struct Net {
        engines: Vec<MultiRingEngine>,
        streams: Vec<Vec<Delivery>>,
        cursors: Vec<[usize; 2]>,
        /// `(client, message)` per daemon, in merged delivery order.
        got: Vec<Vec<(String, String)>>,
        /// Submissions to this ring vanish (a partitioned target).
        blackhole: Option<RingIdx>,
    }

    impl Net {
        fn new() -> Net {
            let mut engines: Vec<MultiRingEngine> = (0..2)
                .map(|pid| MultiRingEngine::new(ParticipantId::new(pid), mig_shards(), 1))
                .collect();
            engines[0].client_connect("a").unwrap();
            engines[1].client_connect("b").unwrap();
            Net {
                engines,
                streams: vec![Vec::new(), Vec::new()],
                cursors: vec![[0; 2]; 2],
                got: vec![Vec::new(); 2],
                blackhole: None,
            }
        }

        fn apply(&mut self, daemon: usize, outs: Vec<MultiOutput>) {
            for o in outs {
                match o {
                    MultiOutput::Submit {
                        ring,
                        payload,
                        service,
                    } => {
                        if Some(ring) == self.blackhole {
                            continue;
                        }
                        let s = &mut self.streams[ring.as_usize()];
                        let seq = s.len() as u64 + 1;
                        s.push(delivery(seq, daemon as u16, seq, payload, service));
                    }
                    MultiOutput::Local {
                        client,
                        event: ClientEvent::Message { payload, .. },
                    } => {
                        self.got[daemon]
                            .push((client, String::from_utf8_lossy(&payload).into_owned()));
                    }
                    MultiOutput::Local { .. } => {}
                }
            }
        }

        fn drain(&mut self) {
            loop {
                let mut progressed = false;
                for d in 0..self.engines.len() {
                    for r in 0..2 {
                        while self.cursors[d][r] < self.streams[r].len() {
                            let del = self.streams[r][self.cursors[d][r]].clone();
                            self.cursors[d][r] += 1;
                            let outs = self.engines[d].on_delivery(RingIdx::new(r as u16), &del);
                            self.apply(d, outs);
                            progressed = true;
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }

        fn finish(&mut self) {
            for d in 0..self.engines.len() {
                let outs = self.engines[d].finish();
                self.apply(d, outs);
            }
        }

        fn messages_of(&self, daemon: usize) -> Vec<String> {
            self.got[daemon].iter().map(|(_, m)| m.clone()).collect()
        }
    }

    /// Runs the canonical migration scenario to completion and returns
    /// the harness (streams hold the full per-ring histories).
    fn committed_migration_net() -> Net {
        let mut net = Net::new();
        let outs = net.engines[0].client_join("a", "hot").unwrap();
        net.apply(0, outs);
        let outs = net.engines[1].client_join("b", "hot").unwrap();
        net.apply(1, outs);
        net.drain();
        for (i, m) in ["m1", "m2"].iter().enumerate() {
            let outs = net.engines[0]
                .client_multicast_sequenced(
                    "a",
                    &["hot"],
                    Bytes::from(m.to_string()),
                    Service::Agreed,
                    i as u64 + 1,
                )
                .unwrap();
            net.apply(0, outs);
        }
        net.drain();
        // Operator triggers the migration from daemon 0; a racing send
        // is submitted before daemon 0 processes the fence, so it is
        // ordered on the source *behind* the fence and must be
        // recovered, not lost and not duplicated.
        let outs = net.engines[0].begin_migration("hot", RIGHT_RING).unwrap();
        net.apply(0, outs);
        let outs = net.engines[0]
            .client_multicast_sequenced(
                "a",
                &["hot"],
                Bytes::from_static(b"m3"),
                Service::Agreed,
                3,
            )
            .unwrap();
        net.apply(0, outs);
        net.drain();
        // Post-commit traffic routes to the new home.
        let outs = net.engines[1]
            .client_multicast_sequenced(
                "b",
                &["hot"],
                Bytes::from_static(b"m4"),
                Service::Agreed,
                1,
            )
            .unwrap();
        assert!(
            matches!(
                outs[0],
                MultiOutput::Submit {
                    ring: RIGHT_RING,
                    ..
                }
            ),
            "post-commit sends must route to the target ring"
        );
        net.apply(1, outs);
        net.drain();
        net.finish();
        net
    }

    #[test]
    fn migration_commits_with_zero_gap_and_exactly_once_delivery() {
        let net = committed_migration_net();
        for e in &net.engines {
            assert_eq!(e.ring_of("hot"), RIGHT_RING, "pin must move to target");
            let c = e.migration_counters();
            assert_eq!((c.started, c.committed, c.aborted), (1, 1, 0));
            assert!(e.is_frozen(LEFT_RING, "hot"), "source stays fenced");
            assert!(!e.is_frozen(RIGHT_RING, "hot"));
            assert!(e.migrations_in_flight().is_empty());
        }
        assert_eq!(net.engines[0].migration_counters().redirected, 1);
        assert_eq!(net.engines[1].migration_counters().redirected, 0);
        // Gap-free, overlap-free, identically ordered at both members.
        let want = vec!["m1", "m2", "m3", "m4"];
        assert_eq!(net.messages_of(0), want, "daemon 0 (client a)");
        assert_eq!(net.messages_of(1), want, "daemon 1 (client b)");
    }

    #[test]
    fn migration_handoff_is_arrival_interleaving_invariant() {
        // Replay the recorded per-ring histories of a committed
        // migration into fresh observers under skewed arrival orders —
        // including target-ring-first, which lands Ready and Open before
        // the Start fence — and demand the same merged order every time.
        let net = committed_migration_net();
        let streams = net.streams.clone();
        let replay = |order: &[usize]| -> Vec<String> {
            let mut e = MultiRingEngine::new(ParticipantId::new(0), mig_shards(), 1);
            e.client_connect("a").unwrap();
            let _ = e.client_join("a", "hot");
            let mut idx = [0usize; 2];
            let mut got = Vec::new();
            let mut deliver = |e: &mut MultiRingEngine, ring: usize, idx: &mut [usize; 2]| {
                if idx[ring] < streams[ring].len() {
                    let d = streams[ring][idx[ring]].clone();
                    idx[ring] += 1;
                    got_extend(&mut got, &e.on_delivery(RingIdx::new(ring as u16), &d));
                }
            };
            for &ring in order {
                deliver(&mut e, ring, &mut idx);
            }
            for ring in 0..2 {
                while idx[ring] < streams[ring].len() {
                    deliver(&mut e, ring, &mut idx);
                }
            }
            got_extend(&mut got, &e.finish());
            got
        };
        let n = streams[0].len() + streams[1].len();
        let source_first: Vec<usize> = vec![0; n];
        let target_first: Vec<usize> = vec![1; n];
        let alternating: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let a = replay(&source_first);
        let b = replay(&target_first);
        let c = replay(&alternating);
        assert_eq!(a, vec!["m1", "m2", "m3", "m4"]);
        assert_eq!(a, b, "target-ring-first arrival changed the order");
        assert_eq!(a, c, "alternating arrival changed the order");
    }

    fn got_extend(got: &mut Vec<String>, outs: &[MultiOutput]) {
        got.extend(messages(outs));
    }

    #[test]
    fn partitioned_target_aborts_cleanly_and_source_keeps_serving() {
        let mut net = Net::new();
        let outs = net.engines[0].client_join("a", "hot").unwrap();
        net.apply(0, outs);
        let outs = net.engines[1].client_join("b", "hot").unwrap();
        net.apply(1, outs);
        net.drain();
        let outs = net.engines[0]
            .client_multicast_sequenced(
                "a",
                &["hot"],
                Bytes::from_static(b"m1"),
                Service::Agreed,
                1,
            )
            .unwrap();
        net.apply(0, outs);
        net.drain();
        // The target ring partitions away: nothing submitted to it
        // arrives, so the readiness barrier can never be met.
        net.blackhole = Some(RIGHT_RING);
        let outs = net.engines[0].begin_migration("hot", RIGHT_RING).unwrap();
        net.apply(0, outs);
        net.drain();
        for e in &net.engines {
            assert!(e.is_frozen(LEFT_RING, "hot"), "fence must be up");
            assert_eq!(e.migrations_in_flight().len(), 1);
            assert_eq!(e.migration_counters().committed, 0);
        }
        // A send during the fence window is held, not submitted.
        let outs = net.engines[0]
            .client_multicast_sequenced(
                "a",
                &["hot"],
                Bytes::from_static(b"m2"),
                Service::Agreed,
                2,
            )
            .unwrap();
        assert!(outs.is_empty(), "fenced send must be held");
        assert_eq!(net.engines[0].migration_counters().redirected, 1);
        // The runtime's abort escalation fires; the Abort is ordered on
        // the (still healthy) source ring.
        let outs = net.engines[0].abort_migration("hot");
        net.apply(0, outs);
        net.drain();
        net.finish();
        for e in &net.engines {
            assert!(!e.is_frozen(LEFT_RING, "hot"), "abort must lift the fence");
            assert!(e.migrations_in_flight().is_empty());
            let c = e.migration_counters();
            assert_eq!((c.started, c.committed, c.aborted), (1, 0, 1));
            assert_eq!(e.ring_of("hot"), LEFT_RING, "source keeps the group");
        }
        // The held send flushed back to the source: nothing lost.
        assert_eq!(net.messages_of(0), vec!["m1", "m2"]);
        assert_eq!(net.messages_of(1), vec!["m1", "m2"]);
    }

    #[test]
    fn first_decision_ordered_on_the_source_wins() {
        use accelring_daemon::packing::{mig_payload, MigMsg, MigOp};
        let mig = |op| {
            mig_payload(&MigMsg {
                op,
                group: "hot".to_string(),
                from: 0,
                to: 1,
                sender: 0,
            })
        };
        let run = |decisions: [MigOp; 2]| {
            let mut e = MultiRingEngine::new(ParticipantId::new(0), mig_shards(), 1);
            e.client_connect("a").unwrap();
            e.on_delivery(
                LEFT_RING,
                &delivery(1, 0, 1, mig(MigOp::Start), Service::Agreed),
            );
            assert!(e.is_frozen(LEFT_RING, "hot"));
            for (i, d) in decisions.into_iter().enumerate() {
                e.on_delivery(
                    LEFT_RING,
                    &delivery(2 + i as u64, 0, 2 + i as u64, mig(d), Service::Agreed),
                );
            }
            e.migration_counters()
        };
        // Commit ordered first: the late abort is ignored.
        let c = run([MigOp::Commit, MigOp::Abort]);
        assert_eq!((c.committed, c.aborted), (1, 0));
        // Abort ordered first: the late commit is ignored.
        let c = run([MigOp::Abort, MigOp::Commit]);
        assert_eq!((c.committed, c.aborted), (0, 1));
    }

    #[test]
    fn begin_migration_rejects_bad_requests() {
        let mut e = MultiRingEngine::new(ParticipantId::new(0), mig_shards(), 1);
        e.client_connect("a").unwrap();
        // Same ring, nonexistent ring, empty group name.
        assert!(matches!(
            e.begin_migration("hot", LEFT_RING),
            Err(MultiRingError::Migration { .. })
        ));
        assert!(matches!(
            e.begin_migration("hot", RingIdx::new(7)),
            Err(MultiRingError::Migration { .. })
        ));
        assert!(matches!(
            e.begin_migration("", RIGHT_RING),
            Err(MultiRingError::Migration { .. })
        ));
        // In-flight duplicate.
        use accelring_daemon::packing::{mig_payload, MigMsg, MigOp};
        let start = mig_payload(&MigMsg {
            op: MigOp::Start,
            group: "hot".to_string(),
            from: 0,
            to: 1,
            sender: 0,
        });
        e.on_delivery(LEFT_RING, &delivery(1, 0, 1, start, Service::Agreed));
        assert!(matches!(
            e.begin_migration("hot", RIGHT_RING),
            Err(MultiRingError::Migration { .. })
        ));
    }

    #[test]
    fn source_ring_death_cancels_the_migration_locally() {
        let mut net = Net::new();
        let outs = net.engines[0].client_join("a", "hot").unwrap();
        net.apply(0, outs);
        net.drain();
        net.blackhole = Some(RIGHT_RING);
        let outs = net.engines[0].begin_migration("hot", RIGHT_RING).unwrap();
        net.apply(0, outs);
        net.drain();
        assert_eq!(net.engines[0].migrations_in_flight().len(), 1);
        // The *source* ring dies mid-migration: the decision stream is
        // gone, so the migration cancels and the group reshards onto the
        // survivors.
        let (_, _outs) = net.engines[0].apply_rebalance(&[RIGHT_RING]);
        assert!(net.engines[0].migrations_in_flight().is_empty());
        assert_eq!(net.engines[0].migration_counters().aborted, 1);
        assert_eq!(net.engines[0].ring_of("hot"), RIGHT_RING);
        assert!(!net.engines[0].is_frozen(LEFT_RING, "hot"));
    }

    #[test]
    fn failed_connect_rolls_back_all_rings() {
        let mut e = engine(0);
        // "c0" exists on every ring; reconnecting must fail and leave
        // the engines consistent.
        assert!(e.client_connect("c0").is_err());
        assert!(e.client_disconnect("c0").is_ok());
        assert!(e.client_connect("c0").is_ok());
    }
}
