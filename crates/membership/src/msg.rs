//! Membership control messages and their wire codec.
//!
//! Control messages share the data socket with ordinary traffic, framed as
//! [`accelring_core::wire::Kind::Opaque`] datagrams with a one-byte
//! sub-kind.

use std::collections::BTreeSet;

use accelring_core::wire::{self, DecodeError};
use accelring_core::{DataMessage, ParticipantId, RingId, Seq};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Per-member state carried by the commit token: what this member can
/// contribute to recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member.
    pub pid: ParticipantId,
    /// The ring it is coming from.
    pub old_ring: RingId,
    /// Its all-received-up-to line in the old ring.
    pub local_aru: Seq,
    /// The highest old-ring sequence number it still holds.
    pub highest_held: Seq,
}

/// The commit token: circulated twice around the forming ring so every
/// member learns every other member's recovery information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitToken {
    /// Identity of the ring being formed.
    pub new_ring: RingId,
    /// Members of the new ring, in ring order.
    pub members: Vec<ParticipantId>,
    /// Recovery info appended by each member during the first rotation.
    pub infos: Vec<MemberInfo>,
    /// Hop counter; the token stops after `2 * members.len() - 1` sends.
    pub hop: u32,
}

impl CommitToken {
    /// Whether every member has contributed its info (second rotation).
    pub fn is_complete(&self) -> bool {
        self.infos.len() == self.members.len()
    }

    /// Recovery info for `pid`, if present.
    pub fn info_of(&self, pid: ParticipantId) -> Option<&MemberInfo> {
        self.infos.iter().find(|i| i.pid == pid)
    }
}

/// Membership control messages (Totem-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// A join message: the sender's current view of who is alive and who
    /// has failed. Consensus on these two sets forms the new membership.
    Join {
        /// Sender of the join.
        sender: ParticipantId,
        /// Processes the sender believes should be in the membership.
        proc_set: BTreeSet<ParticipantId>,
        /// Processes the sender has given up on.
        fail_set: BTreeSet<ParticipantId>,
        /// Highest ring counter the sender has seen, so the new ring id
        /// exceeds every old one.
        ring_counter: u64,
        /// The sender's gather-attempt counter, incremented every time it
        /// re-enters Gather. Lets receivers distinguish a *fresh*
        /// membership attempt from a straggler rebroadcast even when the
        /// proc/fail sets are identical.
        epoch: u64,
    },
    /// The circulating commit token.
    Commit(CommitToken),
    /// An old-ring message flooded during recovery so every transitional
    /// member ends up holding the same set.
    Recovery {
        /// Who flooded it.
        sender: ParticipantId,
        /// The dissolved ring the message belongs to.
        old_ring: RingId,
        /// The original message, stamps intact.
        msg: DataMessage,
    },
    /// Barrier: the sender has finished flooding and is ready to enter the
    /// new ring. Carries the sender's stable claim of what it holds from
    /// its old ring, so peers complete recovery only once they hold the
    /// union — a bare "done" bit would let a member whose flood was lost
    /// deliver the transitional configuration with a hole its partners
    /// filled, violating virtual synchrony.
    RecoveryDone {
        /// Who is done.
        sender: ParticipantId,
        /// The ring being formed.
        new_ring: RingId,
        /// The dissolved ring the sender is recovering from.
        old_ring: RingId,
        /// Old-ring sequence numbers above the recovery floor the sender
        /// held when it entered Recover (fixed for the whole recovery, so
        /// rebroadcasts are idempotent).
        holds: Vec<Seq>,
    },
    /// Periodic beacon multicast by operational daemons so that rings that
    /// partitioned while idle can discover each other and merge. (In
    /// deployed Spread, daemons of separate rings share the IP-multicast
    /// group, so foreign data serves this purpose; the beacon covers idle
    /// rings and unicast fan-out deployments.)
    Presence {
        /// Who is announcing.
        sender: ParticipantId,
        /// The ring the sender currently belongs to.
        ring_id: RingId,
    },
}

impl ControlMessage {
    /// The sender of this control message.
    pub fn sender(&self) -> Option<ParticipantId> {
        match self {
            ControlMessage::Join { sender, .. }
            | ControlMessage::Recovery { sender, .. }
            | ControlMessage::RecoveryDone { sender, .. }
            | ControlMessage::Presence { sender, .. } => Some(*sender),
            ControlMessage::Commit(_) => None,
        }
    }
}

const SUB_JOIN: u8 = 16;
const SUB_COMMIT: u8 = 17;
const SUB_RECOVERY: u8 = 18;
const SUB_RECOVERY_DONE: u8 = 19;
const SUB_PRESENCE: u8 = 20;

fn put_ring_id(buf: &mut BytesMut, ring: RingId) {
    buf.put_u16_le(ring.representative().as_u16());
    buf.put_u64_le(ring.counter());
}

fn get_ring_id(buf: &mut Bytes) -> Result<RingId, DecodeError> {
    if buf.remaining() < 10 {
        return Err(DecodeError::Truncated);
    }
    let rep = ParticipantId::new(buf.get_u16_le());
    Ok(RingId::new(rep, buf.get_u64_le()))
}

fn put_pid_set(buf: &mut BytesMut, set: &BTreeSet<ParticipantId>) {
    buf.put_u16_le(set.len() as u16);
    for p in set {
        buf.put_u16_le(p.as_u16());
    }
}

fn get_pid_set(buf: &mut Bytes) -> Result<BTreeSet<ParticipantId>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < n * 2 {
        return Err(DecodeError::Truncated);
    }
    Ok((0..n)
        .map(|_| ParticipantId::new(buf.get_u16_le()))
        .collect())
}

/// Encodes a control message into a self-describing datagram (shares the
/// standard envelope, kind [`wire::Kind::Opaque`]).
pub fn encode_control(msg: &ControlMessage) -> Bytes {
    let mut body = BytesMut::with_capacity(256);
    match msg {
        ControlMessage::Join {
            sender,
            proc_set,
            fail_set,
            ring_counter,
            epoch,
        } => {
            body.put_u8(SUB_JOIN);
            body.put_u16_le(sender.as_u16());
            put_pid_set(&mut body, proc_set);
            put_pid_set(&mut body, fail_set);
            body.put_u64_le(*ring_counter);
            body.put_u64_le(*epoch);
        }
        ControlMessage::Commit(ct) => {
            body.put_u8(SUB_COMMIT);
            put_ring_id(&mut body, ct.new_ring);
            body.put_u16_le(ct.members.len() as u16);
            for m in &ct.members {
                body.put_u16_le(m.as_u16());
            }
            body.put_u16_le(ct.infos.len() as u16);
            for i in &ct.infos {
                body.put_u16_le(i.pid.as_u16());
                put_ring_id(&mut body, i.old_ring);
                body.put_u64_le(i.local_aru.as_u64());
                body.put_u64_le(i.highest_held.as_u64());
            }
            body.put_u32_le(ct.hop);
        }
        ControlMessage::Recovery {
            sender,
            old_ring,
            msg,
        } => {
            body.put_u8(SUB_RECOVERY);
            body.put_u16_le(sender.as_u16());
            put_ring_id(&mut body, *old_ring);
            let inner = wire::encode_data(msg);
            body.put_u32_le(inner.len() as u32);
            body.put_slice(&inner);
        }
        ControlMessage::RecoveryDone {
            sender,
            new_ring,
            old_ring,
            holds,
        } => {
            body.put_u8(SUB_RECOVERY_DONE);
            body.put_u16_le(sender.as_u16());
            put_ring_id(&mut body, *new_ring);
            put_ring_id(&mut body, *old_ring);
            body.put_u32_le(holds.len() as u32);
            for s in holds {
                body.put_u64_le(s.as_u64());
            }
        }
        ControlMessage::Presence { sender, ring_id } => {
            body.put_u8(SUB_PRESENCE);
            body.put_u16_le(sender.as_u16());
            put_ring_id(&mut body, *ring_id);
        }
    }
    wire::encode_opaque(&body)
}

/// Decodes a control message from an opaque-framed datagram whose envelope
/// has already been consumed by [`wire::decode_kind`].
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode_control(buf: &mut Bytes) -> Result<ControlMessage, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    match buf.get_u8() {
        SUB_JOIN => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let sender = ParticipantId::new(buf.get_u16_le());
            let proc_set = get_pid_set(buf)?;
            let fail_set = get_pid_set(buf)?;
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            Ok(ControlMessage::Join {
                sender,
                proc_set,
                fail_set,
                ring_counter: buf.get_u64_le(),
                epoch: buf.get_u64_le(),
            })
        }
        SUB_COMMIT => {
            let new_ring = get_ring_id(buf)?;
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u16_le() as usize;
            if buf.remaining() < n * 2 + 2 {
                return Err(DecodeError::Truncated);
            }
            let members = (0..n)
                .map(|_| ParticipantId::new(buf.get_u16_le()))
                .collect();
            let k = buf.get_u16_le() as usize;
            let mut infos = Vec::with_capacity(k);
            for _ in 0..k {
                if buf.remaining() < 2 {
                    return Err(DecodeError::Truncated);
                }
                let pid = ParticipantId::new(buf.get_u16_le());
                let old_ring = get_ring_id(buf)?;
                if buf.remaining() < 16 {
                    return Err(DecodeError::Truncated);
                }
                infos.push(MemberInfo {
                    pid,
                    old_ring,
                    local_aru: Seq::new(buf.get_u64_le()),
                    highest_held: Seq::new(buf.get_u64_le()),
                });
            }
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Ok(ControlMessage::Commit(CommitToken {
                new_ring,
                members,
                infos,
                hop: buf.get_u32_le(),
            }))
        }
        SUB_RECOVERY => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let sender = ParticipantId::new(buf.get_u16_le());
            let old_ring = get_ring_id(buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DecodeError::BadLength {
                    declared: len,
                    available: buf.remaining(),
                });
            }
            let mut inner = buf.split_to(len);
            let msg = wire::decode_data(&mut inner)?;
            Ok(ControlMessage::Recovery {
                sender,
                old_ring,
                msg,
            })
        }
        SUB_RECOVERY_DONE => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let sender = ParticipantId::new(buf.get_u16_le());
            let new_ring = get_ring_id(buf)?;
            let old_ring = get_ring_id(buf)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n * 8 {
                return Err(DecodeError::Truncated);
            }
            let holds = (0..n).map(|_| Seq::new(buf.get_u64_le())).collect();
            Ok(ControlMessage::RecoveryDone {
                sender,
                new_ring,
                old_ring,
                holds,
            })
        }
        SUB_PRESENCE => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let sender = ParticipantId::new(buf.get_u16_le());
            let ring_id = get_ring_id(buf)?;
            Ok(ControlMessage::Presence { sender, ring_id })
        }
        other => Err(DecodeError::BadKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelring_core::{Round, Service};

    fn pid(i: u16) -> ParticipantId {
        ParticipantId::new(i)
    }

    fn sample_commit() -> CommitToken {
        CommitToken {
            new_ring: RingId::new(pid(0), 9),
            members: vec![pid(0), pid(2), pid(5)],
            infos: vec![MemberInfo {
                pid: pid(0),
                old_ring: RingId::new(pid(0), 5),
                local_aru: Seq::new(100),
                highest_held: Seq::new(120),
            }],
            hop: 3,
        }
    }

    fn roundtrip(msg: &ControlMessage) -> ControlMessage {
        let mut framed = encode_control(msg);
        assert_eq!(wire::decode_kind(&mut framed).unwrap(), wire::Kind::Opaque);
        decode_control(&mut framed).unwrap()
    }

    #[test]
    fn join_roundtrip() {
        let msg = ControlMessage::Join {
            sender: pid(3),
            proc_set: [pid(0), pid(1), pid(3)].into_iter().collect(),
            fail_set: [pid(7)].into_iter().collect(),
            ring_counter: 42,
            epoch: 9,
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn join_with_empty_sets_roundtrip() {
        let msg = ControlMessage::Join {
            sender: pid(3),
            proc_set: BTreeSet::new(),
            fail_set: BTreeSet::new(),
            ring_counter: 0,
            epoch: 0,
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn commit_roundtrip() {
        let msg = ControlMessage::Commit(sample_commit());
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn recovery_roundtrip() {
        let msg = ControlMessage::Recovery {
            sender: pid(2),
            old_ring: RingId::new(pid(0), 5),
            msg: DataMessage {
                ring_id: RingId::new(pid(0), 5),
                seq: Seq::new(17),
                pid: pid(4),
                round: Round::new(3),
                service: Service::Safe,
                post_token: true,
                retransmission: false,
                payload: Bytes::from_static(b"old data"),
            },
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn recovery_done_roundtrip() {
        let msg = ControlMessage::RecoveryDone {
            sender: pid(6),
            new_ring: RingId::new(pid(0), 13),
            old_ring: RingId::new(pid(2), 9),
            holds: vec![Seq::new(40), Seq::new(41), Seq::new(45)],
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn recovery_done_empty_holds_roundtrip() {
        let msg = ControlMessage::RecoveryDone {
            sender: pid(1),
            new_ring: RingId::new(pid(0), 13),
            old_ring: RingId::new(pid(0), 9),
            holds: Vec::new(),
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn truncation_rejected() {
        let msg = ControlMessage::Commit(sample_commit());
        let mut full = encode_control(&msg);
        let _ = wire::decode_kind(&mut full).unwrap();
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_control(&mut b).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn commit_token_helpers() {
        let ct = sample_commit();
        assert!(!ct.is_complete());
        assert!(ct.info_of(pid(0)).is_some());
        assert!(ct.info_of(pid(2)).is_none());
    }

    #[test]
    fn presence_roundtrip() {
        let msg = ControlMessage::Presence {
            sender: pid(4),
            ring_id: RingId::new(pid(0), 20),
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn senders() {
        assert_eq!(
            ControlMessage::RecoveryDone {
                sender: pid(6),
                new_ring: RingId::default(),
                old_ring: RingId::default(),
                holds: Vec::new(),
            }
            .sender(),
            Some(pid(6))
        );
        assert_eq!(ControlMessage::Commit(sample_commit()).sender(), None);
    }
}
