//! The Totem-style membership state machine with Extended Virtual Synchrony
//! configuration delivery.
//!
//! [`MembershipDaemon`] wraps an ordering [`Participant`] and takes it
//! through the four Totem membership states:
//!
//! * **Operational** — the ordering protocol runs; token loss and foreign
//!   messages are the failure detectors.
//! * **Gather** — exchange join messages until consensus on a
//!   (processes, failed) pair.
//! * **Commit** — circulate the commit token twice around the forming ring
//!   so every member learns every member's recovery information.
//! * **Recover** — flood messages of dissolving rings so every transitional
//!   member holds the same set, deliver them in the transitional
//!   configuration, then install the new ring.
//!
//! Like the ordering protocol, the daemon is sans-IO: inputs are messages
//! and timer expiries (with an explicit `now` in nanoseconds), outputs are
//! sends, deliveries, and configuration changes.

use std::collections::{BTreeMap, BTreeSet};

use accelring_core::{
    Action, DataMessage, Delivery, Participant, ParticipantId, ProtocolConfig, QueueFullError,
    RecoverySnapshot, Ring, RingId, Seq, Service, Token,
};
use bytes::Bytes;

use crate::config::MembershipConfig;
use crate::msg::{CommitToken, ControlMessage, MemberInfo};

/// Which membership state the daemon is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// Ordering protocol active.
    Operational,
    /// Exchanging join messages.
    Gather,
    /// Commit token circulating.
    Commit,
    /// Exchanging old-ring messages before installing the new ring.
    Recover,
}

/// Timers the daemon arms; the runtime fires them back via
/// [`Input::Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerKind {
    /// No token received for too long (Operational).
    TokenLoss,
    /// Retransmit the last sent token (Operational).
    TokenRetransmit,
    /// Rebroadcast the join message (Gather).
    JoinRebroadcast,
    /// Give up on silent processes (Gather).
    Consensus,
    /// Commit token lost (Commit).
    Commit,
    /// Recovery barrier incomplete (Recover).
    Recovery,
    /// Rebroadcast recovery flood and barrier (Recover).
    RecoveryRebroadcast,
    /// Broadcast the presence beacon (Operational).
    Presence,
    /// The join sets have been stable long enough to evaluate consensus
    /// (Gather).
    Settle,
}

/// An input to the daemon.
#[derive(Debug, Clone)]
pub enum Input {
    /// A token received on the token socket.
    Token(Token),
    /// A data message received on the data socket.
    Data(DataMessage),
    /// A membership control message.
    Control(ControlMessage),
    /// A timer previously armed by the daemon has expired.
    Timer(TimerKind),
}

/// An effect the runtime must carry out.
#[derive(Debug, Clone)]
pub enum Output {
    /// Multicast a data message to the ring.
    Multicast(DataMessage),
    /// Send the token to this participant.
    SendToken {
        /// Destination (the ring successor, or ourselves on a singleton
        /// ring).
        to: ParticipantId,
        /// The token.
        token: Token,
    },
    /// Deliver a message to the application.
    Deliver(Delivery),
    /// Send a control message; `to: None` means broadcast.
    SendControl {
        /// Unicast destination, or `None` for broadcast.
        to: Option<ParticipantId>,
        /// The control message.
        msg: ControlMessage,
    },
    /// Deliver a configuration change to the application (EVS).
    ConfigChange(ConfigChange),
}

/// An EVS configuration-change notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigChange {
    /// Id of the configuration (for a transitional configuration, the id of
    /// the dissolving ring it closes).
    pub ring_id: RingId,
    /// Members of the configuration.
    pub members: Vec<ParticipantId>,
    /// Whether this is a transitional configuration.
    pub transitional: bool,
}

/// Counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipStats {
    /// Times the daemon entered Gather.
    pub gathers: u64,
    /// Regular configurations installed.
    pub rings_formed: u64,
    /// Tokens retransmitted by the token-retransmit timer.
    pub tokens_retransmitted: u64,
    /// New-ring messages stashed while not yet operational.
    pub stashed: u64,
}

#[derive(Debug, Clone)]
enum Stashed {
    Token(Token),
    Data(DataMessage),
}

#[derive(Debug)]
struct PendingRecovery {
    new_ring: Ring,
    floor: Seq,
    collected: BTreeMap<Seq, DataMessage>,
    done: BTreeSet<ParticipantId>,
    peers: Vec<ParticipantId>,
    /// Seqs above the floor we held when recovery began — advertised on
    /// our RecoveryDone so peers know what equality requires. Frozen at
    /// entry so rebroadcasts are idempotent.
    my_holds: Vec<Seq>,
    /// Union of the holds advertised by same-old-ring peers' barriers.
    /// Recovery may only complete once every one of these is in
    /// `collected` or in our own snapshot; a bare done-bit barrier would
    /// let a member whose flood packets were lost install the transitional
    /// configuration with a hole, breaking virtual synchrony.
    needed: BTreeSet<Seq>,
}

const MAX_STASH: usize = 4096;
const MAX_EARLY_FLOODS: usize = 65536;

/// A complete group-communication endpoint: ordering protocol plus
/// membership.
///
/// # Examples
///
/// A single node forms a singleton ring after its consensus timeout:
///
/// ```
/// use accelring_membership::{Input, MembershipConfig, MembershipDaemon, Output, StateKind, TimerKind};
/// use accelring_core::{ParticipantId, ProtocolConfig};
///
/// let mut d = MembershipDaemon::new(
///     ParticipantId::new(0),
///     ProtocolConfig::default(),
///     MembershipConfig::for_simulation(),
/// );
/// let mut out = Vec::new();
/// d.start(0, &mut out);
/// assert_eq!(d.state(), StateKind::Gather);
///
/// let cfg = MembershipConfig::for_simulation();
/// d.handle(cfg.gather_settle, Input::Timer(TimerKind::Settle), &mut out);
/// d.handle(cfg.consensus_timeout, Input::Timer(TimerKind::Consensus), &mut out);
/// assert_eq!(d.state(), StateKind::Operational);
/// assert!(out.iter().any(|o| matches!(o, Output::ConfigChange(c) if !c.transitional)));
/// ```
#[derive(Debug)]
pub struct MembershipDaemon {
    pid: ParticipantId,
    proto_cfg: ProtocolConfig,
    cfg: MembershipConfig,
    state: StateKind,
    participant: Participant,
    started: bool,
    timers: BTreeMap<TimerKind, u64>,
    last_sent_token: Option<Token>,
    // Gather state.
    my_proc: BTreeSet<ParticipantId>,
    my_fail: BTreeSet<ParticipantId>,
    joins: BTreeMap<ParticipantId, (BTreeSet<ParticipantId>, BTreeSet<ParticipantId>)>,
    max_ring_counter: u64,
    consensus_timeout_fired: bool,
    /// Whether the gather-settle period has elapsed (consensus may only be
    /// evaluated afterwards, so in-flight join chatter cannot race a
    /// forming ring).
    settled: bool,
    // Snapshot of the dissolving ring.
    snapshot: Option<RecoverySnapshot>,
    pending: Option<PendingRecovery>,
    stash: Vec<Stashed>,
    /// RecoveryDone barriers that arrived before we entered Recover
    /// ourselves (e.g. while the commit token was still on its way to us),
    /// keyed by the forming ring; each sender maps to the old ring it is
    /// recovering from and the seqs it advertised holding.
    early_dones: BTreeMap<RingId, BTreeMap<ParticipantId, (RingId, Vec<Seq>)>>,
    /// Recovery floods that arrived before we entered Recover.
    early_floods: Vec<(RingId, DataMessage)>,
    /// Our gather-attempt counter, carried on our joins.
    gather_epoch: u64,
    /// The last join content (epoch, proc set, fail set) seen from each
    /// peer, across state changes. Outside Gather, a join identical to the
    /// last one seen from its sender is stale chatter from a straggler and
    /// must not restart membership formation (otherwise in-flight join
    /// rebroadcasts knock committed nodes back to Gather in an endless
    /// storm). The epoch distinguishes a fresh attempt whose sets happen
    /// to repeat an old epoch's sets.
    seen_joins: BTreeMap<ParticipantId, (u64, BTreeSet<ParticipantId>, BTreeSet<ParticipantId>)>,
    stats: MembershipStats,
}

impl MembershipDaemon {
    /// Creates a daemon that is not yet participating; call
    /// [`MembershipDaemon::start`] to begin gathering.
    pub fn new(
        pid: ParticipantId,
        proto_cfg: ProtocolConfig,
        cfg: MembershipConfig,
    ) -> MembershipDaemon {
        let ring = Ring::new(RingId::new(pid, 0), vec![pid]).expect("singleton ring");
        let participant =
            Participant::new(pid, ring, proto_cfg).expect("member of its own singleton ring");
        MembershipDaemon {
            pid,
            proto_cfg,
            cfg,
            state: StateKind::Gather,
            participant,
            started: false,
            timers: BTreeMap::new(),
            last_sent_token: None,
            my_proc: BTreeSet::new(),
            my_fail: BTreeSet::new(),
            joins: BTreeMap::new(),
            max_ring_counter: 0,
            consensus_timeout_fired: false,
            settled: false,
            snapshot: None,
            pending: None,
            stash: Vec::new(),
            early_dones: BTreeMap::new(),
            early_floods: Vec::new(),
            gather_epoch: 0,
            seen_joins: BTreeMap::new(),
            stats: MembershipStats::default(),
        }
    }

    /// This daemon's participant id.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// Current membership state.
    pub fn state(&self) -> StateKind {
        self.state
    }

    /// The ring currently installed in the ordering participant (the last
    /// regular configuration).
    pub fn ring(&self) -> &Ring {
        self.participant.ring()
    }

    /// The wrapped ordering participant (read-only).
    pub fn participant(&self) -> &Participant {
        &self.participant
    }

    /// Membership counters.
    pub fn stats(&self) -> &MembershipStats {
        &self.stats
    }

    /// The protocol configuration in force.
    pub fn protocol_config(&self) -> &ProtocolConfig {
        &self.proto_cfg
    }

    /// The highest ring counter this daemon has used or observed. Totem
    /// stores this on stable storage so that a recovered daemon never
    /// reuses a ring id (EVS requires configuration identifiers to be
    /// unique); a runtime restarting a daemon should persist this value
    /// and hand it back via [`MembershipDaemon::restore_ring_counter`].
    pub fn max_ring_counter(&self) -> u64 {
        self.max_ring_counter
    }

    /// Restores the stable-storage ring counter after a restart (see
    /// [`MembershipDaemon::max_ring_counter`]). Only ever raises the
    /// counter.
    pub fn restore_ring_counter(&mut self, counter: u64) {
        self.max_ring_counter = self.max_ring_counter.max(counter);
    }

    /// Whether a waiting token should be read before waiting data (Section
    /// III-D of the paper); runtimes use this to order their socket reads.
    pub fn token_has_priority(&self) -> bool {
        self.participant.token_has_priority()
    }

    /// The gather state (proc set, fail set, join senders heard), for
    /// observability and debugging.
    pub fn gather_view(&self) -> (Vec<ParticipantId>, Vec<ParticipantId>, Vec<ParticipantId>) {
        (
            self.my_proc.iter().copied().collect(),
            self.my_fail.iter().copied().collect(),
            self.joins.keys().copied().collect(),
        )
    }

    /// The earliest armed timer, if any: `(deadline_ns, kind)`. The runtime
    /// should call [`MembershipDaemon::handle`] with [`Input::Timer`] when
    /// the deadline passes.
    pub fn next_timer(&self) -> Option<(u64, TimerKind)> {
        self.timers.iter().map(|(&k, &d)| (d, k)).min()
    }

    /// Queues an application message; it is multicast once the daemon is
    /// operational and the token allows, surviving configuration changes.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the send queue is at capacity.
    pub fn submit(&mut self, payload: Bytes, service: Service) -> Result<(), QueueFullError> {
        self.participant.submit(payload, service)
    }

    /// Begins participating: enters Gather and broadcasts a join.
    pub fn start(&mut self, now: u64, out: &mut Vec<Output>) {
        self.started = true;
        self.shift_to_gather(now, out);
    }

    /// Announces a clean departure from the ring.
    ///
    /// Broadcasts a join message that lists this process in its own fail
    /// set. By Totem's reciprocity rule peers cannot keep a processor that
    /// has failed them, so every receiver immediately fails the sender and
    /// regathers — the survivors reform after one gather-settle plus
    /// consensus round instead of waiting out the full token-loss timeout.
    /// No new control-message kind is needed; the departure rides the
    /// ordinary join exchange.
    ///
    /// Only meaningful while Operational (a daemon mid-formation just
    /// exits and lets the exchange converge without it); a no-op in any
    /// other state. The caller should flush the outputs and then stop
    /// feeding the daemon: it is left in a departed state and must not be
    /// reused.
    pub fn announce_leave(&mut self, out: &mut Vec<Output>) {
        if !self.started || self.state != StateKind::Operational {
            return;
        }
        self.gather_epoch += 1;
        self.max_ring_counter = self
            .max_ring_counter
            .max(self.participant.ring().id().counter());
        let mut proc_set: BTreeSet<ParticipantId> =
            self.participant.ring().members().iter().copied().collect();
        proc_set.insert(self.pid);
        let mut fail_set = BTreeSet::new();
        fail_set.insert(self.pid);
        out.push(Output::SendControl {
            to: None,
            msg: ControlMessage::Join {
                sender: self.pid,
                proc_set,
                fail_set,
                ring_counter: self.max_ring_counter,
                epoch: self.gather_epoch,
            },
        });
    }

    /// Processes one input at time `now` (nanoseconds, same clock as the
    /// timer deadlines), appending effects to `out`.
    pub fn handle(&mut self, now: u64, input: Input, out: &mut Vec<Output>) {
        assert!(self.started, "call start() before handle()");
        match input {
            Input::Timer(kind) => self.handle_timer(now, kind, out),
            Input::Token(token) => self.handle_token(now, token, out),
            Input::Data(msg) => self.handle_data(now, msg, out),
            Input::Control(msg) => self.handle_control(now, msg, out),
        }
    }

    // ----- timers ---------------------------------------------------------

    fn handle_timer(&mut self, now: u64, kind: TimerKind, out: &mut Vec<Output>) {
        match self.timers.get(&kind) {
            Some(&deadline) if deadline <= now => {
                self.timers.remove(&kind);
            }
            _ => return, // stale or cancelled timer
        }
        match (self.state, kind) {
            (StateKind::Operational, TimerKind::TokenLoss) => self.shift_to_gather(now, out),
            (StateKind::Operational, TimerKind::Presence) => {
                out.push(Output::SendControl {
                    to: None,
                    msg: ControlMessage::Presence {
                        sender: self.pid,
                        ring_id: self.participant.ring().id(),
                    },
                });
                self.timers
                    .insert(TimerKind::Presence, now + self.cfg.presence_interval);
            }
            (StateKind::Operational, TimerKind::TokenRetransmit) => {
                if let Some(token) = self.last_sent_token.clone() {
                    self.stats.tokens_retransmitted += 1;
                    let to = self.participant.ring().successor_of(self.pid);
                    out.push(Output::SendToken { to, token });
                    self.timers.insert(
                        TimerKind::TokenRetransmit,
                        now + self.cfg.token_retransmit_timeout,
                    );
                }
            }
            (StateKind::Gather, TimerKind::JoinRebroadcast) => {
                self.broadcast_join(out);
                self.timers
                    .insert(TimerKind::JoinRebroadcast, now + self.cfg.join_interval);
            }
            (StateKind::Gather, TimerKind::Settle) => {
                self.settled = true;
                self.check_consensus(now, out);
            }
            (StateKind::Gather, TimerKind::Consensus) => {
                self.consensus_timeout_fired = true;
                let silent: Vec<ParticipantId> = self
                    .my_proc
                    .iter()
                    .copied()
                    .filter(|p| !self.my_fail.contains(p) && !self.joins.contains_key(p))
                    .collect();
                if !silent.is_empty() {
                    self.my_fail.extend(silent);
                    self.broadcast_join(out);
                }
                self.timers
                    .insert(TimerKind::Consensus, now + self.cfg.consensus_timeout);
                self.check_consensus(now, out);
            }
            (StateKind::Commit, TimerKind::Commit) => self.shift_to_gather(now, out),
            (StateKind::Recover, TimerKind::Recovery) => self.shift_to_gather(now, out),
            (StateKind::Recover, TimerKind::RecoveryRebroadcast) => {
                self.rebroadcast_recovery(out);
                self.timers
                    .insert(TimerKind::RecoveryRebroadcast, now + self.cfg.join_interval);
            }
            _ => {} // timer no longer relevant in this state
        }
    }

    // ----- operational ----------------------------------------------------

    fn handle_token(&mut self, now: u64, token: Token, out: &mut Vec<Output>) {
        let current = self.participant.ring().id();
        if token.ring_id == current && self.state == StateKind::Operational {
            self.process_token(now, token, out);
        } else if self.is_pending_ring(token.ring_id) {
            self.stash_input(Stashed::Token(token));
        } else if token.ring_id.counter() > current.counter()
            && self.state == StateKind::Operational
        {
            // Foreign token from a newer configuration: something merged or
            // reformed without us.
            self.shift_to_gather(now, out);
        }
    }

    fn handle_data(&mut self, now: u64, msg: DataMessage, out: &mut Vec<Output>) {
        let current = self.participant.ring().id();
        if msg.ring_id == current && self.state == StateKind::Operational {
            let mut actions = Vec::new();
            self.participant.handle_data(msg, &mut actions);
            self.emit(actions, out);
        } else if self.is_pending_ring(msg.ring_id) {
            self.stash_input(Stashed::Data(msg));
        } else if msg.ring_id.counter() > current.counter() && self.state == StateKind::Operational
        {
            self.shift_to_gather(now, out);
        }
    }

    fn process_token(&mut self, now: u64, token: Token, out: &mut Vec<Output>) {
        let mut actions = Vec::new();
        self.participant.handle_token(token, &mut actions);
        self.emit(actions, out);
        self.timers
            .insert(TimerKind::TokenLoss, now + self.cfg.token_loss_timeout);
        if self.last_sent_token.is_some() {
            self.timers.insert(
                TimerKind::TokenRetransmit,
                now + self.cfg.token_retransmit_timeout,
            );
        }
    }

    fn emit(&mut self, actions: Vec<Action>, out: &mut Vec<Output>) {
        for action in actions {
            match action {
                Action::Multicast(m) => out.push(Output::Multicast(m)),
                Action::SendToken { to, token } => {
                    self.last_sent_token = Some(token.clone());
                    out.push(Output::SendToken { to, token });
                }
                Action::Deliver(d) => out.push(Output::Deliver(d)),
                Action::Discard { .. } => {}
            }
        }
    }

    // ----- gather ---------------------------------------------------------

    fn shift_to_gather(&mut self, now: u64, out: &mut Vec<Output>) {
        if self.state == StateKind::Operational || self.snapshot.is_none() {
            self.snapshot = Some(self.participant.recovery_snapshot());
        }
        self.stats.gathers += 1;
        self.gather_epoch += 1;
        self.state = StateKind::Gather;
        self.pending = None;
        self.stash.clear();
        self.early_dones.clear();
        self.early_floods.clear();
        self.last_sent_token = None;
        self.my_proc = self.participant.ring().members().iter().copied().collect();
        self.my_proc.insert(self.pid);
        self.my_fail.clear();
        self.joins.clear();
        self.consensus_timeout_fired = false;
        self.settled = false;
        self.max_ring_counter = self
            .max_ring_counter
            .max(self.participant.ring().id().counter());
        self.timers.clear();
        self.timers
            .insert(TimerKind::JoinRebroadcast, now + self.cfg.join_interval);
        self.timers
            .insert(TimerKind::Consensus, now + self.cfg.consensus_timeout);
        self.timers
            .insert(TimerKind::Settle, now + self.cfg.gather_settle);
        self.broadcast_join(out);
    }

    fn broadcast_join(&mut self, out: &mut Vec<Output>) {
        self.joins
            .insert(self.pid, (self.my_proc.clone(), self.my_fail.clone()));
        out.push(Output::SendControl {
            to: None,
            msg: ControlMessage::Join {
                sender: self.pid,
                proc_set: self.my_proc.clone(),
                fail_set: self.my_fail.clone(),
                ring_counter: self.max_ring_counter,
                epoch: self.gather_epoch,
            },
        });
    }

    fn handle_control(&mut self, now: u64, msg: ControlMessage, out: &mut Vec<Output>) {
        match msg {
            ControlMessage::Join {
                sender,
                proc_set,
                fail_set,
                ring_counter,
                epoch,
            } => {
                if sender == self.pid {
                    return; // our own broadcast looped back
                }
                if self.state != StateKind::Gather {
                    if self.seen_joins.get(&sender)
                        == Some(&(epoch, proc_set.clone(), fail_set.clone()))
                    {
                        // A straggler rebroadcasting information we already
                        // acted on: no reason to restart formation.
                        return;
                    }
                    // A join carrying news means membership is in flux:
                    // regather and absorb it.
                    self.shift_to_gather(now, out);
                }
                self.absorb_join(now, sender, epoch, proc_set, fail_set, ring_counter, out);
            }
            ControlMessage::Commit(ct) => self.handle_commit_token(now, ct, out),
            ControlMessage::Presence { sender, ring_id } => {
                // A beacon from a ring that is not ours and is not stale
                // means a reachable foreign ring exists: merge. The side
                // with the lower counter may ignore the other (stale-looking
                // beacons), but the higher side always triggers and its join
                // broadcasts pull the lower side in.
                if self.state == StateKind::Operational
                    && sender != self.pid
                    && ring_id != self.participant.ring().id()
                    && ring_id.counter() >= self.participant.ring().id().counter()
                {
                    self.shift_to_gather(now, out);
                }
            }
            ControlMessage::Recovery {
                old_ring,
                msg: data,
                ..
            } => match self.state {
                StateKind::Recover => {
                    if let (Some(snapshot), Some(pending)) = (&self.snapshot, &mut self.pending) {
                        if old_ring == snapshot.ring_id && data.seq > pending.floor {
                            pending.collected.entry(data.seq).or_insert(data);
                            // A flood can be the last missing piece once all
                            // barriers are already in.
                            self.check_recovery_complete(now, out);
                        }
                    }
                }
                StateKind::Gather | StateKind::Commit => {
                    // A peer is already recovering a ring we may be about to
                    // join; keep its flood until we know our floor.
                    if self.early_floods.len() < MAX_EARLY_FLOODS {
                        self.early_floods.push((old_ring, data));
                    }
                }
                StateKind::Operational => {}
            },
            ControlMessage::RecoveryDone {
                sender,
                new_ring,
                old_ring,
                holds,
            } => match self.state {
                StateKind::Recover => {
                    if let (Some(snapshot), Some(pending)) = (&self.snapshot, &mut self.pending) {
                        if new_ring == pending.new_ring.id() {
                            pending.done.insert(sender);
                            if old_ring == snapshot.ring_id {
                                pending.needed.extend(holds);
                            }
                            self.check_recovery_complete(now, out);
                        }
                    }
                }
                StateKind::Gather | StateKind::Commit => {
                    // The barrier can arrive before the commit token reaches
                    // us; remember it so we do not stall in Recover.
                    self.early_dones
                        .entry(new_ring)
                        .or_default()
                        .insert(sender, (old_ring, holds));
                }
                StateKind::Operational => {}
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn absorb_join(
        &mut self,
        now: u64,
        sender: ParticipantId,
        epoch: u64,
        proc_set: BTreeSet<ParticipantId>,
        fail_set: BTreeSet<ParticipantId>,
        ring_counter: u64,
        out: &mut Vec<Output>,
    ) {
        self.max_ring_counter = self.max_ring_counter.max(ring_counter);
        self.seen_joins
            .insert(sender, (epoch, proc_set.clone(), fail_set.clone()));
        let mut changed = false;
        if fail_set.contains(&self.pid) {
            // Totem's reciprocity rule: a processor that has given up on us
            // cannot be in our membership either. We must NOT merge its
            // fail set (it contains us), so we fail the sender instead and
            // let the two sides form separate rings; the presence beacon
            // merges them afterwards with fresh fail sets.
            changed = self.my_fail.insert(sender);
            self.joins.remove(&sender);
        } else {
            for p in &proc_set {
                changed |= self.my_proc.insert(*p);
            }
            for p in &fail_set {
                changed |= self.my_fail.insert(*p);
            }
            self.joins.insert(sender, (proc_set, fail_set));
        }
        if changed {
            // New information restarts the consensus and settle clocks and
            // must be spread.
            self.timers
                .insert(TimerKind::Consensus, now + self.cfg.consensus_timeout);
            self.timers
                .insert(TimerKind::Settle, now + self.cfg.gather_settle);
            self.settled = false;
            self.broadcast_join(out);
        }
        self.check_consensus(now, out);
    }

    fn check_consensus(&mut self, now: u64, out: &mut Vec<Output>) {
        if !self.settled {
            return; // wait out the join-exchange settle period
        }
        debug_assert!(
            !self.my_fail.contains(&self.pid),
            "reciprocity rule keeps us out of our own fail set"
        );
        let members: Vec<ParticipantId> = self
            .my_proc
            .iter()
            .copied()
            .filter(|p| !self.my_fail.contains(p))
            .collect();
        if members.is_empty() {
            return;
        }
        if members.len() == 1 && !self.consensus_timeout_fired {
            // Don't instantly declare a singleton ring at startup: give
            // peers one consensus period to answer.
            return;
        }
        let agreed = members.iter().all(|m| {
            self.joins
                .get(m)
                .is_some_and(|(p, f)| *p == self.my_proc && *f == self.my_fail)
        });
        if agreed {
            self.form_ring(now, members, out);
        }
    }

    fn member_info(&self) -> MemberInfo {
        let snapshot = self
            .snapshot
            .as_ref()
            .expect("snapshot taken when gathering began");
        MemberInfo {
            pid: self.pid,
            old_ring: snapshot.ring_id,
            local_aru: snapshot.local_aru,
            highest_held: snapshot.highest_held,
        }
    }

    fn form_ring(&mut self, now: u64, members: Vec<ParticipantId>, out: &mut Vec<Output>) {
        let rep = members[0];
        self.max_ring_counter += 4;
        let new_ring = RingId::new(rep, self.max_ring_counter);
        self.state = StateKind::Commit;
        self.timers.clear();
        self.timers
            .insert(TimerKind::Commit, now + self.cfg.commit_timeout);
        if rep == self.pid {
            let ct = CommitToken {
                new_ring,
                members: members.clone(),
                infos: vec![self.member_info()],
                hop: 0,
            };
            if members.len() == 1 {
                self.enter_recover(now, ct, out);
            } else {
                out.push(Output::SendControl {
                    to: Some(members[1]),
                    msg: ControlMessage::Commit(CommitToken { hop: 1, ..ct }),
                });
            }
        }
    }

    // ----- commit ---------------------------------------------------------

    fn handle_commit_token(&mut self, now: u64, mut ct: CommitToken, out: &mut Vec<Output>) {
        if !ct.members.contains(&self.pid) {
            return; // a ring forming without us; keep doing what we were doing
        }
        match self.state {
            StateKind::Gather | StateKind::Commit => {
                // The ring being formed must be newer than the ring we are
                // dissolving. A duplicated or reordered commit token from a
                // formation that already completed (its ring installed, then
                // dissolved again) would otherwise be accepted, and its infos
                // — whose old_ring fields predate our snapshot — would yield
                // an empty transitional membership.
                if let Some(snapshot) = &self.snapshot {
                    if ct.new_ring.counter() <= snapshot.ring_id.counter() {
                        return; // stale
                    }
                }
            }
            StateKind::Recover => return, // second-pass echo, already recovering
            StateKind::Operational => {
                if ct.new_ring.counter() <= self.participant.ring().id().counter() {
                    return; // stale
                }
                // A newer ring is forming that includes us but we missed the
                // gather: fall back to gathering.
                self.shift_to_gather(now, out);
                return;
            }
        }
        let n = ct.members.len() as u32;
        if ct.info_of(self.pid).is_none() {
            ct.infos.push(self.member_info());
        }
        let complete = ct.is_complete();
        let forward = ct.hop < 2 * n - 1;
        if forward {
            let my_idx = ct
                .members
                .iter()
                .position(|&m| m == self.pid)
                .expect("checked membership");
            let next = ct.members[(my_idx + 1) % ct.members.len()];
            let forwarded = CommitToken {
                hop: ct.hop + 1,
                ..ct.clone()
            };
            out.push(Output::SendControl {
                to: Some(next),
                msg: ControlMessage::Commit(forwarded),
            });
        }
        if complete {
            self.enter_recover(now, ct, out);
        } else {
            // First pass: stay in Commit waiting for the full token.
            self.state = StateKind::Commit;
            self.timers.clear();
            self.timers
                .insert(TimerKind::Commit, now + self.cfg.commit_timeout);
        }
    }

    // ----- recover --------------------------------------------------------

    fn enter_recover(&mut self, now: u64, ct: CommitToken, out: &mut Vec<Output>) {
        let ring = Ring::new(ct.new_ring, ct.members.clone()).expect("commit members are distinct");
        let snapshot = self
            .snapshot
            .as_ref()
            .expect("snapshot taken when gathering began");
        let my_old = snapshot.ring_id;
        let peers: Vec<ParticipantId> = ct
            .infos
            .iter()
            .filter(|i| i.old_ring == my_old)
            .map(|i| i.pid)
            .collect();
        let floor = ct
            .infos
            .iter()
            .filter(|i| i.old_ring == my_old)
            .map(|i| i.local_aru)
            .min()
            .unwrap_or(Seq::ZERO);
        let my_holds: Vec<Seq> = snapshot
            .held
            .iter()
            .map(|m| m.seq)
            .filter(|s| *s > floor)
            .collect();
        let mut done = BTreeSet::new();
        let mut needed = BTreeSet::new();
        done.insert(self.pid);
        if let Some(early) = self.early_dones.remove(&ct.new_ring) {
            for (sender, (old_ring, holds)) in early {
                done.insert(sender);
                if old_ring == my_old {
                    needed.extend(holds);
                }
            }
        }
        self.early_dones.clear();
        let mut collected = BTreeMap::new();
        for (old_ring, data) in std::mem::take(&mut self.early_floods) {
            if old_ring == my_old && data.seq > floor {
                collected.entry(data.seq).or_insert(data);
            }
        }
        self.pending = Some(PendingRecovery {
            new_ring: ring,
            floor,
            collected,
            done,
            peers,
            my_holds,
            needed,
        });
        self.state = StateKind::Recover;
        self.timers.clear();
        self.timers
            .insert(TimerKind::Recovery, now + self.cfg.recovery_timeout);
        self.timers
            .insert(TimerKind::RecoveryRebroadcast, now + self.cfg.join_interval);
        self.rebroadcast_recovery(out);
        self.check_recovery_complete(now, out);
    }

    fn rebroadcast_recovery(&mut self, out: &mut Vec<Output>) {
        let Some(pending) = &self.pending else { return };
        let Some(snapshot) = &self.snapshot else {
            return;
        };
        // Flood only when a peer might be missing something: everything we
        // hold above the floor (= the minimum aru among transitional
        // members, below which everyone provably holds everything).
        if pending.peers.len() > 1 {
            for m in &snapshot.held {
                if m.seq > pending.floor {
                    out.push(Output::SendControl {
                        to: None,
                        msg: ControlMessage::Recovery {
                            sender: self.pid,
                            old_ring: snapshot.ring_id,
                            msg: m.clone(),
                        },
                    });
                }
            }
        }
        out.push(Output::SendControl {
            to: None,
            msg: ControlMessage::RecoveryDone {
                sender: self.pid,
                new_ring: pending.new_ring.id(),
                old_ring: snapshot.ring_id,
                holds: pending.my_holds.clone(),
            },
        });
    }

    fn check_recovery_complete(&mut self, now: u64, out: &mut Vec<Output>) {
        let Some(pending) = &self.pending else { return };
        let all_done = pending
            .new_ring
            .members()
            .iter()
            .all(|m| pending.done.contains(m));
        if !all_done {
            return;
        }
        // The barrier alone is not enough: a peer's RecoveryDone can arrive
        // while the flood packets it sent are lost. Wait until every seq any
        // same-old-ring peer advertised is actually in hand (the rebroadcast
        // timer refloods until then; the Recovery timeout bails us out if the
        // peer dies).
        if let Some(snapshot) = &self.snapshot {
            let have_all = pending.needed.iter().all(|s| {
                pending.collected.contains_key(s) || snapshot.held.iter().any(|m| m.seq == *s)
            });
            if !have_all {
                return;
            }
        }
        let pending = self.pending.take().expect("checked above");
        let snapshot = self.snapshot.take().expect("snapshot existed to recover");

        // 1. Transitional configuration closes the old ring (skipped for the
        //    cold-start pseudo-ring, which never delivered a regular
        //    configuration).
        if snapshot.ring_id.counter() != 0 {
            out.push(Output::ConfigChange(ConfigChange {
                ring_id: snapshot.ring_id,
                members: pending.peers.clone(),
                transitional: true,
            }));
            // 2. Deliver the old ring's recovered-but-undelivered messages in
            //    sequence order. Every transitional member holds the same set
            //    after the flood, so the orders agree.
            let mut all: BTreeMap<Seq, DataMessage> = pending.collected;
            for m in snapshot.held {
                all.entry(m.seq).or_insert(m);
            }
            for (seq, m) in all {
                if seq >= snapshot.next_delivery {
                    out.push(Output::Deliver(Delivery {
                        seq,
                        sender: m.pid,
                        round: m.round,
                        service: m.service,
                        payload: m.payload,
                    }));
                }
            }
        }

        // 3. The new regular configuration.
        out.push(Output::ConfigChange(ConfigChange {
            ring_id: pending.new_ring.id(),
            members: pending.new_ring.members().to_vec(),
            transitional: false,
        }));
        self.stats.rings_formed += 1;

        // 4. Install and go operational.
        self.participant
            .install_ring(pending.new_ring.clone(), Seq::ZERO);
        self.state = StateKind::Operational;
        self.last_sent_token = None;
        self.timers.clear();
        self.timers
            .insert(TimerKind::TokenLoss, now + self.cfg.token_loss_timeout);
        self.timers
            .insert(TimerKind::Presence, now + self.cfg.presence_interval);

        // 5. The representative starts the ring by processing the initial
        //    token directly.
        if pending.new_ring.members()[0] == self.pid {
            self.process_token(now, Token::initial(pending.new_ring.id()), out);
        }

        // 6. Replay anything that arrived for the new ring early.
        for stashed in std::mem::take(&mut self.stash) {
            match stashed {
                Stashed::Token(t) => self.process_token(now, t, out),
                Stashed::Data(d) => {
                    let mut actions = Vec::new();
                    self.participant.handle_data(d, &mut actions);
                    self.emit(actions, out);
                }
            }
        }
    }

    fn is_pending_ring(&self, ring_id: RingId) -> bool {
        matches!(self.state, StateKind::Commit | StateKind::Recover)
            && self
                .pending
                .as_ref()
                .is_some_and(|p| p.new_ring.id() == ring_id)
    }

    fn stash_input(&mut self, s: Stashed) {
        if self.stash.len() < MAX_STASH {
            self.stats.stashed += 1;
            self.stash.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon(pid: u16) -> MembershipDaemon {
        MembershipDaemon::new(
            ParticipantId::new(pid),
            ProtocolConfig::default(),
            MembershipConfig::for_simulation(),
        )
    }

    /// Drives a lone daemon through gather-settle and consensus timeout so
    /// it forms its singleton ring; returns the outputs of the forming
    /// step and the time it happened.
    fn form_singleton(d: &mut MembershipDaemon) -> (Vec<Output>, u64) {
        let cfg = MembershipConfig::for_simulation();
        let mut out = Vec::new();
        d.handle(cfg.gather_settle, Input::Timer(TimerKind::Settle), &mut out);
        out.clear();
        d.handle(
            cfg.consensus_timeout,
            Input::Timer(TimerKind::Consensus),
            &mut out,
        );
        (out, cfg.consensus_timeout)
    }

    #[test]
    fn starts_in_gather_and_broadcasts_join() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        assert_eq!(d.state(), StateKind::Gather);
        assert!(matches!(
            out[0],
            Output::SendControl {
                to: None,
                msg: ControlMessage::Join { .. }
            }
        ));
        assert!(d.next_timer().is_some());
    }

    #[test]
    #[should_panic(expected = "call start() before handle()")]
    fn handle_before_start_panics() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.handle(0, Input::Timer(TimerKind::Consensus), &mut out);
    }

    #[test]
    fn lone_node_forms_singleton_after_timeout() {
        let mut d = daemon(3);
        let mut out = Vec::new();
        d.start(0, &mut out);
        let (out, _) = form_singleton(&mut d);
        assert_eq!(d.state(), StateKind::Operational);
        let configs: Vec<&ConfigChange> = out
            .iter()
            .filter_map(|o| match o {
                Output::ConfigChange(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(
            configs.len(),
            1,
            "cold start delivers only the regular config"
        );
        assert!(!configs[0].transitional);
        assert_eq!(configs[0].members, vec![ParticipantId::new(3)]);
        // The representative started the token around its singleton ring.
        assert!(out
            .iter()
            .any(|o| matches!(o, Output::SendToken { to, .. } if *to == ParticipantId::new(3))));
    }

    #[test]
    fn lone_node_does_not_form_instantly() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        // Before the consensus timeout the daemon must keep gathering.
        assert_eq!(d.state(), StateKind::Gather);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        out.clear();
        // TokenLoss is not armed in Gather; firing it must do nothing.
        d.handle(10, Input::Timer(TimerKind::TokenLoss), &mut out);
        assert!(out.is_empty());
        assert_eq!(d.state(), StateKind::Gather);
    }

    #[test]
    fn two_daemons_reach_consensus_via_joins() {
        let mut a = daemon(0);
        let mut b = daemon(1);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.start(0, &mut out_a);
        b.start(0, &mut out_b);

        // Exchange joins until both sides go quiet.
        for _ in 0..6 {
            let from_a: Vec<_> = std::mem::take(&mut out_a);
            for o in from_a {
                if let Output::SendControl { msg, .. } = o {
                    b.handle(1, Input::Control(msg), &mut out_b);
                }
            }
            let from_b: Vec<_> = std::mem::take(&mut out_b);
            for o in from_b {
                if let Output::SendControl { to, msg } = o {
                    if to.is_none() || to == Some(ParticipantId::new(0)) {
                        a.handle(1, Input::Control(msg), &mut out_a);
                    }
                }
            }
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
        }
        // After the settle period, both evaluate consensus and move on.
        let settle = MembershipConfig::for_simulation().gather_settle;
        a.handle(settle + 2, Input::Timer(TimerKind::Settle), &mut out_a);
        b.handle(settle + 2, Input::Timer(TimerKind::Settle), &mut out_b);
        assert_ne!(a.state(), StateKind::Gather);
        assert_ne!(b.state(), StateKind::Gather);
    }

    #[test]
    fn join_from_unknown_process_interrupts_operational() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        let cfg = MembershipConfig::for_simulation();
        let (_, t0) = form_singleton(&mut d);
        assert_eq!(d.state(), StateKind::Operational);
        let _ = t0;
        out.clear();
        d.handle(
            cfg.consensus_timeout + 1,
            Input::Control(ControlMessage::Join {
                sender: ParticipantId::new(9),
                proc_set: [ParticipantId::new(9)].into_iter().collect(),
                fail_set: BTreeSet::new(),
                ring_counter: 0,
                epoch: 1,
            }),
            &mut out,
        );
        assert_eq!(d.state(), StateKind::Gather);
        assert!(d.stats().gathers >= 2);
    }

    #[test]
    fn announce_leave_broadcasts_self_failing_join() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        let (_, _) = form_singleton(&mut d);
        assert_eq!(d.state(), StateKind::Operational);
        out.clear();
        d.announce_leave(&mut out);
        let me = ParticipantId::new(0);
        assert!(
            out.iter().any(|o| matches!(
                o,
                Output::SendControl {
                    to: None,
                    msg: ControlMessage::Join { sender, fail_set, .. }
                } if *sender == me && fail_set.contains(&me)
            )),
            "leave must broadcast a join listing ourselves as failed"
        );
    }

    #[test]
    fn announce_leave_is_noop_while_gathering() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        assert_eq!(d.state(), StateKind::Gather);
        out.clear();
        d.announce_leave(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn peers_fail_a_clean_leaver_without_token_loss() {
        // A leaver's self-failing join makes an operational peer regather
        // and put the leaver in its fail set immediately (reciprocity),
        // without waiting for the token-loss timer.
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        let (_, t0) = form_singleton(&mut d);
        assert_eq!(d.state(), StateKind::Operational);
        out.clear();
        let leaver = ParticipantId::new(7);
        d.handle(
            t0 + 1,
            Input::Control(ControlMessage::Join {
                sender: leaver,
                proc_set: [ParticipantId::new(0), leaver].into_iter().collect(),
                fail_set: [leaver].into_iter().collect(),
                ring_counter: 0,
                epoch: 1,
            }),
            &mut out,
        );
        assert_eq!(d.state(), StateKind::Gather);
        let (_, fail, _) = d.gather_view();
        assert!(fail.contains(&leaver), "reciprocity fails the leaver");
    }

    #[test]
    fn token_loss_triggers_gather() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        let cfg = MembershipConfig::for_simulation();
        let (_, t0) = form_singleton(&mut d);
        assert_eq!(d.state(), StateKind::Operational);
        out.clear();
        // Do not feed the token back; let the loss timer fire.
        d.handle(
            t0 + cfg.token_loss_timeout,
            Input::Timer(TimerKind::TokenLoss),
            &mut out,
        );
        assert_eq!(d.state(), StateKind::Gather);
    }

    #[test]
    fn token_retransmit_resends_last_token() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        let cfg = MembershipConfig::for_simulation();
        let (_, t0) = form_singleton(&mut d);
        out.clear();
        d.handle(
            t0 + cfg.token_retransmit_timeout,
            Input::Timer(TimerKind::TokenRetransmit),
            &mut out,
        );
        assert!(
            out.iter().any(|o| matches!(o, Output::SendToken { .. })),
            "token must be retransmitted"
        );
        assert_eq!(d.stats().tokens_retransmitted, 1);
    }

    #[test]
    fn submissions_survive_membership_changes() {
        let mut d = daemon(0);
        let mut out = Vec::new();
        d.start(0, &mut out);
        d.submit(Bytes::from_static(b"queued"), Service::Agreed)
            .unwrap();
        let cfg = MembershipConfig::for_simulation();
        let (mut out, _) = form_singleton(&mut d);
        assert_eq!(d.state(), StateKind::Operational);
        // Token circulates: feed the emitted token back until the queued
        // message is delivered (it may already be in this output batch,
        // since the representative processes the initial token directly).
        for _ in 0..4 {
            if out
                .iter()
                .any(|o| matches!(o, Output::Deliver(del) if del.payload == Bytes::from_static(b"queued")))
            {
                return;
            }
            let token = out
                .iter()
                .find_map(|o| match o {
                    Output::SendToken { token, .. } => Some(token.clone()),
                    _ => None,
                })
                .expect("token in flight");
            out.clear();
            d.handle(cfg.consensus_timeout + 10, Input::Token(token), &mut out);
        }
        panic!("queued message was never delivered");
    }

    #[test]
    fn commit_token_from_gather_is_joined() {
        // A commit token naming us forces us along even if our own gather
        // has not converged.
        let mut d = daemon(1);
        let mut out = Vec::new();
        d.start(0, &mut out);
        out.clear();
        let ct = CommitToken {
            new_ring: RingId::new(ParticipantId::new(0), 8),
            members: vec![ParticipantId::new(0), ParticipantId::new(1)],
            infos: vec![MemberInfo {
                pid: ParticipantId::new(0),
                old_ring: RingId::new(ParticipantId::new(0), 0),
                local_aru: Seq::ZERO,
                highest_held: Seq::ZERO,
            }],
            hop: 1,
        };
        d.handle(5, Input::Control(ControlMessage::Commit(ct)), &mut out);
        // We appended our info (completing it) and entered Recover.
        assert_eq!(d.state(), StateKind::Recover);
        let forwarded = out
            .iter()
            .find_map(|o| match o {
                Output::SendControl {
                    to: Some(to),
                    msg: ControlMessage::Commit(ct),
                } => Some((*to, ct.clone())),
                _ => None,
            })
            .expect("commit token forwarded");
        assert_eq!(forwarded.0, ParticipantId::new(0));
        assert!(forwarded.1.is_complete());
        // And broadcast our recovery barrier.
        assert!(out.iter().any(|o| matches!(
            o,
            Output::SendControl {
                msg: ControlMessage::RecoveryDone { .. },
                ..
            }
        )));
    }

    #[test]
    fn commit_token_excluding_us_is_ignored() {
        let mut d = daemon(5);
        let mut out = Vec::new();
        d.start(0, &mut out);
        out.clear();
        let ct = CommitToken {
            new_ring: RingId::new(ParticipantId::new(0), 8),
            members: vec![ParticipantId::new(0), ParticipantId::new(1)],
            infos: vec![],
            hop: 1,
        };
        d.handle(5, Input::Control(ControlMessage::Commit(ct)), &mut out);
        assert_eq!(d.state(), StateKind::Gather);
        assert!(out.is_empty());
    }

    #[test]
    fn recovery_done_barrier_completes_two_member_ring() {
        let mut d = daemon(1);
        let mut out = Vec::new();
        d.start(0, &mut out);
        out.clear();
        let ct = CommitToken {
            new_ring: RingId::new(ParticipantId::new(0), 8),
            members: vec![ParticipantId::new(0), ParticipantId::new(1)],
            infos: vec![MemberInfo {
                pid: ParticipantId::new(0),
                old_ring: RingId::new(ParticipantId::new(0), 0),
                local_aru: Seq::ZERO,
                highest_held: Seq::ZERO,
            }],
            hop: 1,
        };
        d.handle(5, Input::Control(ControlMessage::Commit(ct)), &mut out);
        assert_eq!(d.state(), StateKind::Recover);
        out.clear();
        d.handle(
            6,
            Input::Control(ControlMessage::RecoveryDone {
                sender: ParticipantId::new(0),
                new_ring: RingId::new(ParticipantId::new(0), 8),
                old_ring: RingId::new(ParticipantId::new(0), 0),
                holds: Vec::new(),
            }),
            &mut out,
        );
        assert_eq!(d.state(), StateKind::Operational);
        let config = out
            .iter()
            .find_map(|o| match o {
                Output::ConfigChange(c) => Some(c.clone()),
                _ => None,
            })
            .expect("regular config delivered");
        assert!(!config.transitional);
        assert_eq!(
            config.members,
            vec![ParticipantId::new(0), ParticipantId::new(1)]
        );
        assert_eq!(d.ring().len(), 2);
    }
}
