//! A virtual-time cluster for exercising the membership algorithm under
//! crashes, partitions, merges, and token loss.
//!
//! [`Cluster`] wires several [`MembershipDaemon`]s together with a uniform
//! message latency and a partition map. Unlike the performance simulator in
//! `accelring-sim`, it has no bandwidth model — it exists to test membership
//! *logic*, including Extended Virtual Synchrony guarantees.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use accelring_core::{Delivery, ParticipantId, ProtocolConfig, QueueFullError, Service};
use bytes::Bytes;

use crate::config::MembershipConfig;
use crate::daemon::{ConfigChange, Input, MembershipDaemon, Output, StateKind};

/// The kind of packet crossing the virtual network, as seen by a
/// [`NetHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// An ordered data message (original or retransmission).
    Data,
    /// The circulating token.
    Token,
    /// A membership control message (join / commit / recover traffic).
    Control,
}

/// What the network does with one packet headed from one node to another.
///
/// `delays` holds one entry per delivered copy, each an *extra* delay in
/// nanoseconds added on top of the cluster's base latency. An empty vector
/// drops the packet; two entries duplicate it; a non-zero entry reorders it
/// past later traffic.
#[derive(Debug, Clone, Default)]
pub struct SendFate {
    /// Extra delay (ns) for each delivered copy of the packet.
    pub delays: Vec<u64>,
}

impl SendFate {
    /// Deliver exactly one copy with no extra delay.
    pub fn deliver() -> SendFate {
        SendFate { delays: vec![0] }
    }

    /// Drop the packet entirely.
    pub fn drop() -> SendFate {
        SendFate { delays: Vec::new() }
    }

    /// Deliver one copy, `extra` nanoseconds late.
    pub fn delayed(extra: u64) -> SendFate {
        SendFate {
            delays: vec![extra],
        }
    }

    /// Deliver one copy per entry, each with its own extra delay.
    pub fn copies(delays: &[u64]) -> SendFate {
        SendFate {
            delays: delays.to_vec(),
        }
    }
}

/// A pluggable fault-injection hook consulted for every packet the cluster
/// would deliver (after crash and partition filtering). Implemented by the
/// chaos harness to inject seeded loss, duplication, and reordering.
pub trait NetHook: std::fmt::Debug {
    /// Decides the fate of one packet. Called once per (sender, receiver)
    /// pair, so a multicast consults the hook independently per receiver —
    /// matching the paper's receiver-side loss model.
    fn on_packet(&mut self, now: u64, from: usize, to: usize, kind: PacketKind) -> SendFate;
}

/// One entry in a node's interleaved event journal: what the application
/// sitting on top of this daemon observed, in observation order. The
/// interleaving of deliveries and configuration changes is exactly what the
/// EVS invariant checker needs (a delivery belongs to the configuration
/// most recently journaled before it).
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// An ordered message handed to the application.
    Delivered(Delivery),
    /// A regular or transitional configuration change.
    Config(ConfigChange),
}

#[derive(Debug)]
struct QueuedEvent {
    at: u64,
    seq: u64,
    dest: usize,
    input: Input,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A virtual-time cluster of membership daemons.
///
/// # Examples
///
/// ```
/// use accelring_membership::testing::Cluster;
/// use accelring_membership::{MembershipConfig, StateKind};
/// use accelring_core::ProtocolConfig;
///
/// let mut cluster = Cluster::new(3, ProtocolConfig::default(), MembershipConfig::for_simulation());
/// cluster.run_for(20_000_000); // 20 ms of virtual time
/// assert!(cluster.all_operational());
/// assert_eq!(cluster.ring_of(0).len(), 3);
/// ```
#[derive(Debug)]
pub struct Cluster {
    now: u64,
    nodes: Vec<MembershipDaemon>,
    started: Vec<bool>,
    crashed: Vec<bool>,
    component: Vec<usize>,
    events: BinaryHeap<Reverse<QueuedEvent>>,
    event_seq: u64,
    latency: u64,
    deliveries: Vec<Vec<Delivery>>,
    configs: Vec<Vec<ConfigChange>>,
    /// Interleaved per-node journal of deliveries and config changes.
    journal: Vec<Vec<NodeEvent>>,
    /// Drop the next N token sends (for token-loss tests).
    drop_tokens: u64,
    /// Paused nodes buffer their inputs in `stalled` and fire no timers.
    paused: Vec<bool>,
    stalled: Vec<Vec<Input>>,
    /// The (from, to) route of the most recent token send, if any.
    last_token_route: Option<(usize, usize)>,
    net_hook: Option<Box<dyn NetHook>>,
    memb_config: MembershipConfig,
}

impl Cluster {
    /// Creates and starts `n` daemons with ids `0..n`, all reachable.
    pub fn new(n: u16, proto: ProtocolConfig, memb: MembershipConfig) -> Cluster {
        let mut cluster = Cluster {
            now: 0,
            nodes: (0..n)
                .map(|i| MembershipDaemon::new(ParticipantId::new(i), proto, memb))
                .collect(),
            started: vec![false; n as usize],
            crashed: vec![false; n as usize],
            component: vec![0; n as usize],
            events: BinaryHeap::new(),
            event_seq: 0,
            latency: 10_000, // 10 us
            deliveries: vec![Vec::new(); n as usize],
            configs: vec![Vec::new(); n as usize],
            journal: vec![Vec::new(); n as usize],
            drop_tokens: 0,
            paused: vec![false; n as usize],
            stalled: vec![Vec::new(); n as usize],
            last_token_route: None,
            net_hook: None,
            memb_config: memb,
        };
        for i in 0..n as usize {
            cluster.start_node(i);
        }
        cluster
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn start_node(&mut self, i: usize) {
        let mut out = Vec::new();
        self.nodes[i].start(self.now, &mut out);
        self.started[i] = true;
        self.dispatch(i, out);
    }

    fn schedule(&mut self, at: u64, dest: usize, input: Input) {
        self.event_seq += 1;
        self.events.push(Reverse(QueuedEvent {
            at,
            seq: self.event_seq,
            dest,
            input,
        }));
    }

    fn reachable(&self, from: usize, to: usize) -> bool {
        !self.crashed[to] && self.component[from] == self.component[to]
    }

    fn index_of(&self, pid: ParticipantId) -> usize {
        pid.as_usize()
    }

    /// Sends one packet through the virtual network, consulting the
    /// [`NetHook`] (if installed) for its fate.
    fn send(&mut self, from: usize, to: usize, kind: PacketKind, input: Input) {
        let fate = match self.net_hook.as_mut() {
            Some(hook) => hook.on_packet(self.now, from, to, kind),
            None => SendFate::deliver(),
        };
        for extra in fate.delays {
            self.schedule(self.now + self.latency + extra, to, input.clone());
        }
    }

    fn dispatch(&mut self, from: usize, outputs: Vec<Output>) {
        let n = self.nodes.len();
        for output in outputs {
            match output {
                Output::Multicast(msg) => {
                    for to in (0..n).filter(|&t| t != from) {
                        if self.reachable(from, to) {
                            self.send(from, to, PacketKind::Data, Input::Data(msg.clone()));
                        }
                    }
                }
                Output::SendToken { to, token } => {
                    if self.drop_tokens > 0 {
                        self.drop_tokens -= 1;
                        continue;
                    }
                    let dest = self.index_of(to);
                    if dest == from || self.reachable(from, dest) {
                        self.last_token_route = Some((from, dest));
                        self.send(from, dest, PacketKind::Token, Input::Token(token));
                    }
                }
                Output::SendControl { to, msg } => match to {
                    Some(to) => {
                        let dest = self.index_of(to);
                        if dest == from || self.reachable(from, dest) {
                            self.send(from, dest, PacketKind::Control, Input::Control(msg));
                        }
                    }
                    None => {
                        for dest in (0..n).filter(|&t| t != from) {
                            if self.reachable(from, dest) {
                                self.send(
                                    from,
                                    dest,
                                    PacketKind::Control,
                                    Input::Control(msg.clone()),
                                );
                            }
                        }
                    }
                },
                Output::Deliver(d) => {
                    self.journal[from].push(NodeEvent::Delivered(d.clone()));
                    self.deliveries[from].push(d);
                }
                Output::ConfigChange(c) => {
                    self.journal[from].push(NodeEvent::Config(c.clone()));
                    self.configs[from].push(c);
                }
            }
        }
    }

    /// Advances virtual time by `duration` nanoseconds, processing events
    /// and timers.
    pub fn run_for(&mut self, duration: u64) {
        enum Next {
            Event,
            Timer(usize, crate::daemon::TimerKind),
        }
        let end = self.now + duration;
        loop {
            let next_event = self.events.peek().map(|Reverse(e)| e.at);
            let next_timer = (0..self.nodes.len())
                .filter(|&i| !self.crashed[i] && !self.paused[i] && self.started[i])
                .filter_map(|i| self.nodes[i].next_timer().map(|(d, k)| (d, i, k)))
                .min();
            let (at, next) = match (next_event, next_timer) {
                (None, None) => break,
                (Some(e), None) => (e, Next::Event),
                (None, Some((t, i, k))) => (t, Next::Timer(i, k)),
                (Some(e), Some((t, i, k))) => {
                    if e <= t {
                        (e, Next::Event)
                    } else {
                        (t, Next::Timer(i, k))
                    }
                }
            };
            if at > end {
                break;
            }
            self.now = at;
            match next {
                Next::Timer(node, kind) => {
                    let mut out = Vec::new();
                    self.nodes[node].handle(self.now, Input::Timer(kind), &mut out);
                    self.dispatch(node, out);
                }
                Next::Event => {
                    let Reverse(ev) = self.events.pop().expect("peeked event exists");
                    if self.crashed[ev.dest] {
                        continue;
                    }
                    if self.paused[ev.dest] {
                        // A paused node's NIC keeps receiving; the process
                        // consumes the backlog when it resumes.
                        self.stalled[ev.dest].push(ev.input);
                        continue;
                    }
                    let mut out = Vec::new();
                    self.nodes[ev.dest].handle(self.now, ev.input, &mut out);
                    self.dispatch(ev.dest, out);
                }
            }
        }
        self.now = end;
    }

    /// Splits the cluster into partition groups; nodes not named fall into
    /// their own singleton component.
    pub fn partition(&mut self, groups: &[&[usize]]) {
        let n = self.nodes.len();
        for (i, c) in self.component.iter_mut().enumerate() {
            *c = n + i; // default: isolated
        }
        for (gid, group) in groups.iter().enumerate() {
            for &i in *group {
                self.component[i] = gid;
            }
        }
        // Drop in-flight cross-partition traffic, as a real partition would.
        let events = std::mem::take(&mut self.events);
        for Reverse(e) in events {
            // We do not know the sender any more; keep only events whose
            // destination could still plausibly receive them. Conservative:
            // keep everything (stale ring ids are rejected by the daemons).
            self.events.push(Reverse(e));
        }
    }

    /// Reconnects every node into one component.
    pub fn heal(&mut self) {
        for c in self.component.iter_mut() {
            *c = 0;
        }
    }

    /// Crashes a node: it stops processing everything. Any backlog a
    /// paused node accumulated dies with the process.
    pub fn crash(&mut self, i: usize) {
        self.crashed[i] = true;
        self.paused[i] = false;
        self.stalled[i].clear();
    }

    /// Restarts a crashed node as a fresh process (empty state, same id):
    /// it gathers and rejoins the ring, exactly like a recovered daemon
    /// rejoining a Spread configuration. The ring counter survives the
    /// restart, modelling the ring sequence number Totem keeps on stable
    /// storage — without it a recovered daemon could re-form a ring id
    /// already used before the crash, and configuration identifiers would
    /// no longer be unique.
    pub fn restart(&mut self, i: usize) {
        assert!(self.crashed[i], "only crashed nodes can restart");
        let pid = ParticipantId::new(i as u16);
        let proto = *self.nodes[i].protocol_config();
        let memb = self.memb_config;
        let stable_counter = self.nodes[i].max_ring_counter();
        self.nodes[i] = MembershipDaemon::new(pid, proto, memb);
        self.nodes[i].restore_ring_counter(stable_counter);
        self.crashed[i] = false;
        self.start_node(i);
    }

    /// Drops the next `n` token transmissions (token-loss injection).
    pub fn drop_next_tokens(&mut self, n: u64) {
        self.drop_tokens = n;
    }

    /// Installs a [`NetHook`] consulted for every subsequent packet.
    pub fn set_net_hook(&mut self, hook: Box<dyn NetHook>) {
        self.net_hook = Some(hook);
    }

    /// Removes the installed [`NetHook`]; delivery reverts to lossless.
    pub fn clear_net_hook(&mut self) {
        self.net_hook = None;
    }

    /// Pauses a node: its timers stop firing and arriving inputs queue up
    /// until [`Cluster::resume`]. Models a stalled process (GC pause,
    /// debugger stop, CPU starvation) as opposed to a crash.
    pub fn pause(&mut self, i: usize) {
        assert!(!self.crashed[i], "cannot pause a crashed node");
        self.paused[i] = true;
    }

    /// Resumes a paused node; its input backlog is processed immediately
    /// and overdue timers fire at the current virtual time.
    pub fn resume(&mut self, i: usize) {
        if !self.paused[i] {
            return;
        }
        self.paused[i] = false;
        for input in std::mem::take(&mut self.stalled[i]) {
            let mut out = Vec::new();
            self.nodes[i].handle(self.now, input, &mut out);
            self.dispatch(i, out);
        }
    }

    /// Whether node `i` is currently paused.
    pub fn is_paused(&self, i: usize) -> bool {
        self.paused[i]
    }

    /// Whether node `i` is currently crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Number of daemons in the cluster (crashed ones included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: clusters have at least one node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `(from, to)` route of the most recent token transmission, if
    /// any. Lets a fault injector target the current token holder.
    pub fn last_token_route(&self) -> Option<(usize, usize)> {
        self.last_token_route
    }

    /// The interleaved journal of deliveries and config changes observed
    /// at node `i`, in observation order.
    pub fn journal(&self, i: usize) -> &[NodeEvent] {
        &self.journal[i]
    }

    /// Queues an application message at node `i`.
    ///
    /// # Panics
    ///
    /// Panics if the node's send queue is full or the node has crashed.
    pub fn submit(&mut self, i: usize, payload: Bytes, service: Service) {
        assert!(!self.crashed[i], "cannot submit to a crashed node");
        self.nodes[i]
            .submit(payload, service)
            .expect("test queue should not fill");
    }

    /// Queues an application message at node `i`, reporting backpressure
    /// instead of panicking. Used by the chaos harness, whose faults can
    /// legitimately stall the send queue.
    ///
    /// # Panics
    ///
    /// Panics if the node has crashed.
    pub fn try_submit(
        &mut self,
        i: usize,
        payload: Bytes,
        service: Service,
    ) -> Result<(), QueueFullError> {
        assert!(!self.crashed[i], "cannot submit to a crashed node");
        self.nodes[i].submit(payload, service)
    }

    /// Whether every live node is Operational.
    pub fn all_operational(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed[*i])
            .all(|(_, n)| n.state() == StateKind::Operational)
    }

    /// The membership state of node `i`.
    pub fn state_of(&self, i: usize) -> StateKind {
        self.nodes[i].state()
    }

    /// The ring currently installed at node `i`.
    pub fn ring_of(&self, i: usize) -> Vec<ParticipantId> {
        self.nodes[i].ring().members().to_vec()
    }

    /// Messages delivered at node `i`, in order.
    pub fn deliveries(&self, i: usize) -> &[Delivery] {
        &self.deliveries[i]
    }

    /// Configuration changes delivered at node `i`, in order.
    pub fn configs(&self, i: usize) -> &[ConfigChange] {
        &self.configs[i]
    }

    /// Direct access to a daemon.
    pub fn node(&self, i: usize) -> &MembershipDaemon {
        &self.nodes[i]
    }

    /// Number of queued in-flight events (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn cluster(n: u16) -> Cluster {
        Cluster::new(
            n,
            ProtocolConfig::default(),
            MembershipConfig::for_simulation(),
        )
    }

    #[test]
    fn cold_start_forms_full_ring() {
        let mut c = cluster(5);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        let expected: Vec<_> = (0..5).map(ParticipantId::new).collect();
        for i in 0..5 {
            assert_eq!(c.ring_of(i), expected, "node {i} ring");
            let configs = c.configs(i);
            assert!(!configs.is_empty());
            assert!(!configs.last().unwrap().transitional);
            assert_eq!(configs.last().unwrap().members, expected);
        }
    }

    #[test]
    fn messages_flow_after_formation() {
        let mut c = cluster(4);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        for i in 0..4 {
            c.submit(i, Bytes::from(format!("msg-{i}")), Service::Agreed);
        }
        c.run_for(20 * MS);
        let expected: Vec<_> = c.deliveries(0).iter().map(|d| d.payload.clone()).collect();
        assert_eq!(expected.len(), 4);
        for i in 1..4 {
            let got: Vec<_> = c.deliveries(i).iter().map(|d| d.payload.clone()).collect();
            assert_eq!(got, expected, "node {i} delivery order");
        }
    }

    #[test]
    fn safe_messages_flow_after_formation() {
        let mut c = cluster(3);
        c.run_for(30 * MS);
        c.submit(0, Bytes::from_static(b"safe"), Service::Safe);
        c.run_for(20 * MS);
        for i in 0..3 {
            assert_eq!(c.deliveries(i).len(), 1, "node {i}");
            assert_eq!(c.deliveries(i)[0].service, Service::Safe);
        }
    }

    #[test]
    fn single_token_loss_recovers_without_membership_change() {
        let mut c = cluster(3);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        let rings_before: u64 = (0..3).map(|i| c.node(i).stats().rings_formed).sum();
        c.drop_next_tokens(1);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        let rings_after: u64 = (0..3).map(|i| c.node(i).stats().rings_formed).sum();
        assert_eq!(rings_before, rings_after, "no new ring was formed");
        let retransmits: u64 = (0..3).map(|i| c.node(i).stats().tokens_retransmitted).sum();
        assert!(retransmits >= 1, "the retransmit timer repaired the loss");
        // And traffic still flows.
        c.submit(0, Bytes::from_static(b"after"), Service::Agreed);
        c.run_for(10 * MS);
        assert!(c.deliveries(2).iter().any(|d| d.payload == "after"));
    }

    #[test]
    fn crash_shrinks_the_ring() {
        let mut c = cluster(4);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        c.crash(2);
        c.run_for(60 * MS);
        assert!(c.all_operational());
        let expected: Vec<_> = [0u16, 1, 3]
            .iter()
            .map(|&i| ParticipantId::new(i))
            .collect();
        for i in [0usize, 1, 3] {
            assert_eq!(c.ring_of(i), expected, "node {i} ring after crash");
        }
        // Traffic still flows among survivors.
        c.submit(0, Bytes::from_static(b"post-crash"), Service::Agreed);
        c.run_for(10 * MS);
        assert!(c.deliveries(3).iter().any(|d| d.payload == "post-crash"));
    }

    #[test]
    fn partition_forms_two_rings() {
        let mut c = cluster(6);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        c.partition(&[&[0, 1, 2], &[3, 4, 5]]);
        c.run_for(60 * MS);
        assert!(c.all_operational());
        let left: Vec<_> = (0..3u16).map(ParticipantId::new).collect();
        let right: Vec<_> = (3..6u16).map(ParticipantId::new).collect();
        for i in 0..3 {
            assert_eq!(c.ring_of(i), left, "left node {i}");
        }
        for i in 3..6 {
            assert_eq!(c.ring_of(i), right, "right node {i}");
        }
        // Each side orders its own traffic.
        c.submit(0, Bytes::from_static(b"left"), Service::Agreed);
        c.submit(3, Bytes::from_static(b"right"), Service::Agreed);
        c.run_for(20 * MS);
        assert!(c.deliveries(1).iter().any(|d| d.payload == "left"));
        assert!(!c.deliveries(1).iter().any(|d| d.payload == "right"));
        assert!(c.deliveries(4).iter().any(|d| d.payload == "right"));
    }

    #[test]
    fn merge_after_heal() {
        let mut c = cluster(4);
        c.run_for(30 * MS);
        c.partition(&[&[0, 1], &[2, 3]]);
        c.run_for(60 * MS);
        assert!(c.all_operational());
        assert_eq!(c.ring_of(0).len(), 2);
        c.heal();
        c.run_for(80 * MS);
        assert!(c.all_operational());
        let expected: Vec<_> = (0..4u16).map(ParticipantId::new).collect();
        for i in 0..4 {
            assert_eq!(c.ring_of(i), expected, "node {i} after merge");
        }
        c.submit(2, Bytes::from_static(b"merged"), Service::Agreed);
        c.run_for(20 * MS);
        for i in 0..4 {
            assert!(
                c.deliveries(i).iter().any(|d| d.payload == "merged"),
                "node {i} got the post-merge message"
            );
        }
    }

    #[test]
    fn evs_config_sequences_are_consistent() {
        // All members of each regular configuration deliver that
        // configuration with identical membership.
        let mut c = cluster(4);
        c.run_for(30 * MS);
        c.partition(&[&[0, 1], &[2, 3]]);
        c.run_for(60 * MS);
        c.heal();
        c.run_for(80 * MS);
        // Collect regular configs per node.
        for i in 0..4 {
            let regs: Vec<_> = c.configs(i).iter().filter(|cc| !cc.transitional).collect();
            assert!(regs.len() >= 2, "node {i} saw initial + post-merge configs");
            // Each regular config this node delivered includes the node.
            for cc in &regs {
                assert!(
                    cc.members.contains(&ParticipantId::new(i as u16)),
                    "config includes its deliverer"
                );
            }
        }
        // The final config is identical everywhere.
        let last0 = c.configs(0).last().unwrap().clone();
        for i in 1..4 {
            assert_eq!(c.configs(i).last().unwrap().ring_id, last0.ring_id);
            assert_eq!(c.configs(i).last().unwrap().members, last0.members);
        }
    }

    #[test]
    fn transitional_config_delivered_on_membership_change() {
        let mut c = cluster(3);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        c.crash(2);
        c.run_for(60 * MS);
        for i in [0usize, 1] {
            let transitional: Vec<_> = c.configs(i).iter().filter(|cc| cc.transitional).collect();
            assert!(
                !transitional.is_empty(),
                "node {i} delivered a transitional config"
            );
            let t = transitional.last().unwrap();
            // The transitional configuration contains only survivors of the
            // old ring that continued together.
            assert!(t.members.contains(&ParticipantId::new(i as u16)));
            assert!(!t.members.contains(&ParticipantId::new(2)));
        }
    }

    #[test]
    fn crashed_node_rejoins_after_restart() {
        let mut c = cluster(4);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        c.crash(1);
        c.run_for(60 * MS);
        assert_eq!(c.ring_of(0).len(), 3, "survivors shrank the ring");
        c.restart(1);
        c.run_for(60 * MS);
        assert!(c.all_operational());
        let expected: Vec<_> = (0..4u16).map(ParticipantId::new).collect();
        for i in 0..4 {
            assert_eq!(c.ring_of(i), expected, "node {i} sees the full ring again");
        }
        // The rejoined node participates in ordering.
        c.submit(1, Bytes::from_static(b"back"), Service::Safe);
        c.run_for(20 * MS);
        for i in 0..4 {
            assert!(
                c.deliveries(i).iter().any(|d| d.payload == "back"),
                "node {i} received the rejoined node's message"
            );
        }
    }

    #[test]
    fn restart_storm_converges() {
        let mut c = cluster(5);
        c.run_for(30 * MS);
        // Crash and restart several nodes in quick succession.
        c.crash(1);
        c.crash(3);
        c.run_for(10 * MS);
        c.restart(1);
        c.run_for(5 * MS);
        c.restart(3);
        c.run_for(100 * MS);
        assert!(c.all_operational());
        assert_eq!(c.ring_of(0).len(), 5, "everyone back in one ring");
    }

    #[test]
    fn token_loss_during_reformation_still_converges() {
        // Lose a burst of ordering tokens exactly while membership is
        // re-forming (Gather/Commit after a crash): the commit phase must
        // not wedge, and the new ring's initial token must regenerate.
        let mut c = cluster(4);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        c.crash(2);
        c.drop_next_tokens(8);
        c.run_for(120 * MS);
        assert!(c.all_operational());
        assert_eq!(c.ring_of(0).len(), 3);
        c.submit(0, Bytes::from_static(b"post-burst"), Service::Agreed);
        c.run_for(20 * MS);
        for i in [0usize, 1, 3] {
            assert!(
                c.deliveries(i).iter().any(|d| d.payload == "post-burst"),
                "node {i} delivers after the token burst"
            );
        }
    }

    #[test]
    fn token_holder_crash_mid_rotation_recovers() {
        // Crash the daemon the token was just sent to: the token dies with
        // it, the survivors' token-loss timeout fires, and a 3-ring forms.
        let mut c = cluster(4);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        let (_, holder) = c.last_token_route().expect("token is rotating");
        c.crash(holder);
        c.run_for(120 * MS);
        assert!(c.all_operational());
        let survivors: Vec<usize> = (0..4).filter(|&i| i != holder).collect();
        for &i in &survivors {
            assert_eq!(c.ring_of(i).len(), 3, "node {i} ring after holder crash");
            assert!(!c.ring_of(i).contains(&ParticipantId::new(holder as u16)));
        }
        c.submit(
            survivors[0],
            Bytes::from_static(b"sans-holder"),
            Service::Safe,
        );
        c.run_for(20 * MS);
        for &i in &survivors {
            assert!(
                c.deliveries(i).iter().any(|d| d.payload == "sans-holder"),
                "node {i} delivers without the crashed holder"
            );
        }
    }

    #[test]
    fn partition_isolating_single_daemon_forms_singleton() {
        let mut c = cluster(5);
        c.run_for(30 * MS);
        assert!(c.all_operational());
        c.partition(&[&[2], &[0, 1, 3, 4]]);
        c.run_for(80 * MS);
        assert!(c.all_operational());
        // The isolated daemon runs a singleton ring and still self-delivers.
        assert_eq!(c.ring_of(2), vec![ParticipantId::new(2)]);
        c.submit(2, Bytes::from_static(b"alone"), Service::Agreed);
        c.run_for(20 * MS);
        assert!(c.deliveries(2).iter().any(|d| d.payload == "alone"));
        // The majority side excludes it and keeps ordering.
        for i in [0usize, 1, 3, 4] {
            assert_eq!(c.ring_of(i).len(), 4, "node {i} majority ring");
            assert!(!c.deliveries(i).iter().any(|d| d.payload == "alone"));
        }
        // After healing, one ring again; the singleton's message stays
        // confined to its old configuration.
        c.heal();
        c.run_for(100 * MS);
        assert!(c.all_operational());
        for i in 0..5 {
            assert_eq!(c.ring_of(i).len(), 5, "node {i} after heal");
        }
    }

    #[test]
    fn messages_in_flight_at_partition_delivered_consistently() {
        let mut c = cluster(4);
        c.run_for(30 * MS);
        // Submit and immediately partition, so some messages are recovered
        // in the transitional configuration.
        for i in 0..4 {
            c.submit(i, Bytes::from(format!("inflight-{i}")), Service::Agreed);
        }
        c.run_for(200_000); // 0.2 ms: messages sent but maybe not all stable
        c.partition(&[&[0, 1], &[2, 3]]);
        c.run_for(80 * MS);
        assert!(c.all_operational());
        // Within each side, delivery sequences agree on the shared prefix
        // of old-ring messages.
        let d0: Vec<_> = c.deliveries(0).iter().map(|d| d.payload.clone()).collect();
        let d1: Vec<_> = c.deliveries(1).iter().map(|d| d.payload.clone()).collect();
        let common = d0.len().min(d1.len());
        assert_eq!(d0[..common], d1[..common], "left side agrees");
        let d2: Vec<_> = c.deliveries(2).iter().map(|d| d.payload.clone()).collect();
        let d3: Vec<_> = c.deliveries(3).iter().map(|d| d.payload.clone()).collect();
        let common = d2.len().min(d3.len());
        assert_eq!(d2[..common], d3[..common], "right side agrees");
    }
}
