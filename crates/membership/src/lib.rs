//! # accelring-membership
//!
//! A Totem-style membership algorithm with Extended Virtual Synchrony (EVS)
//! configuration delivery, completing the system model of "Fast Total
//! Ordering for Modern Data Centers": the ordering protocol in
//! `accelring-core` handles the normal case; this crate handles token loss,
//! crashes, partitions, and merges.
//!
//! The algorithm follows Totem's structure (the paper reuses Spread's
//! Totem-derived membership unchanged): **Gather** reaches consensus on a
//! (processes, failed) pair via join messages; **Commit** circulates a
//! commit token twice around the forming ring; **Recover** exchanges the
//! dissolving rings' messages so all transitional members deliver the same
//! set, then delivers the transitional and regular configuration changes
//! required by EVS. One simplification relative to Totem is documented in
//! DESIGN.md: recovery floods old-ring messages directly instead of
//! re-sequencing them through the new ring's token, with an explicit
//! recovery-done barrier; the delivered guarantees are the same under the
//! non-Byzantine model.
//!
//! ## Example
//!
//! ```
//! use accelring_membership::testing::Cluster;
//! use accelring_membership::MembershipConfig;
//! use accelring_core::{ProtocolConfig, Service};
//! use bytes::Bytes;
//!
//! let mut cluster = Cluster::new(4, ProtocolConfig::default(), MembershipConfig::for_simulation());
//! cluster.run_for(30_000_000);
//! assert!(cluster.all_operational());
//!
//! cluster.submit(0, Bytes::from_static(b"hello"), Service::Agreed);
//! cluster.run_for(10_000_000);
//! assert!(cluster.deliveries(3).iter().any(|d| &d.payload[..] == b"hello"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod msg;
pub mod testing;

pub use config::MembershipConfig;
pub use daemon::{
    ConfigChange, Input, MembershipDaemon, MembershipStats, Output, StateKind, TimerKind,
};
pub use msg::{decode_control, encode_control, CommitToken, ControlMessage, MemberInfo};
