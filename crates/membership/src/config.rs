//! Membership timing parameters.

use std::fmt;

/// Timeouts governing failure detection and membership formation, in
/// nanoseconds of whatever clock the runtime feeds the daemon (simulated or
/// wall time).
///
/// The defaults suit the simulator's microsecond-scale rings; real UDP
/// deployments should scale them up (see [`MembershipConfig::for_wall_clock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// No token for this long in Operational state ⇒ assume the ring is
    /// broken and start forming a new membership.
    pub token_loss_timeout: u64,
    /// After sending the token, retransmit it if no successor activity is
    /// seen for this long (recovers isolated token loss without a full
    /// membership change).
    pub token_retransmit_timeout: u64,
    /// Rebroadcast our join message at this interval while gathering.
    pub join_interval: u64,
    /// Processes that have not answered with a join within this long are
    /// added to the fail set.
    pub consensus_timeout: u64,
    /// A commit token missing for this long aborts the attempt and
    /// regathers.
    pub commit_timeout: u64,
    /// Recovery barrier not completed within this long ⇒ regather.
    pub recovery_timeout: u64,
    /// Operational daemons broadcast a presence beacon at this interval so
    /// partitioned-but-idle rings can discover each other and merge.
    pub presence_interval: u64,
    /// Joins are collected for this long (and until the sets stop
    /// changing) before consensus is evaluated, so that in-flight join
    /// rebroadcasts cannot race a forming ring back into Gather.
    pub gather_settle: u64,
}

impl MembershipConfig {
    /// Defaults tuned for simulated time (microsecond-scale token rounds).
    pub fn for_simulation() -> MembershipConfig {
        MembershipConfig {
            token_loss_timeout: 3_000_000,       // 3 ms
            token_retransmit_timeout: 1_000_000, // 1 ms
            join_interval: 1_000_000,            // 1 ms
            consensus_timeout: 5_000_000,        // 5 ms
            commit_timeout: 5_000_000,           // 5 ms
            recovery_timeout: 20_000_000,        // 20 ms
            presence_interval: 2_000_000,        // 2 ms
            gather_settle: 1_000_000,            // 1 ms
        }
    }

    /// Defaults for real networks (milliseconds-scale, comparable to
    /// Spread's defaults).
    pub fn for_wall_clock() -> MembershipConfig {
        MembershipConfig {
            token_loss_timeout: 700_000_000,       // 700 ms
            token_retransmit_timeout: 150_000_000, // 150 ms
            join_interval: 100_000_000,            // 100 ms
            consensus_timeout: 1_000_000_000,      // 1 s
            commit_timeout: 1_000_000_000,         // 1 s
            recovery_timeout: 5_000_000_000,       // 5 s
            presence_interval: 500_000_000,        // 500 ms
            gather_settle: 200_000_000,            // 200 ms
        }
    }

    /// Scales every timeout by an integer factor (useful for stress tests).
    pub fn scaled(mut self, factor: u64) -> MembershipConfig {
        self.token_loss_timeout *= factor;
        self.token_retransmit_timeout *= factor;
        self.join_interval *= factor;
        self.consensus_timeout *= factor;
        self.commit_timeout *= factor;
        self.recovery_timeout *= factor;
        self.presence_interval *= factor;
        self.gather_settle *= factor;
        self
    }
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig::for_simulation()
    }
}

impl fmt::Display for MembershipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "token-loss {}ns, retransmit {}ns, join {}ns, consensus {}ns",
            self.token_loss_timeout,
            self.token_retransmit_timeout,
            self.join_interval,
            self.consensus_timeout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let c = MembershipConfig::for_simulation();
        assert!(c.token_retransmit_timeout < c.token_loss_timeout);
        assert!(c.join_interval <= c.consensus_timeout);
        assert!(c.recovery_timeout >= c.commit_timeout);
    }

    #[test]
    fn wall_clock_is_slower() {
        let sim = MembershipConfig::for_simulation();
        let wall = MembershipConfig::for_wall_clock();
        assert!(wall.token_loss_timeout > sim.token_loss_timeout);
    }

    #[test]
    fn scaling() {
        let c = MembershipConfig::for_simulation().scaled(2);
        assert_eq!(
            c.token_loss_timeout,
            MembershipConfig::for_simulation().token_loss_timeout * 2
        );
    }

    #[test]
    fn display_nonempty() {
        assert!(!MembershipConfig::default().to_string().is_empty());
    }
}
