//! End-to-end tests of the real UDP transport: actual sockets on
//! 127.0.0.1, real threads, real wall-clock timers.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use accelring_core::{ProtocolConfig, Service};
use accelring_membership::MembershipConfig;
use accelring_transport::{spawn_local_ring, AppEvent};
use bytes::Bytes;

/// Wall-clock timeouts small enough for fast tests but large enough to be
/// robust on a loaded CI machine.
fn test_membership_config() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,      // 300 ms
        token_retransmit_timeout: 80_000_000, // 80 ms
        join_interval: 30_000_000,            // 30 ms
        consensus_timeout: 250_000_000,       // 250 ms
        commit_timeout: 250_000_000,          // 250 ms
        recovery_timeout: 1_000_000_000,      // 1 s
        presence_interval: 100_000_000,       // 100 ms
        gather_settle: 60_000_000,            // 60 ms
    }
}

/// Collects events from a handle until `count` deliveries arrive or the
/// deadline passes.
fn collect_deliveries(
    handle: &accelring_transport::NodeHandle,
    count: usize,
    deadline: Duration,
) -> Vec<(u16, Bytes)> {
    let start = Instant::now();
    let mut got = Vec::new();
    while got.len() < count && start.elapsed() < deadline {
        match handle.events().recv_timeout(Duration::from_millis(100)) {
            Ok(AppEvent::Delivered(d)) => got.push((d.sender.as_u16(), d.payload)),
            Ok(AppEvent::Config(_)) => {}
            Ok(AppEvent::Fault { reason }) => panic!("node thread died: {reason}"),
            Err(_) => {}
        }
    }
    got
}

#[test]
fn udp_ring_delivers_total_order() {
    let handles = spawn_local_ring(
        4,
        ProtocolConfig::accelerated(20, 15),
        test_membership_config(),
    )
    .expect("spawn ring");

    // Wait for the ring to form (first regular config containing everyone).
    let start = Instant::now();
    let mut formed = false;
    while start.elapsed() < Duration::from_secs(10) {
        if let Ok(AppEvent::Config(c)) =
            handles[0].events().recv_timeout(Duration::from_millis(200))
        {
            if !c.transitional && c.members.len() == 4 {
                formed = true;
                break;
            }
        }
    }
    assert!(formed, "ring of 4 must form within 10 seconds");

    // Every daemon sends a burst of messages.
    let per_sender = 25;
    for (i, h) in handles.iter().enumerate() {
        for k in 0..per_sender {
            h.submit(
                Bytes::from(format!("{i}:{k}")),
                if k % 5 == 0 {
                    Service::Safe
                } else {
                    Service::Agreed
                },
            )
            .expect("submit");
        }
    }

    let expected = handles.len() * per_sender;
    let orders: Vec<Vec<(u16, Bytes)>> = handles
        .iter()
        .map(|h| collect_deliveries(h, expected, Duration::from_secs(20)))
        .collect();

    for (i, order) in orders.iter().enumerate() {
        assert_eq!(order.len(), expected, "node {i} delivered everything");
        assert_eq!(order, &orders[0], "node {i} delivery order matches node 0");
    }

    // FIFO per sender within the total order.
    let mut last_seen: HashMap<u16, i64> = HashMap::new();
    for (sender, payload) in &orders[0] {
        let text = std::str::from_utf8(payload).unwrap();
        let k: i64 = text.split(':').nth(1).unwrap().parse().unwrap();
        let prev = last_seen.insert(*sender, k);
        assert!(prev.unwrap_or(-1) < k, "sender {sender} FIFO order");
    }

    for h in handles {
        h.shutdown();
    }
}

#[test]
fn udp_singleton_ring_works() {
    let handles = spawn_local_ring(
        1,
        ProtocolConfig::accelerated(10, 5),
        test_membership_config(),
    )
    .expect("spawn singleton");
    handles[0]
        .submit(Bytes::from_static(b"solo"), Service::Safe)
        .expect("submit");
    let got = collect_deliveries(&handles[0], 1, Duration::from_secs(10));
    assert_eq!(got.len(), 1);
    assert_eq!(&got[0].1[..], b"solo");
}

#[test]
fn udp_ring_original_protocol_also_works() {
    let handles = spawn_local_ring(3, ProtocolConfig::original(20), test_membership_config())
        .expect("spawn ring");
    for h in &handles {
        h.submit(Bytes::from_static(b"orig"), Service::Agreed)
            .expect("submit");
    }
    let got = collect_deliveries(&handles[2], 3, Duration::from_secs(15));
    assert_eq!(got.len(), 3, "all three messages delivered");
}

#[test]
fn udp_ring_survives_garbage_datagrams() {
    use accelring_core::ParticipantId;
    use accelring_transport::{AddressBook, BoundNode, NodeAddr, Transport};
    use std::net::UdpSocket;

    // Build the ring manually so we know the addresses to attack. Pinned
    // to UDP regardless of ACCELRING_TRANSPORT: the attack below needs a
    // kernel socket that can actually reach the ring's addresses.
    let bound: Vec<BoundNode> = (0..3)
        .map(|i| BoundNode::bind_on(Transport::Udp, ParticipantId::new(i), "127.0.0.1").unwrap())
        .collect();
    let addrs: Vec<NodeAddr> = bound.iter().map(|b| b.addr().unwrap()).collect();
    let book = AddressBook::new(addrs.clone());
    let handles: Vec<_> = bound
        .into_iter()
        .map(|b| {
            b.start(
                book.clone(),
                ProtocolConfig::accelerated(10, 5),
                test_membership_config(),
            )
            .unwrap()
        })
        .collect();

    // Blast junk at every data and token socket while the ring forms.
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    for _ in 0..50 {
        for a in &addrs {
            let _ = attacker.send_to(b"\xde\xad\xbe\xef not a protocol message", a.data);
            let _ = attacker.send_to(&[0u8; 3], a.token);
            // Correct magic but truncated body.
            let mut near_valid = accelring_core::wire::MAGIC.to_le_bytes().to_vec();
            near_valid.push(1); // version
            near_valid.push(1); // kind = data, then nothing
            let _ = attacker.send_to(&near_valid, a.data);
        }
    }

    // The ring still forms and orders traffic.
    handles[0]
        .submit(Bytes::from_static(b"through the noise"), Service::Agreed)
        .expect("submit");
    let got = collect_deliveries(&handles[2], 1, Duration::from_secs(15));
    assert_eq!(got.len(), 1);
    assert_eq!(&got[0].1[..], b"through the noise");

    // The junk was counted, not silently discarded.
    let stats = handles[0].stats();
    assert!(
        stats.decode_failures > 0,
        "garbage datagrams must show up in stats: {stats:?}"
    );
    assert!(stats.datagrams_rx > stats.decode_failures);
    assert_eq!(stats.submissions, 1);
}
