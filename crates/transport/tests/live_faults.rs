//! Live fault-path tests: real sockets and threads, with faults injected
//! through the [`FaultPlane`] interposer or the node's own fault hooks.
//!
//! The tests serialize themselves through a file-local mutex: each times
//! a real ring against real timeouts, and concurrent rings skew each
//! other's clocks.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use std::collections::BTreeSet;
use std::net::{SocketAddr, UdpSocket};

use accelring_core::{ParticipantId, ProtocolConfig, Service};
use accelring_membership::MembershipConfig;
use accelring_transport::{
    spawn_local_ring_with, AddressBook, AppEvent, DatagramSocket, FaultPlane, InterposedSocket,
    NodeAddr, NodeHandle, SocketClass,
};
use bytes::Bytes;

/// Serializes the tests in this file even under the default parallel test
/// runner: each spins a real ring against real timers, and concurrent
/// rings starve each other of CPU on small machines.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Base wall-clock config used by the transport test suite.
fn test_membership_config() -> MembershipConfig {
    MembershipConfig {
        token_loss_timeout: 300_000_000,      // 300 ms
        token_retransmit_timeout: 80_000_000, // 80 ms
        join_interval: 30_000_000,            // 30 ms
        consensus_timeout: 250_000_000,       // 250 ms
        commit_timeout: 250_000_000,          // 250 ms
        recovery_timeout: 1_000_000_000,      // 1 s
        presence_interval: 100_000_000,       // 100 ms
        gather_settle: 60_000_000,            // 60 ms
    }
}

/// Waits until `handle` reports a regular configuration of exactly
/// `members` members, returning how long it took.
fn await_ring_of(handle: &NodeHandle, members: usize, deadline: Duration) -> Option<Duration> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        match handle.events().recv_timeout(Duration::from_millis(50)) {
            Ok(AppEvent::Config(c)) if !c.transitional && c.members.len() == members => {
                return Some(start.elapsed());
            }
            Ok(_) | Err(_) => {}
        }
    }
    None
}

#[test]
fn graceful_leave_reforms_faster_than_token_loss_timeout() {
    let _serial = serial();
    // A deliberately huge token-loss timeout: if the survivors only
    // noticed the departure by losing the token, reformation would take
    // at least 5 seconds. The departure announcement must beat that.
    let mut membership = test_membership_config();
    membership.token_loss_timeout = 5_000_000_000; // 5 s

    let mut handles =
        spawn_local_ring_with(3, ProtocolConfig::accelerated(20, 15), membership, None)
            .expect("spawn ring");
    assert!(
        await_ring_of(&handles[0], 3, Duration::from_secs(10)).is_some(),
        "ring of 3 must form"
    );

    let leaver = handles.pop().expect("three handles");
    let t0 = Instant::now();
    let _drained = leaver.leave(Duration::from_millis(200));
    let reform = await_ring_of(&handles[0], 2, Duration::from_secs(6))
        .expect("survivors must reform after a graceful leave");
    let total = t0.elapsed();
    assert!(
        total < Duration::from_millis(2500),
        "announced departure must reform well before the 5 s token-loss \
         timeout; took {total:?} (config seen after {reform:?})"
    );

    // The reformed pair still orders traffic.
    handles[0]
        .submit(Bytes::from_static(b"after the leave"), Service::Agreed)
        .expect("submit");
    let start = Instant::now();
    let mut delivered = false;
    while start.elapsed() < Duration::from_secs(5) && !delivered {
        if let Ok(AppEvent::Delivered(d)) =
            handles[1].events().recv_timeout(Duration::from_millis(50))
        {
            delivered = &d.payload[..] == b"after the leave";
        }
    }
    assert!(delivered, "survivors still deliver after the leave");
}

#[test]
fn token_socket_loss_is_repaired_by_retransmit_not_reformation() {
    let _serial = serial();
    // Room for several retransmit rounds (80 ms each) before token loss
    // would be declared.
    let mut membership = test_membership_config();
    membership.token_loss_timeout = 1_200_000_000; // 1.2 s

    let plane = Arc::new(FaultPlane::new(7));
    let handles = spawn_local_ring_with(
        3,
        ProtocolConfig::accelerated(20, 15),
        membership,
        Some(Arc::clone(&plane)),
    )
    .expect("spawn ring");
    assert!(
        await_ring_of(&handles[0], 3, Duration::from_secs(10)).is_some(),
        "ring of 3 must form"
    );
    // Node 0's Config event races the slowest node's Recover→Operational
    // transition; drops armed mid-recovery would hit recovery tokens,
    // which the Operational retransmit timer does not cover.
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(5)
        && !handles
            .iter()
            .all(|h| h.membership_state() == accelring_membership::StateKind::Operational)
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(200));
    let rings_before: u64 = handles.iter().map(NodeHandle::rings_formed).sum();

    // Eat the next few token transmissions — data packets are untouched.
    // A dropped token silences the rotation (the successor never sees
    // it), so only the holder's retransmit timer can revive it; each
    // revival is eaten too until the budget runs out, which is why the
    // budget drains at retransmit-timer cadence rather than instantly.
    plane.drop_next_tokens(3);
    let start = Instant::now();
    loop {
        let retransmits: u64 = handles.iter().map(NodeHandle::tokens_retransmitted).sum();
        if retransmits > 0 && plane.stats().tokens_dropped >= 3 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "retransmit timer never fired: plane={:?} retransmits={retransmits}",
            plane.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The revived token still orders traffic — and the ring never reformed.
    handles[1]
        .submit(Bytes::from_static(b"through the gap"), Service::Agreed)
        .expect("submit");
    let start = Instant::now();
    let mut delivered = false;
    while start.elapsed() < Duration::from_secs(8) && !delivered {
        if let Ok(AppEvent::Delivered(d)) =
            handles[2].events().recv_timeout(Duration::from_millis(50))
        {
            delivered = &d.payload[..] == b"through the gap";
        }
    }
    assert!(delivered, "delivery must complete after the token revives");

    let rings_after: u64 = handles.iter().map(NodeHandle::rings_formed).sum();
    assert_eq!(
        rings_before, rings_after,
        "token-socket loss must be repaired without reforming the ring"
    );
}

/// Two-node harness for comparing the single-send and batched send paths
/// under an identically seeded [`FaultPlane`]: a sender socket wrapped in
/// an [`InterposedSocket`] and a plain receiver socket.
struct FatePath {
    plane: Arc<FaultPlane>,
    sender: InterposedSocket,
    receiver: UdpSocket,
    dest: SocketAddr,
}

impl FatePath {
    fn new(seed: u64) -> FatePath {
        let sender_sock = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let receiver = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
        sender_sock.set_nonblocking(true).expect("nonblocking");
        receiver.set_nonblocking(true).expect("nonblocking");
        let dest = receiver.local_addr().expect("receiver addr");

        let plane = FaultPlane::new(seed);
        // Both nodes' data and token slots must resolve in the plane's
        // address map for partition rules to apply; the unused token
        // addresses just point back at the same sockets.
        plane.register_book(&AddressBook::new(vec![
            NodeAddr {
                pid: ParticipantId::new(0),
                data: sender_sock.local_addr().expect("sender addr"),
                token: sender_sock.local_addr().expect("sender addr"),
            },
            NodeAddr {
                pid: ParticipantId::new(1),
                data: dest,
                token: dest,
            },
        ]));
        let sender = InterposedSocket::new(
            sender_sock,
            ParticipantId::new(0),
            SocketClass::Data,
            Arc::clone(&plane),
        );
        FatePath {
            plane,
            sender,
            receiver,
            dest,
        }
    }

    /// Drains the receiver until it stays quiet, returning the set of
    /// one-byte payload tags that arrived.
    fn drain(&self) -> BTreeSet<u8> {
        let mut got = BTreeSet::new();
        let mut quiet_since = Instant::now();
        let mut buf = [0u8; 64];
        while quiet_since.elapsed() < Duration::from_millis(150) {
            match self.receiver.recv_from(&mut buf) {
                Ok((len, _)) => {
                    assert_eq!(len, 1, "test datagrams are one tag byte");
                    got.insert(buf[0]);
                    quiet_since = Instant::now();
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        got
    }
}

/// The batched send path must be observationally identical to the
/// single-send path under fault injection: the plane consults its seeded
/// random source exactly once per datagram either way, so two planes with
/// the same seed and the same rules must drop, pass, and count the same
/// datagrams — whether those datagrams go out one `send_to` at a time or
/// as one `send_batch` burst.
#[test]
fn fault_semantics_identical_through_batched_send_path() {
    let _serial = serial();
    let tags: Vec<Bytes> = (0u8..48).map(|t| Bytes::from(vec![t])).collect();

    // Phase 1: heavy random loss.
    let single = FatePath::new(42);
    let batched = FatePath::new(42);
    single.plane.set_loss(0.5, 0.0);
    batched.plane.set_loss(0.5, 0.0);

    for tag in &tags {
        let _ = single.sender.send_to(tag, single.dest);
    }
    let batch: Vec<(Bytes, SocketAddr)> = tags.iter().map(|t| (t.clone(), batched.dest)).collect();
    let out = batched.sender.send_batch(&batch);
    assert_eq!(out.errors, 0, "loopback batch must not error");
    assert!(
        out.syscalls < tags.len() as u64,
        "batched path must actually batch: {} syscalls for {} datagrams",
        out.syscalls,
        tags.len()
    );

    let arrived_single = single.drain();
    let arrived_batched = batched.drain();
    assert!(
        !arrived_single.is_empty() && arrived_single.len() < tags.len(),
        "0.5 loss over 48 datagrams must drop some and pass some"
    );
    assert_eq!(
        arrived_single, arrived_batched,
        "same seed + same loss rule must fate the same datagrams"
    );
    assert_eq!(
        single.plane.stats().data_dropped,
        batched.plane.stats().data_dropped,
        "loss accounting must match across send paths"
    );

    // Phase 2: partition blocks everything, on both paths alike.
    single.plane.set_loss(0.0, 0.0);
    batched.plane.set_loss(0.0, 0.0);
    single.plane.partition(&[vec![0], vec![1]]);
    batched.plane.partition(&[vec![0], vec![1]]);
    for tag in &tags {
        let _ = single.sender.send_to(tag, single.dest);
    }
    let out = batched.sender.send_batch(&batch);
    assert_eq!(out.sent, tags.len(), "fate-dropped still counts as sent");
    assert!(single.drain().is_empty(), "partition must block send_to");
    assert!(
        batched.drain().is_empty(),
        "partition must block send_batch"
    );
    assert_eq!(
        single.plane.stats().partition_dropped,
        batched.plane.stats().partition_dropped,
        "partition accounting must match across send paths"
    );

    // Phase 3: heal — every datagram flows again through both paths.
    single.plane.heal();
    batched.plane.heal();
    for tag in &tags {
        let _ = single.sender.send_to(tag, single.dest);
    }
    batched.sender.send_batch(&batch);
    let all: BTreeSet<u8> = (0u8..48).collect();
    assert_eq!(single.drain(), all, "healed plane passes all via send_to");
    assert_eq!(
        batched.drain(),
        all,
        "healed plane passes all via send_batch"
    );
}

/// Every pooled buffer must come home after a ring tears down: recv
/// leases pinned by in-flight deliveries, encode-once fanout slices, and
/// FaultPlane-held copies all drop with the handles and channels. A
/// nonzero residue is a leak in the zero-copy datapath.
#[test]
fn pooled_buffers_all_return_after_ring_shutdown() {
    let _serial = serial();
    let handles = spawn_local_ring_with(
        3,
        ProtocolConfig::accelerated(20, 15),
        test_membership_config(),
        None,
    )
    .expect("spawn ring");
    assert!(
        await_ring_of(&handles[0], 3, Duration::from_secs(10)).is_some(),
        "ring of 3 must form"
    );
    let probes: Vec<_> = handles.iter().map(NodeHandle::probe).collect();

    // Push enough ordered traffic through that pool buffers actually
    // cycle: submissions, fanout, token rotations, deliveries.
    for i in 0u32..200 {
        let payload = Bytes::from(i.to_le_bytes().to_vec());
        let _ = handles[(i % 3) as usize].submit(payload, Service::Agreed);
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let start = Instant::now();
    let mut delivered = 0u32;
    while start.elapsed() < Duration::from_secs(10) && delivered < 200 {
        if let Ok(AppEvent::Delivered(_)) =
            handles[0].events().recv_timeout(Duration::from_millis(50))
        {
            delivered += 1;
        }
    }
    assert!(delivered > 0, "ring must deliver under load");

    for h in handles {
        h.shutdown();
    }
    // Delivery payloads pin recv-pool leases until dropped; the channels
    // died with the handles, so the pools must drain promptly.
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut outstanding: u64 = probes.iter().map(|p| p.pool_outstanding()).sum();
    while outstanding > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        outstanding = probes.iter().map(|p| p.pool_outstanding()).sum();
    }
    assert_eq!(outstanding, 0, "pooled buffers leaked past ring shutdown");
}

#[test]
fn panic_in_event_loop_is_contained_and_reported() {
    let _serial = serial();
    let handles = spawn_local_ring_with(
        3,
        ProtocolConfig::accelerated(20, 15),
        test_membership_config(),
        None,
    )
    .expect("spawn ring");
    assert!(
        await_ring_of(&handles[0], 3, Duration::from_secs(10)).is_some(),
        "ring of 3 must form"
    );

    handles[1].inject_panic();

    // The panic is caught, counted, and surfaced as a terminal event.
    let start = Instant::now();
    let mut fault_reason = None;
    while start.elapsed() < Duration::from_secs(5) && fault_reason.is_none() {
        if let Ok(AppEvent::Fault { reason }) =
            handles[1].events().recv_timeout(Duration::from_millis(50))
        {
            fault_reason = Some(reason);
        }
    }
    let reason = fault_reason.expect("panic must surface as AppEvent::Fault");
    assert!(
        reason.contains("fault injection"),
        "fault event carries the panic context, got: {reason}"
    );
    assert_eq!(handles[1].stats().thread_panics, 1);

    // The process survives and the other daemons keep running; they will
    // reform without the dead node once its token silence is noticed.
    assert!(handles[0].is_alive());
    assert!(handles[2].is_alive());
    assert!(
        await_ring_of(&handles[0], 2, Duration::from_secs(10)).is_some(),
        "survivors reform after a peer's thread panics"
    );
}
