//! # accelring-transport
//!
//! A single-threaded UDP runtime for the Accelerated Ring stack: one OS
//! thread per daemon drives the ordering protocol and the membership
//! algorithm over two non-blocking UDP sockets, exactly like the paper's
//! daemon implementations (Section III-E):
//!
//! * the token travels on its own port and socket, so the runtime can read
//!   token and data in the protocol's priority order, and the token is
//!   never lost to a full data buffer;
//! * logical multicast is realized as unicast fan-out to every peer (the
//!   option Spread offers when IP-multicast is unavailable), which also
//!   makes localhost test rings trivial to set up.
//!
//! ## Example: a three-daemon ring on localhost
//!
//! ```no_run
//! use accelring_core::{ParticipantId, ProtocolConfig, Service};
//! use accelring_membership::MembershipConfig;
//! use accelring_transport::{spawn_local_ring, AppEvent};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handles = spawn_local_ring(3, ProtocolConfig::default(), MembershipConfig::for_wall_clock())?;
//! handles[0].submit(Bytes::from_static(b"hello"), Service::Agreed)?;
//! if let Ok(AppEvent::Delivered(d)) = handles[2].events().recv() {
//!     println!("delivered {:?}", d.payload);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod node;

pub use addr::{AddressBook, NodeAddr};
pub use node::{AppEvent, BoundNode, NodeHandle, SubmitError, TransportError, TransportStats};

use accelring_core::{ParticipantId, ProtocolConfig};
use accelring_membership::MembershipConfig;

/// Convenience: binds and starts `n` daemons on 127.0.0.1 with ephemeral
/// ports, fully meshed, and returns their handles.
///
/// # Errors
///
/// Returns [`TransportError`] if any socket operation fails.
pub fn spawn_local_ring(
    n: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
) -> Result<Vec<NodeHandle>, TransportError> {
    let bound: Vec<BoundNode> = (0..n)
        .map(|i| BoundNode::bind(ParticipantId::new(i), "127.0.0.1"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<NodeAddr> = bound
        .iter()
        .map(BoundNode::addr)
        .collect::<Result<_, _>>()?;
    let book = AddressBook::new(addrs);
    bound
        .into_iter()
        .map(|b| b.start(book.clone(), protocol, membership))
        .collect()
}
