//! # accelring-transport
//!
//! A single-threaded UDP runtime for the Accelerated Ring stack: one OS
//! thread per daemon drives the ordering protocol and the membership
//! algorithm over two non-blocking UDP sockets, exactly like the paper's
//! daemon implementations (Section III-E):
//!
//! * the token travels on its own port and socket, so the runtime can read
//!   token and data in the protocol's priority order, and the token is
//!   never lost to a full data buffer;
//! * logical multicast is realized as unicast fan-out to every peer (the
//!   option Spread offers when IP-multicast is unavailable), which also
//!   makes localhost test rings trivial to set up.
//!
//! ## Example: a three-daemon ring on localhost
//!
//! ```no_run
//! use accelring_core::{ParticipantId, ProtocolConfig, Service};
//! use accelring_membership::MembershipConfig;
//! use accelring_transport::{spawn_local_ring, AppEvent};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handles = spawn_local_ring(3, ProtocolConfig::default(), MembershipConfig::for_wall_clock())?;
//! handles[0].submit(Bytes::from_static(b"hello"), Service::Agreed)?;
//! if let Ok(AppEvent::Delivered(d)) = handles[2].events().recv() {
//!     println!("delivered {:?}", d.payload);
//! }
//! # Ok(())
//! # }
//! ```

// Unsafe is denied everywhere except the `mmsg` syscall shim and the
// `shm` ring backend, which opt back in module-wide — together they are
// the only unsafe code in the workspace.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod fault;
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod mmsg;
pub mod node;
pub mod poller;
#[allow(unsafe_code)]
pub mod shm;
pub mod socket;

pub use addr::{AddressBook, NodeAddr};
pub use fault::{FaultPlane, FaultPlaneStats, GilbertElliott, InterposedSocket, SocketClass};
pub use node::{
    AppEvent, BoundNode, Datapath, KillSwitch, NodeHandle, NodeOptions, SubmitError,
    TransportError, TransportProbe, TransportStats,
};
pub use poller::Poller;
pub use shm::{ShmCounters, ShmSocket};
pub use socket::{DatagramSocket, RecvOutcome, RecvSlot, SendOutcome};

use std::sync::Arc;
use std::time::Duration;

use accelring_core::{Backoff, ParticipantId, ProtocolConfig};
use accelring_membership::MembershipConfig;

/// Which datagram backend a node's sockets run on.
///
/// Every harness binds through [`BoundNode::bind`]/
/// [`BoundNode::bind_addrs`], which consult [`Transport::from_env`] — so
/// `ACCELRING_TRANSPORT=shm` flips an entire test suite or bench onto the
/// shared-memory backend with zero call-site changes. The `_on` variants
/// ([`bind_with_retry_on`], [`spawn_local_ring_on`],
/// [`spawn_local_multiring_on`]) select a backend explicitly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Transport {
    /// Kernel UDP sockets (the default; required between hosts).
    #[default]
    Udp,
    /// In-process shared-memory SPSC rings (see [`shm`]): zero syscalls
    /// on the datagram path for colocated daemons.
    Shm,
}

impl Transport {
    /// Reads the backend from `ACCELRING_TRANSPORT` (`"shm"` selects the
    /// shared-memory backend; anything else, or unset, selects UDP).
    pub fn from_env() -> Transport {
        match std::env::var("ACCELRING_TRANSPORT") {
            Ok(v) if v.eq_ignore_ascii_case("shm") => Transport::Shm,
            _ => Transport::Udp,
        }
    }
}

/// How many times binding one participant's sockets is retried before the
/// whole ring spawn is failed (ephemeral-port collisions are transient).
pub const BIND_ATTEMPTS: usize = 3;

/// Base delay of the full-jitter backoff between bind attempts. Restarted
/// daemons rebinding fixed ports race the kernel releasing them; a jittered
/// pause desynchronizes simultaneous restarts (the same [`Backoff`] policy
/// the reconnect and retry paths use) where the old back-to-back retry
/// burned all its attempts inside the contention window.
pub const BIND_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Cap on the bind backoff delay.
pub const BIND_BACKOFF_CAP: Duration = Duration::from_millis(200);

/// Binds a node's sockets, retrying transient bind failures a bounded
/// number of times with [`Backoff`] full-jitter pauses in between.
///
/// # Errors
///
/// Returns [`TransportError::Bind`] naming the participant that could not
/// come up after [`BIND_ATTEMPTS`] tries.
pub fn bind_with_retry(pid: ParticipantId, ip: &str) -> Result<BoundNode, TransportError> {
    bind_with_retry_on(Transport::from_env(), pid, ip)
}

/// [`bind_with_retry`] with an explicit backend instead of the
/// environment default.
///
/// # Errors
///
/// Returns [`TransportError::Bind`] naming the participant that could not
/// come up after [`BIND_ATTEMPTS`] tries.
pub fn bind_with_retry_on(
    transport: Transport,
    pid: ParticipantId,
    ip: &str,
) -> Result<BoundNode, TransportError> {
    let mut last = None;
    let mut backoff = Backoff::new(
        BIND_BACKOFF_BASE,
        BIND_BACKOFF_CAP,
        0x1bd1 ^ u64::from(pid.as_u16()),
    );
    for attempt in 0..BIND_ATTEMPTS {
        match BoundNode::bind_on(transport, pid, ip) {
            Ok(b) => return Ok(b),
            Err(TransportError::Io(e)) => last = Some(e),
            Err(other) => return Err(other),
        }
        if attempt + 1 < BIND_ATTEMPTS {
            std::thread::sleep(backoff.next_delay());
        }
    }
    Err(TransportError::Bind {
        pid,
        attempts: BIND_ATTEMPTS,
        source: last.unwrap_or_else(|| std::io::Error::other("bind failed")),
    })
}

/// Convenience: binds and starts `n` daemons on 127.0.0.1 with ephemeral
/// ports, fully meshed, and returns their handles.
///
/// # Errors
///
/// Returns [`TransportError`] if any socket operation fails;
/// [`TransportError::Bind`] identifies the participant whose sockets could
/// not be bound.
pub fn spawn_local_ring(
    n: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
) -> Result<Vec<NodeHandle>, TransportError> {
    spawn_local_ring_with(n, protocol, membership, None)
}

/// Like [`spawn_local_ring`], but routes every node's traffic through the
/// given [`FaultPlane`] (registered with the ring's address book before
/// any node starts).
///
/// # Errors
///
/// Returns [`TransportError`] if any socket operation fails.
pub fn spawn_local_ring_with(
    n: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    plane: Option<Arc<FaultPlane>>,
) -> Result<Vec<NodeHandle>, TransportError> {
    spawn_local_ring_on(Transport::from_env(), n, protocol, membership, plane)
}

/// [`spawn_local_ring_with`] on an explicit [`Transport`] backend — the
/// switch the chaos suites and benches use to run the same ring over UDP
/// loopback or shared-memory rings.
///
/// # Errors
///
/// Returns [`TransportError`] if any socket operation fails.
pub fn spawn_local_ring_on(
    transport: Transport,
    n: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    plane: Option<Arc<FaultPlane>>,
) -> Result<Vec<NodeHandle>, TransportError> {
    let bound: Vec<BoundNode> = (0..n)
        .map(|i| bind_with_retry_on(transport, ParticipantId::new(i), "127.0.0.1"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<NodeAddr> = bound
        .iter()
        .map(BoundNode::addr)
        .collect::<Result<_, _>>()?;
    let book = AddressBook::new(addrs);
    if let Some(plane) = &plane {
        plane.register_book(&book);
    }
    bound
        .into_iter()
        .map(|b| {
            b.start_with(
                book.clone(),
                protocol,
                membership,
                NodeOptions {
                    plane: plane.clone(),
                    ..NodeOptions::default()
                },
            )
        })
        .collect()
}

/// Binds and starts `rings` independent localhost rings of `n` daemons
/// each — the transport of a multi-ring sharded deployment. Returns
/// `handles[ring][node]`.
///
/// `planes[ring]`, when present, routes that ring's traffic (and only
/// that ring's) through the given [`FaultPlane`] — faults are inherently
/// ring-targeted: partitioning ring 1 never perturbs ring 0. Rings
/// beyond `planes.len()` run fault-free.
///
/// # Errors
///
/// Returns [`TransportError`] if any socket operation fails;
/// [`TransportError::Bind`] identifies the participant whose sockets
/// could not be bound.
pub fn spawn_local_multiring(
    rings: u16,
    n: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    planes: &[Option<Arc<FaultPlane>>],
) -> Result<Vec<Vec<NodeHandle>>, TransportError> {
    spawn_local_multiring_on(
        Transport::from_env(),
        rings,
        n,
        protocol,
        membership,
        planes,
    )
}

/// [`spawn_local_multiring`] on an explicit [`Transport`] backend.
///
/// # Errors
///
/// Returns [`TransportError`] if any socket operation fails;
/// [`TransportError::Bind`] identifies the participant whose sockets
/// could not be bound.
pub fn spawn_local_multiring_on(
    transport: Transport,
    rings: u16,
    n: u16,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    planes: &[Option<Arc<FaultPlane>>],
) -> Result<Vec<Vec<NodeHandle>>, TransportError> {
    (0..rings)
        .map(|k| {
            let plane = planes.get(k as usize).cloned().flatten();
            spawn_local_ring_on(transport, n, protocol, membership, plane)
        })
        .collect()
}
