//! The socket abstraction the event loop runs on.
//!
//! The daemon thread never talks to [`std::net::UdpSocket`] directly; it
//! sends and receives through this trait so a fault-injecting interposer
//! (see [`crate::fault`]) can slot underneath it without the protocol code
//! noticing. Production nodes use plain UDP sockets; chaos tests wrap the
//! same sockets in [`crate::fault::InterposedSocket`].
//!
//! Beyond the one-datagram [`send_to`](DatagramSocket::send_to) /
//! [`recv_from`](DatagramSocket::recv_from) pair, the trait carries a
//! batched API: [`send_batch`](DatagramSocket::send_batch) and
//! [`recv_batch`](DatagramSocket::recv_batch) move many datagrams per
//! syscall (`sendmmsg`/`recvmmsg` on Linux, a portable loop elsewhere) and
//! report how many syscalls they actually issued, so the event loop can
//! account for batching efficiency.

use std::net::{SocketAddr, UdpSocket};

use bytes::Bytes;

/// Outcome of a [`DatagramSocket::send_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendOutcome {
    /// Datagrams accepted by the socket layer. A fault-injecting socket
    /// counts a datagram it deliberately dropped or delayed as sent — from
    /// the node's perspective the packet entered the network.
    pub sent: usize,
    /// Datagrams that failed with a real I/O error (counted per
    /// destination, not per batch).
    pub errors: usize,
    /// Syscalls issued to move the batch.
    pub syscalls: u64,
}

/// Outcome of a [`DatagramSocket::recv_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecvOutcome {
    /// Slots filled with a received datagram (0 = nothing was waiting).
    pub received: usize,
    /// Syscalls issued.
    pub syscalls: u64,
}

/// One receive slot of a batched receive: the caller provides the buffer,
/// the socket fills in length and source address.
#[derive(Debug)]
pub struct RecvSlot<'a> {
    /// Buffer to receive into.
    pub buf: &'a mut [u8],
    /// Bytes received (valid when `addr` is `Some`).
    pub len: usize,
    /// Source address of the datagram, `None` if the slot was not filled.
    pub addr: Option<SocketAddr>,
}

impl<'a> RecvSlot<'a> {
    /// Wraps a buffer as an empty slot.
    pub fn new(buf: &'a mut [u8]) -> RecvSlot<'a> {
        RecvSlot {
            buf,
            len: 0,
            addr: None,
        }
    }
}

/// A non-blocking datagram endpoint, as seen by the event loop.
///
/// Implementations must already be in non-blocking mode: `recv_from` on an
/// empty socket returns [`std::io::ErrorKind::WouldBlock`].
pub trait DatagramSocket: Send + std::fmt::Debug {
    /// Sends one datagram to `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the event loop counts (and
    /// survives) failures rather than retrying.
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> std::io::Result<usize>;

    /// Receives one datagram.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when no datagram is waiting; other errors are counted
    /// by the event loop.
    fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)>;

    /// Sends a batch of datagrams, minimizing syscalls where the platform
    /// allows. Never fails as a whole: per-destination errors are counted
    /// in the outcome and the rest of the batch still goes out.
    ///
    /// The default implementation loops over [`send_to`] — one syscall per
    /// datagram — so any implementor of the two single-datagram methods is
    /// automatically batch-capable.
    ///
    /// [`send_to`]: DatagramSocket::send_to
    fn send_batch(&self, batch: &[(Bytes, SocketAddr)]) -> SendOutcome {
        let mut out = SendOutcome::default();
        for (buf, addr) in batch {
            out.syscalls += 1;
            match self.send_to(buf, *addr) {
                Ok(_) => out.sent += 1,
                Err(_) => out.errors += 1,
            }
        }
        out
    }

    /// Receives up to `slots.len()` datagrams in as few syscalls as the
    /// platform allows. Returns with `received == 0` (not `WouldBlock`)
    /// when nothing is waiting.
    ///
    /// # Errors
    ///
    /// A real I/O error is returned only if it struck before any datagram
    /// was received this call; otherwise the datagrams already in hand are
    /// reported and the error surfaces on the next call.
    fn recv_batch(&self, slots: &mut [RecvSlot<'_>]) -> std::io::Result<RecvOutcome> {
        let mut out = RecvOutcome::default();
        for slot in slots.iter_mut() {
            out.syscalls += 1;
            match self.recv_from(slot.buf) {
                Ok((len, addr)) => {
                    slot.len = len;
                    slot.addr = Some(addr);
                    out.received += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    if out.received == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Raw file descriptor to sleep on when the event loop goes idle, or
    /// `None` if the platform (or the socket wrapper) cannot offer one —
    /// the loop then falls back to a fixed-quantum doze.
    fn poll_fd(&self) -> Option<i32> {
        None
    }

    /// Called by the event loop immediately before parking on
    /// [`poll_fd`](DatagramSocket::poll_fd). Returns `true` when data is
    /// already pending — the loop must skip the sleep and poll again.
    ///
    /// Kernel sockets return `false` unconditionally: their readiness is
    /// level-triggered, so `ppoll` on the fd cannot miss a datagram that
    /// arrived before the park. Userspace transports (the shm ring
    /// backend) use this hook to arm their doorbell and close the
    /// check-then-sleep race: arm, re-check the rings, and only let the
    /// loop sleep when the rings were empty *after* arming.
    fn prepare_wait(&self) -> bool {
        false
    }
}

impl DatagramSocket for UdpSocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> std::io::Result<usize> {
        UdpSocket::send_to(self, buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
        UdpSocket::recv_from(self, buf)
    }

    #[cfg(target_os = "linux")]
    fn send_batch(&self, batch: &[(Bytes, SocketAddr)]) -> SendOutcome {
        crate::mmsg::send_batch(self, batch)
    }

    #[cfg(target_os = "linux")]
    fn recv_batch(&self, slots: &mut [RecvSlot<'_>]) -> std::io::Result<RecvOutcome> {
        crate::mmsg::recv_batch(self, slots)
    }

    #[cfg(target_os = "linux")]
    fn poll_fd(&self) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(self.as_raw_fd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let dest = b.local_addr().unwrap();
        (a, b, dest)
    }

    #[test]
    fn batch_roundtrip_over_udp() {
        let (a, b, dest) = pair();
        let batch: Vec<(Bytes, SocketAddr)> = (0u8..5)
            .map(|i| (Bytes::from(vec![i; 3 + i as usize]), dest))
            .collect();
        let out = DatagramSocket::send_batch(&a, &batch);
        assert_eq!(out.sent, 5);
        assert_eq!(out.errors, 0);
        assert!(out.syscalls >= 1);

        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut bufs = vec![[0u8; 64]; 8];
        let mut slots: Vec<RecvSlot<'_>> = bufs.iter_mut().map(|b| RecvSlot::new(b)).collect();
        let out = b.recv_batch(&mut slots).unwrap();
        assert_eq!(out.received, 5);
        assert!(out.syscalls >= 1);
        for (i, slot) in slots.iter().take(5).enumerate() {
            assert_eq!(slot.len, 3 + i);
            assert_eq!(&slot.buf[..slot.len], vec![i as u8; 3 + i].as_slice());
            assert_eq!(slot.addr, Some(a.local_addr().unwrap()));
        }
        assert!(slots[5].addr.is_none());
    }

    #[test]
    fn recv_batch_empty_socket_reports_zero() {
        let (_a, b, _dest) = pair();
        let mut buf = [0u8; 16];
        let mut slots = [RecvSlot::new(&mut buf)];
        let out = b.recv_batch(&mut slots).unwrap();
        assert_eq!(out.received, 0);
        assert!(slots[0].addr.is_none());
    }

    #[test]
    fn send_batch_counts_errors_per_destination() {
        let (a, _b, dest) = pair();
        // An unroutable destination port 0 fails per-datagram; the valid
        // sends around it still go out.
        let bad: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let batch = vec![
            (Bytes::from_static(b"ok1"), dest),
            (Bytes::from_static(b"bad"), bad),
            (Bytes::from_static(b"ok2"), dest),
        ];
        let out = DatagramSocket::send_batch(&a, &batch);
        assert_eq!(out.sent, 2);
        assert_eq!(out.errors, 1);
    }

    #[test]
    fn batch_larger_than_mmsg_chunk() {
        let (a, b, dest) = pair();
        let batch: Vec<(Bytes, SocketAddr)> = (0u16..80)
            .map(|i| (Bytes::from(i.to_le_bytes().to_vec()), dest))
            .collect();
        let out = DatagramSocket::send_batch(&a, &batch);
        assert_eq!(out.sent, 80);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut total = 0;
        loop {
            let mut bufs = vec![[0u8; 16]; 32];
            let mut slots: Vec<RecvSlot<'_>> = bufs.iter_mut().map(|b| RecvSlot::new(b)).collect();
            let out = b.recv_batch(&mut slots).unwrap();
            if out.received == 0 {
                break;
            }
            total += out.received;
        }
        assert_eq!(total, 80);
    }
}
