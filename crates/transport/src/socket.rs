//! The socket abstraction the event loop runs on.
//!
//! The daemon thread never talks to [`std::net::UdpSocket`] directly; it
//! sends and receives through this trait so a fault-injecting interposer
//! (see [`crate::fault`]) can slot underneath it without the protocol code
//! noticing. Production nodes use plain UDP sockets; chaos tests wrap the
//! same sockets in [`crate::fault::InterposedSocket`].

use std::net::{SocketAddr, UdpSocket};

/// A non-blocking datagram endpoint, as seen by the event loop.
///
/// Implementations must already be in non-blocking mode: `recv_from` on an
/// empty socket returns [`std::io::ErrorKind::WouldBlock`].
pub trait DatagramSocket: Send + std::fmt::Debug {
    /// Sends one datagram to `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the event loop counts (and
    /// survives) failures rather than retrying.
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> std::io::Result<usize>;

    /// Receives one datagram.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when no datagram is waiting; other errors are counted
    /// by the event loop.
    fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)>;
}

impl DatagramSocket for UdpSocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> std::io::Result<usize> {
        UdpSocket::send_to(self, buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
        UdpSocket::recv_from(self, buf)
    }
}
