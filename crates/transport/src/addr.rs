//! Peer addressing for the UDP transport.

use std::net::SocketAddr;

use accelring_core::ParticipantId;

/// Where one daemon listens: data and token traffic use *separate* ports
/// and sockets, which is how the implementation realizes the
/// token-versus-data processing priority of Section III-D/III-E of the
/// paper (and why token loss due to receive-buffer overflow is not a
/// practical concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAddr {
    /// The daemon's participant id.
    pub pid: ParticipantId,
    /// Address of the data socket (data messages + membership control).
    pub data: SocketAddr,
    /// Address of the token socket.
    pub token: SocketAddr,
}

/// The static address book of a deployment: every peer, including the
/// local daemon.
#[derive(Debug, Clone, Default)]
pub struct AddressBook {
    peers: Vec<NodeAddr>,
}

impl AddressBook {
    /// Creates an address book from peer entries.
    ///
    /// # Panics
    ///
    /// Panics if two entries share a participant id.
    pub fn new(peers: Vec<NodeAddr>) -> AddressBook {
        for (i, p) in peers.iter().enumerate() {
            assert!(
                !peers[..i].iter().any(|q| q.pid == p.pid),
                "duplicate participant id {} in address book",
                p.pid
            );
        }
        AddressBook { peers }
    }

    /// All peers.
    pub fn peers(&self) -> &[NodeAddr] {
        &self.peers
    }

    /// Number of peers (including the local daemon).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The entry for `pid`, if present.
    pub fn get(&self, pid: ParticipantId) -> Option<&NodeAddr> {
        self.peers.iter().find(|p| p.pid == pid)
    }

    /// Data-socket addresses of every peer except `me` (unicast fan-out
    /// targets for logical multicast).
    pub fn fanout_data(&self, me: ParticipantId) -> Vec<SocketAddr> {
        self.peers
            .iter()
            .filter(|p| p.pid != me)
            .map(|p| p.data)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn entry(pid: u16, base: u16) -> NodeAddr {
        NodeAddr {
            pid: ParticipantId::new(pid),
            data: addr(base),
            token: addr(base + 1),
        }
    }

    #[test]
    fn lookup_and_fanout() {
        let book = AddressBook::new(vec![entry(0, 9000), entry(1, 9010), entry(2, 9020)]);
        assert_eq!(book.len(), 3);
        assert_eq!(book.get(ParticipantId::new(1)).unwrap().token, addr(9011));
        assert!(book.get(ParticipantId::new(9)).is_none());
        let fanout = book.fanout_data(ParticipantId::new(0));
        assert_eq!(fanout, vec![addr(9010), addr(9020)]);
    }

    #[test]
    #[should_panic(expected = "duplicate participant id")]
    fn rejects_duplicate_pids() {
        let _ = AddressBook::new(vec![entry(0, 9000), entry(0, 9010)]);
    }

    #[test]
    fn empty_book() {
        let book = AddressBook::default();
        assert!(book.is_empty());
    }
}
