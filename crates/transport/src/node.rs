//! The single-threaded UDP daemon runtime.
//!
//! One OS thread runs the whole stack (ordering + membership), exactly like
//! the paper's single-threaded daemon implementations: two non-blocking UDP
//! sockets (token and data), read in the protocol's priority order, plus a
//! command channel from local clients.
//!
//! The loop is built to keep running — or, when it cannot, to fail loudly:
//! a panic anywhere in the protocol stack is caught at the thread boundary,
//! counted in [`TransportStats::thread_panics`], and surfaced to the
//! application as a terminal [`AppEvent::Fault`]; a graceful
//! [`NodeHandle::leave`] drains pending traffic and announces the departure
//! so survivors reform without waiting out the token-loss timeout.

use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use accelring_core::{
    wire, BufLease, BufferPool, Delivery, HotPathStats, ParticipantId, PoolStats, ProtocolConfig,
    Service, ShedCause, ShmPathStats,
};
use accelring_membership::{
    decode_control, encode_control, ConfigChange, Input, MembershipConfig, MembershipDaemon,
    Output, StateKind,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};

use crate::addr::{AddressBook, NodeAddr};
use crate::fault::{FaultPlane, InterposedSocket, SocketClass};
use crate::poller::Poller;
use crate::shm::{ShmCounters, ShmSocket};
use crate::socket::{DatagramSocket, RecvSlot, SendOutcome};
use crate::Transport;

/// Largest datagram the transport accepts (64 KiB UDP limit).
const MAX_DATAGRAM: usize = 65_536;
/// How long the loop sleeps when completely idle.
const IDLE_SLEEP: Duration = Duration::from_micros(200);
/// Capacity of the client command channel. A full channel surfaces as
/// [`SubmitError::Backlogged`] instead of unbounded memory growth when the
/// ring cannot keep up with local submitters.
const COMMAND_QUEUE_CAPACITY: usize = 4096;
/// Datagrams drained from one socket per poll iteration on the batched
/// path. Token priority is re-evaluated between batches, so a burst of
/// data traffic can defer the token by at most this many datagrams.
const RECV_BATCH: usize = 32;
/// Idle buffers each pool parks for reuse. Sized so the working set —
/// the batched receive leases plus every payload slice the protocol
/// retains until delivery (each pins its whole pooled buffer) — cycles
/// through the free list instead of falling through to the allocator.
const POOL_MAX_FREE: usize = 512;
/// Requested socket buffer depth. Gathered sends deliver a whole
/// window's fanout in one burst; see
/// [`deepen_socket_buffers`] for why the kernel default is too shallow.
const SOCKET_BUFFER_BYTES: i32 = 512 << 10;

/// Best-effort deepening of both sockets' kernel buffers (Linux only; a
/// no-op elsewhere). See `mmsg::set_buffer_sizes` for the rationale.
fn deepen_socket_buffers(data: &UdpSocket, token: &UdpSocket) {
    #[cfg(target_os = "linux")]
    {
        crate::mmsg::set_buffer_sizes(data, SOCKET_BUFFER_BYTES);
        crate::mmsg::set_buffer_sizes(token, SOCKET_BUFFER_BYTES);
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (data, token);
    }
}

/// Counters exported by a running node; every anomaly the event loop
/// swallows (it must keep running) is visible here instead of vanishing.
#[derive(Debug, Default)]
struct StatsInner {
    datagrams_rx: AtomicU64,
    datagrams_tx: AtomicU64,
    syscalls_rx: AtomicU64,
    syscalls_tx: AtomicU64,
    bytes_copied: AtomicU64,
    decode_failures: AtomicU64,
    recv_errors: AtomicU64,
    send_errors: AtomicU64,
    submissions: AtomicU64,
    submissions_shed: AtomicU64,
    thread_panics: AtomicU64,
    migrations_started: AtomicU64,
    migrations_committed: AtomicU64,
    migrations_aborted: AtomicU64,
    submissions_redirected: AtomicU64,
    fence_wait_ns: AtomicU64,
    events_shed_slow: AtomicU64,
    events_shed_budget: AtomicU64,
    events_shed_race: AtomicU64,
    recovery_pulls_sent: AtomicU64,
    recovery_pushes_served: AtomicU64,
    recovery_snapshots_applied: AtomicU64,
    recovery_maps_adopted: AtomicU64,
    recovery_catchup_wait_ns: AtomicU64,
}

/// A point-in-time copy of a node's transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Datagrams received across both sockets.
    pub datagrams_rx: u64,
    /// Datagrams that failed to parse (truncated, unknown kind, garbage).
    pub decode_failures: u64,
    /// `recv` failures other than `WouldBlock`.
    pub recv_errors: u64,
    /// Send failures, counted per failed destination (a partially failed
    /// fanout counts each refusing peer, not the flush).
    pub send_errors: u64,
    /// Client submissions accepted into the daemon.
    pub submissions: u64,
    /// Client submissions the daemon's own pending queue refused.
    pub submissions_shed: u64,
    /// Protocol-thread panics caught at the thread boundary (each one is
    /// terminal for the node and accompanied by an [`AppEvent::Fault`]).
    pub thread_panics: u64,
    /// Group migrations whose fence this daemon observed start.
    pub migrations_started: u64,
    /// Migrations that committed their handoff (group now on the target).
    pub migrations_committed: u64,
    /// Migrations that aborted (target unreachable, ring death, timeout).
    pub migrations_aborted: u64,
    /// Client submissions caught behind a migration fence and redirected
    /// (held, then resubmitted to the group's post-fence ring).
    pub submissions_redirected: u64,
    /// Total nanoseconds groups spent frozen behind migration fences
    /// (from fence start to commit/abort, summed over migrations this
    /// daemon observed).
    pub fence_wait_ns: u64,
    /// Client-bound events shed because one session's egress queue was
    /// full (the session frontend attributes these; the transport only
    /// owns the counter fabric).
    pub events_shed_slow: u64,
    /// Client-bound events shed because the frontend-wide queued-event
    /// budget was exhausted.
    pub events_shed_budget: u64,
    /// Client-bound events shed because the session closed while the
    /// event was in flight (disconnect race).
    pub events_shed_race: u64,
    /// Anti-entropy MAP_PULL requests this daemon sent while catching up
    /// after a (re)start (the multi-ring recovery path owns these, like
    /// the migration counters).
    pub recovery_pulls_sent: u64,
    /// MAP_PUSH snapshots this daemon served to catching-up peers.
    pub recovery_pushes_served: u64,
    /// Peer snapshots applied (map adopted and dedup watermarks seeded).
    pub recovery_snapshots_applied: u64,
    /// Shard-map epochs adopted from the rings' ordered announcements.
    pub recovery_maps_adopted: u64,
    /// Total nanoseconds spent gated (not serving sessions) between
    /// (re)start and catch-up completion.
    pub recovery_catchup_wait_ns: u64,
    /// Hot-datapath counters: syscall batching, pool behaviour, copies.
    pub hot: HotPathStats,
    /// Shared-memory datapath counters (all zero on a UDP node).
    pub shm: ShmPathStats,
}

impl StatsInner {
    fn snapshot(&self) -> TransportStats {
        let datagrams_rx = self.datagrams_rx.load(Ordering::Relaxed);
        TransportStats {
            datagrams_rx,
            decode_failures: self.decode_failures.load(Ordering::Relaxed),
            recv_errors: self.recv_errors.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            submissions: self.submissions.load(Ordering::Relaxed),
            submissions_shed: self.submissions_shed.load(Ordering::Relaxed),
            thread_panics: self.thread_panics.load(Ordering::Relaxed),
            migrations_started: self.migrations_started.load(Ordering::Relaxed),
            migrations_committed: self.migrations_committed.load(Ordering::Relaxed),
            migrations_aborted: self.migrations_aborted.load(Ordering::Relaxed),
            submissions_redirected: self.submissions_redirected.load(Ordering::Relaxed),
            fence_wait_ns: self.fence_wait_ns.load(Ordering::Relaxed),
            events_shed_slow: self.events_shed_slow.load(Ordering::Relaxed),
            events_shed_budget: self.events_shed_budget.load(Ordering::Relaxed),
            events_shed_race: self.events_shed_race.load(Ordering::Relaxed),
            recovery_pulls_sent: self.recovery_pulls_sent.load(Ordering::Relaxed),
            recovery_pushes_served: self.recovery_pushes_served.load(Ordering::Relaxed),
            recovery_snapshots_applied: self.recovery_snapshots_applied.load(Ordering::Relaxed),
            recovery_maps_adopted: self.recovery_maps_adopted.load(Ordering::Relaxed),
            recovery_catchup_wait_ns: self.recovery_catchup_wait_ns.load(Ordering::Relaxed),
            hot: HotPathStats {
                datagrams_rx,
                datagrams_tx: self.datagrams_tx.load(Ordering::Relaxed),
                syscalls_rx: self.syscalls_rx.load(Ordering::Relaxed),
                syscalls_tx: self.syscalls_tx.load(Ordering::Relaxed),
                pool_hits: 0,   // filled from the pools by the callers
                pool_misses: 0, // that hold the pool handles
                bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            },
            shm: ShmPathStats::default(), // filled from the ShmCounters
        }
    }
}

/// Membership observability published by the event loop after every step
/// (relaxed atomics: cheap, point-in-time, possibly one step stale).
#[derive(Debug, Default)]
struct RingInfoInner {
    state: AtomicU8,
    rings_formed: AtomicU64,
    tokens_retransmitted: AtomicU64,
    ring_counter: AtomicU64,
}

const STATE_OPERATIONAL: u8 = 0;
const STATE_GATHER: u8 = 1;
const STATE_COMMIT: u8 = 2;
const STATE_RECOVER: u8 = 3;

fn state_to_u8(s: StateKind) -> u8 {
    match s {
        StateKind::Operational => STATE_OPERATIONAL,
        StateKind::Gather => STATE_GATHER,
        StateKind::Commit => STATE_COMMIT,
        StateKind::Recover => STATE_RECOVER,
    }
}

fn state_from_u8(v: u8) -> StateKind {
    match v {
        STATE_OPERATIONAL => StateKind::Operational,
        STATE_GATHER => StateKind::Gather,
        STATE_COMMIT => StateKind::Commit,
        _ => StateKind::Recover,
    }
}

/// Why a [`NodeHandle::submit`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The command queue is full; retry after draining deliveries.
    Backlogged,
    /// The daemon thread has stopped.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backlogged => write!(f, "command queue full (backpressure)"),
            SubmitError::Stopped => write!(f, "daemon thread has stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// An event surfaced to the application.
#[derive(Debug, Clone)]
pub enum AppEvent {
    /// A message was delivered in total order.
    Delivered(Delivery),
    /// An EVS configuration change.
    Config(ConfigChange),
    /// The protocol thread died (panic caught at the thread boundary).
    /// Terminal: no further events follow and the node must be restarted.
    Fault {
        /// The panic payload, as text.
        reason: String,
    },
}

#[derive(Debug)]
enum Command {
    Submit(Bytes, Service),
    #[doc(hidden)]
    InjectPanic,
}

/// Errors from starting a transport node.
#[derive(Debug)]
pub enum TransportError {
    /// Binding or configuring a socket failed.
    Io(std::io::Error),
    /// The local participant id is missing from the address book.
    NotInAddressBook(ParticipantId),
    /// Binding a specific participant's sockets failed even after retries;
    /// identifies *which* ring member could not come up.
    Bind {
        /// The participant whose sockets failed to bind.
        pid: ParticipantId,
        /// How many attempts were made.
        attempts: usize,
        /// The last bind error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::NotInAddressBook(p) => {
                write!(f, "participant {p} is not in the address book")
            }
            TransportError::Bind {
                pid,
                attempts,
                source,
            } => write!(
                f,
                "binding sockets for participant {pid} failed after {attempts} attempts: {source}"
            ),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::NotInAddressBook(_) => None,
            TransportError::Bind { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// How the event loop moves datagrams (see DESIGN.md section 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Datapath {
    /// `recvmmsg`/`sendmmsg` bursts over pooled zero-copy buffers: recv
    /// drains up to [`RECV_BATCH`] datagrams per poll, every multicast is
    /// encoded once, and each flush gathers the whole fanout plus any
    /// pending token send into per-socket syscall bursts.
    #[default]
    Batched,
    /// The legacy loop — one syscall and one heap copy per datagram, one
    /// datagram per poll iteration — preserved as the baseline the
    /// `packet_path` microbench compares against.
    PerDatagram,
}

/// Start-time options beyond the protocol and membership configuration.
#[derive(Debug, Clone, Default)]
pub struct NodeOptions {
    /// Route every send through this fault plane (chaos testing).
    pub plane: Option<Arc<FaultPlane>>,
    /// Stable-storage ring counter from a previous incarnation, so a
    /// restarted daemon never reuses a ring id (see
    /// [`MembershipDaemon::max_ring_counter`]). Read it from the dead
    /// handle via [`NodeHandle::ring_counter`].
    pub restore_ring_counter: u64,
    /// Which datapath the event loop runs (batched by default).
    pub datapath: Datapath,
}

/// The bound socket pair of one daemon, on either backend. The token and
/// data sockets always share a backend: a node is entirely on UDP or
/// entirely on shm (peers on the *other* end of each link may differ —
/// addressing, not the socket type, routes a datagram).
// One BoundNode exists per daemon for the instant between bind and
// start, so the shm variant's inline ring handles are not worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum BoundSockets {
    Udp {
        data: UdpSocket,
        token: UdpSocket,
    },
    Shm {
        data: ShmSocket,
        token: ShmSocket,
        counters: Arc<ShmCounters>,
    },
}

/// A daemon with bound sockets whose addresses can be shared with peers
/// before the event loop starts (two-phase startup so tests can allocate
/// ephemeral ports).
#[derive(Debug)]
pub struct BoundNode {
    pid: ParticipantId,
    sockets: BoundSockets,
}

impl BoundNode {
    /// Binds the two sockets on `ip` with ephemeral ports, on the backend
    /// selected by `ACCELRING_TRANSPORT` (see [`Transport::from_env`]).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn bind(pid: ParticipantId, ip: &str) -> Result<BoundNode, TransportError> {
        Self::bind_on(Transport::from_env(), pid, ip)
    }

    /// Binds the two sockets with ephemeral addresses on an explicit
    /// backend. The shm backend synthesizes its own addresses and ignores
    /// `ip` (shm endpoints live in a process-wide namespace, not an
    /// interface).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn bind_on(
        transport: Transport,
        pid: ParticipantId,
        ip: &str,
    ) -> Result<BoundNode, TransportError> {
        let sockets = match transport {
            Transport::Udp => BoundSockets::Udp {
                data: UdpSocket::bind((ip, 0))?,
                token: UdpSocket::bind((ip, 0))?,
            },
            Transport::Shm => {
                let counters = ShmCounters::new();
                BoundSockets::Shm {
                    data: ShmSocket::bind_ephemeral(Arc::clone(&counters))?,
                    token: ShmSocket::bind_ephemeral(Arc::clone(&counters))?,
                    counters,
                }
            }
        };
        Ok(BoundNode { pid, sockets })
    }

    /// Binds the two sockets to explicit addresses (production daemons use
    /// fixed ports published in the address book), on the backend selected
    /// by `ACCELRING_TRANSPORT`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if either bind fails.
    pub fn bind_addrs(
        pid: ParticipantId,
        data: SocketAddr,
        token: SocketAddr,
    ) -> Result<BoundNode, TransportError> {
        Self::bind_addrs_on(Transport::from_env(), pid, data, token)
    }

    /// [`BoundNode::bind_addrs`] on an explicit backend — the restart
    /// path: a daemon rebinding its published addresses after a crash.
    /// On shm the old incarnation's socket must be gone first (the name
    /// frees when it drops), surfacing the same transient `AddrInUse` the
    /// kernel produces, which the callers' retry loops already handle.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if either bind fails.
    pub fn bind_addrs_on(
        transport: Transport,
        pid: ParticipantId,
        data: SocketAddr,
        token: SocketAddr,
    ) -> Result<BoundNode, TransportError> {
        let sockets = match transport {
            Transport::Udp => BoundSockets::Udp {
                data: UdpSocket::bind(data)?,
                token: UdpSocket::bind(token)?,
            },
            Transport::Shm => {
                let counters = ShmCounters::new();
                BoundSockets::Shm {
                    data: ShmSocket::bind(data, Arc::clone(&counters))?,
                    token: ShmSocket::bind(token, Arc::clone(&counters))?,
                    counters,
                }
            }
        };
        Ok(BoundNode { pid, sockets })
    }

    /// This node's address-book entry.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if the local addresses cannot be read.
    pub fn addr(&self) -> Result<NodeAddr, TransportError> {
        let (data, token) = match &self.sockets {
            BoundSockets::Udp { data, token } => (data.local_addr()?, token.local_addr()?),
            BoundSockets::Shm { data, token, .. } => (data.local_addr(), token.local_addr()),
        };
        Ok(NodeAddr {
            pid: self.pid,
            data,
            token,
        })
    }

    /// Starts the event loop on its own thread with default options.
    ///
    /// # Errors
    ///
    /// Returns an error if the sockets cannot be made non-blocking or the
    /// node is missing from `book`.
    pub fn start(
        self,
        book: AddressBook,
        protocol: ProtocolConfig,
        membership: MembershipConfig,
    ) -> Result<NodeHandle, TransportError> {
        self.start_with(book, protocol, membership, NodeOptions::default())
    }

    /// Starts the event loop with explicit [`NodeOptions`] (fault plane,
    /// restored ring counter).
    ///
    /// # Errors
    ///
    /// Returns an error if the sockets cannot be made non-blocking or the
    /// node is missing from `book`.
    pub fn start_with(
        self,
        book: AddressBook,
        protocol: ProtocolConfig,
        membership: MembershipConfig,
        options: NodeOptions,
    ) -> Result<NodeHandle, TransportError> {
        if book.get(self.pid).is_none() {
            return Err(TransportError::NotInAddressBook(self.pid));
        }
        let pid = self.pid;
        // Boxes either backend's socket pair, fault-interposed or bare —
        // the interposer is generic over the socket, so per-link fates
        // apply at slot-publish time on shm exactly as they apply at
        // send time on UDP.
        fn boxed<S: DatagramSocket + 'static>(
            data: S,
            token: S,
            pid: ParticipantId,
            plane: &Option<Arc<FaultPlane>>,
        ) -> (Box<dyn DatagramSocket>, Box<dyn DatagramSocket>) {
            match plane {
                Some(plane) => (
                    Box::new(InterposedSocket::new(
                        data,
                        pid,
                        SocketClass::Data,
                        Arc::clone(plane),
                    )),
                    Box::new(InterposedSocket::new(
                        token,
                        pid,
                        SocketClass::Token,
                        Arc::clone(plane),
                    )),
                ),
                None => (Box::new(data), Box::new(token)),
            }
        }
        let mut shm_counters = None;
        let (data_socket, token_socket) = match self.sockets {
            BoundSockets::Udp { data, token } => {
                // Gathered bursts need kernel buffers deep enough to
                // absorb a whole fanout at once; the legacy datapath
                // keeps the kernel defaults it was designed around.
                if options.datapath == Datapath::Batched {
                    deepen_socket_buffers(&data, &token);
                }
                data.set_nonblocking(true)?;
                token.set_nonblocking(true)?;
                boxed(data, token, pid, &options.plane)
            }
            BoundSockets::Shm {
                data,
                token,
                counters,
            } => {
                shm_counters = Some(counters);
                boxed(data, token, pid, &options.plane)
            }
        };
        let (cmd_tx, cmd_rx) = bounded(COMMAND_QUEUE_CAPACITY);
        let (event_tx, event_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let leave = Arc::new(AtomicBool::new(false));
        let drain_ns = Arc::new(AtomicU64::new(0));
        let stats = Arc::new(StatsInner::default());
        let ring_info = Arc::new(RingInfoInner::default());
        let recv_pool = BufferPool::new(MAX_DATAGRAM, POOL_MAX_FREE);
        let send_pool = BufferPool::new(MAX_DATAGRAM, POOL_MAX_FREE);
        let datapath = options.datapath;
        let thread_ctx = (
            Arc::clone(&stop),
            Arc::clone(&leave),
            Arc::clone(&drain_ns),
            Arc::clone(&stats),
            Arc::clone(&ring_info),
            event_tx.clone(),
            recv_pool.clone(),
            send_pool.clone(),
        );
        let thread = std::thread::Builder::new()
            .name(format!("accelring-{pid}"))
            .spawn(move || {
                let (stop, leave, drain_ns, stats, ring_info, fault_tx, recv_pool, send_pool) =
                    thread_ctx;
                let mut daemon = MembershipDaemon::new(pid, protocol, membership);
                daemon.restore_ring_counter(options.restore_ring_counter);
                let mut poller = Poller::new();
                if let (Some(data), Some(token)) = (data_socket.poll_fd(), token_socket.poll_fd()) {
                    poller.set_fds(&[data, token]);
                }
                let mut event_loop = EventLoop {
                    pid,
                    data_socket,
                    token_socket,
                    fanout: book.fanout_data(pid),
                    book,
                    daemon,
                    cmd_rx,
                    pending_submit: None,
                    event_tx,
                    stop,
                    leave,
                    drain_ns,
                    stats: Arc::clone(&stats),
                    ring_info,
                    start: Instant::now(),
                    datapath,
                    recv_pool,
                    send_pool,
                    recv_leases: Vec::new(),
                    data_batch: Vec::new(),
                    token_batch: Vec::new(),
                    scratch: match datapath {
                        Datapath::PerDatagram => vec![0u8; MAX_DATAGRAM],
                        Datapath::Batched => Vec::new(),
                    },
                    poller,
                };
                // The loop must never take the whole process down: a panic
                // in the protocol stack is caught here, counted, and
                // reported as a terminal fault event.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| event_loop.run()));
                if let Err(payload) = result {
                    stats.thread_panics.fetch_add(1, Ordering::Relaxed);
                    let reason = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let _ = fault_tx.send(AppEvent::Fault { reason });
                }
            })
            .expect("spawn daemon thread");
        Ok(NodeHandle {
            pid,
            cmd_tx,
            event_rx,
            stop,
            leave,
            drain_ns,
            stats,
            ring_info,
            recv_pool,
            send_pool,
            shm_counters,
            thread: Some(thread),
        })
    }
}

/// A clonable, thread-safe window onto a node's transport counters and
/// buffer pools, usable after the [`NodeHandle`] itself has been moved
/// into a pump thread (the daemon and multi-ring runtimes hand these out).
#[derive(Debug, Clone)]
pub struct TransportProbe {
    stats: Arc<StatsInner>,
    recv_pool: BufferPool,
    send_pool: BufferPool,
    shm_counters: Option<Arc<ShmCounters>>,
}

impl TransportProbe {
    /// A snapshot of the node's transport counters, pool counters
    /// included.
    pub fn stats(&self) -> TransportStats {
        let mut s = self.stats.snapshot();
        let (recv, send) = (self.recv_pool.stats(), self.send_pool.stats());
        s.hot.pool_hits = recv.hits + send.hits;
        s.hot.pool_misses = recv.misses + send.misses;
        if let Some(shm) = &self.shm_counters {
            s.shm = shm.snapshot();
        }
        s
    }

    /// Counters of the receive-side and send-side buffer pools.
    pub fn pool_stats(&self) -> (PoolStats, PoolStats) {
        (self.recv_pool.stats(), self.send_pool.stats())
    }

    /// Pooled buffers still leased out across both pools. After the node
    /// has shut down and every delivery has been dropped, a nonzero value
    /// is a leak.
    pub fn pool_outstanding(&self) -> u64 {
        self.recv_pool.outstanding() + self.send_pool.outstanding()
    }

    /// Records migration fences observed starting (the multi-ring pump
    /// calls these — the transport itself has no migration knowledge, it
    /// just owns the counter fabric every probe reader already polls).
    pub fn note_migrations_started(&self, n: u64) {
        self.stats
            .migrations_started
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records migrations that committed their handoff.
    pub fn note_migrations_committed(&self, n: u64) {
        self.stats
            .migrations_committed
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records migrations that aborted.
    pub fn note_migrations_aborted(&self, n: u64) {
        self.stats
            .migrations_aborted
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records client submissions redirected around a migration fence.
    pub fn note_submissions_redirected(&self, n: u64) {
        self.stats
            .submissions_redirected
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulates time a group spent frozen behind a migration fence.
    pub fn note_fence_wait(&self, wait: std::time::Duration) {
        self.stats
            .fence_wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records anti-entropy MAP_PULL requests sent while catching up.
    pub fn note_recovery_pulls_sent(&self, n: u64) {
        self.stats
            .recovery_pulls_sent
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records MAP_PUSH snapshots served to catching-up peers.
    pub fn note_recovery_pushes_served(&self, n: u64) {
        self.stats
            .recovery_pushes_served
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records peer snapshots applied during catch-up.
    pub fn note_recovery_snapshots_applied(&self, n: u64) {
        self.stats
            .recovery_snapshots_applied
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records shard-map epochs adopted from ordered announcements.
    pub fn note_recovery_maps_adopted(&self, n: u64) {
        self.stats
            .recovery_maps_adopted
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulates time spent gated between (re)start and catch-up.
    pub fn note_recovery_catchup_wait(&self, wait: std::time::Duration) {
        self.stats
            .recovery_catchup_wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records client-bound events the session frontend shed, attributed
    /// to their cause (the frontend calls this the same way the
    /// multi-ring pump reports migrations).
    pub fn note_events_shed(&self, cause: ShedCause, n: u64) {
        let counter = match cause {
            ShedCause::SlowSession => &self.stats.events_shed_slow,
            ShedCause::GlobalBudget => &self.stats.events_shed_budget,
            ShedCause::DisconnectRace => &self.stats.events_shed_race,
        };
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A clonable kill handle for a node, obtainable before the [`NodeHandle`]
/// is handed off (e.g. to a group daemon). Killing stops the event loop
/// abruptly — no drain, no departure announcement — which is exactly what
/// crash tests want.
#[derive(Debug, Clone)]
pub struct KillSwitch {
    stop: Arc<AtomicBool>,
}

impl KillSwitch {
    /// Asks the event loop to exit at its next iteration.
    pub fn kill(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether the kill was already requested.
    pub fn is_killed(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Handle to a running daemon thread.
#[derive(Debug)]
pub struct NodeHandle {
    pid: ParticipantId,
    cmd_tx: Sender<Command>,
    event_rx: Receiver<AppEvent>,
    stop: Arc<AtomicBool>,
    leave: Arc<AtomicBool>,
    drain_ns: Arc<AtomicU64>,
    stats: Arc<StatsInner>,
    ring_info: Arc<RingInfoInner>,
    recv_pool: BufferPool,
    send_pool: BufferPool,
    shm_counters: Option<Arc<ShmCounters>>,
    thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// The daemon's participant id.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// A clonable counters/pools probe that outlives moves of this handle.
    pub fn probe(&self) -> TransportProbe {
        TransportProbe {
            stats: Arc::clone(&self.stats),
            recv_pool: self.recv_pool.clone(),
            send_pool: self.send_pool.clone(),
            shm_counters: self.shm_counters.clone(),
        }
    }

    /// Submits a message for totally ordered multicast.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Backlogged`] when the bounded command queue
    /// is full — the caller owns the retry/shed decision — and
    /// [`SubmitError::Stopped`] if the daemon thread has exited.
    pub fn submit(&self, payload: Bytes, service: Service) -> Result<(), SubmitError> {
        match self.cmd_tx.try_send(Command::Submit(payload, service)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::Backlogged),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Stopped),
        }
    }

    /// A snapshot of the node's transport counters, pool counters
    /// included.
    pub fn stats(&self) -> TransportStats {
        self.probe().stats()
    }

    /// Counters of the receive-side and send-side buffer pools.
    pub fn pool_stats(&self) -> (PoolStats, PoolStats) {
        (self.recv_pool.stats(), self.send_pool.stats())
    }

    /// The membership state the event loop last published.
    pub fn membership_state(&self) -> StateKind {
        state_from_u8(self.ring_info.state.load(Ordering::Relaxed))
    }

    /// Regular configurations installed so far (membership counter).
    pub fn rings_formed(&self) -> u64 {
        self.ring_info.rings_formed.load(Ordering::Relaxed)
    }

    /// Tokens resent by the retransmit timer (membership counter).
    pub fn tokens_retransmitted(&self) -> u64 {
        self.ring_info.tokens_retransmitted.load(Ordering::Relaxed)
    }

    /// The highest ring counter this node has used or observed — Totem's
    /// stable-storage value. Pass it to a restarted incarnation via
    /// [`NodeOptions::restore_ring_counter`]; valid even after the thread
    /// has exited (it keeps the last published value).
    pub fn ring_counter(&self) -> u64 {
        self.ring_info.ring_counter.load(Ordering::Relaxed)
    }

    /// The stream of deliveries and configuration changes.
    pub fn events(&self) -> &Receiver<AppEvent> {
        &self.event_rx
    }

    /// A clonable kill handle usable after this `NodeHandle` was moved
    /// elsewhere (abrupt stop: no drain, no departure announcement).
    pub fn killswitch(&self) -> KillSwitch {
        KillSwitch {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Whether the event-loop thread is still running.
    pub fn is_alive(&self) -> bool {
        self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Forces a panic inside the event loop (fault-injection hook for
    /// tests of the panic containment path).
    #[doc(hidden)]
    pub fn inject_panic(&self) {
        let _ = self.cmd_tx.send(Command::InjectPanic);
    }

    /// Asks the event loop to stop and waits for the thread to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Leaves the ring gracefully: stops accepting new submissions, keeps
    /// the protocol running until pending submissions and buffered
    /// deliveries drain (bounded by `drain`), then broadcasts a departure
    /// announcement so survivors reform after one gather round instead of
    /// waiting out the token-loss timeout, and exits.
    ///
    /// Returns the event receiver so the caller can collect deliveries
    /// that were produced during the drain.
    pub fn leave(mut self, drain: Duration) -> Receiver<AppEvent> {
        self.drain_ns
            .store(drain.as_nanos() as u64, Ordering::Relaxed);
        self.leave.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.event_rx.clone()
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Everything the daemon thread owns; `run` is the thread body.
struct EventLoop {
    pid: ParticipantId,
    data_socket: Box<dyn DatagramSocket>,
    token_socket: Box<dyn DatagramSocket>,
    book: AddressBook,
    fanout: Vec<SocketAddr>,
    daemon: MembershipDaemon,
    cmd_rx: Receiver<Command>,
    /// A submission the daemon refused (send queue full), held here and
    /// retried before the command queue is read again. While it waits,
    /// the queue backs up and clients see [`SubmitError::Backlogged`] —
    /// backpressure instead of a silent shed.
    pending_submit: Option<(Bytes, Service)>,
    event_tx: Sender<AppEvent>,
    stop: Arc<AtomicBool>,
    leave: Arc<AtomicBool>,
    drain_ns: Arc<AtomicU64>,
    stats: Arc<StatsInner>,
    ring_info: Arc<RingInfoInner>,
    start: Instant,
    datapath: Datapath,
    recv_pool: BufferPool,
    send_pool: BufferPool,
    /// Pre-acquired receive leases, topped up to [`RECV_BATCH`] before
    /// every batched poll so an idle poll costs zero pool traffic.
    recv_leases: Vec<BufLease>,
    /// Reused scratch for the batched flush (capacity persists).
    data_batch: Vec<(Bytes, SocketAddr)>,
    token_batch: Vec<(Bytes, SocketAddr)>,
    /// Legacy per-datagram receive buffer (empty on the batched path).
    scratch: Vec<u8>,
    /// Parks the loop on both socket descriptors when idle (empty — and
    /// therefore a plain sleep — when either socket cannot expose one).
    poller: Poller,
}

impl EventLoop {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn run(&mut self) {
        let mut outputs = Vec::new();
        let now = self.now_ns();
        self.daemon.start(now, &mut outputs);
        self.flush(&mut outputs);
        loop {
            if self.stop.load(Ordering::Relaxed) {
                self.publish_ring_info();
                return;
            }
            if self.leave.load(Ordering::Relaxed) {
                self.drain_and_leave(&mut outputs);
                return;
            }
            let did_work = self.step(&mut outputs, true);
            self.publish_ring_info();
            if !did_work {
                self.idle_wait();
            }
        }
    }

    /// Idle wait: parks until a datagram lands on either socket, the next
    /// protocol timer is due, or [`IDLE_SLEEP`] passes, whichever is
    /// first. On a busy ring the token is in flight precisely when the
    /// loop has drained its sockets, so a fixed-quantum doze here would
    /// quantize the entire rotation to the sleep granularity; parking on
    /// the descriptors wakes the loop the moment the token lands.
    ///
    /// The legacy baseline keeps the original fixed-quantum doze.
    ///
    /// Both sockets get a [`DatagramSocket::prepare_wait`] call right
    /// before the park (non-short-circuiting, so both always arm): a
    /// userspace transport uses it to arm its doorbell and re-check for
    /// datagrams that raced the idle decision; kernel sockets return
    /// false and rely on `ppoll` level-triggering.
    fn idle_wait(&self) {
        if self.datapath == Datapath::PerDatagram {
            if self.data_socket.prepare_wait() | self.token_socket.prepare_wait() {
                return;
            }
            std::thread::sleep(IDLE_SLEEP);
            return;
        }
        let mut timeout = IDLE_SLEEP;
        if let Some((deadline, _)) = self.daemon.next_timer() {
            timeout = timeout.min(Duration::from_nanos(deadline.saturating_sub(self.now_ns())));
        }
        if self.data_socket.prepare_wait() | self.token_socket.prepare_wait() {
            return;
        }
        self.poller.wait(timeout);
    }

    /// One iteration: client commands (when accepted), one receive batch
    /// from the sockets in priority order, due timers. Returns whether
    /// anything happened.
    fn step(&mut self, outputs: &mut Vec<Output>, accept_commands: bool) -> bool {
        let mut did_work = false;

        // 1. Client commands.
        //
        //    Batched (the shipping datapath): a submission the daemon
        //    refuses (send queue full) is parked in `pending_submit` and
        //    the queue is left alone until it fits — the command channel
        //    backs up, clients see `Backlogged`, and this loop spends its
        //    cycles on the sockets instead of shedding a firehose one
        //    command at a time.
        //
        //    PerDatagram (the legacy baseline): the original behavior,
        //    kept bit-for-bit for the packet_path benchmark — drain the
        //    whole queue every step and shed whatever the daemon refuses.
        if accept_commands {
            if let Some((payload, service)) = self.pending_submit.take() {
                match self.daemon.submit(payload.clone(), service) {
                    Ok(()) => {
                        self.stats.submissions.fetch_add(1, Ordering::Relaxed);
                        did_work = true;
                    }
                    Err(_) => self.pending_submit = Some((payload, service)),
                }
            }
            while self.pending_submit.is_none() {
                match self.cmd_rx.try_recv() {
                    Ok(Command::Submit(payload, service)) => {
                        match self.datapath {
                            Datapath::Batched => {
                                match self.daemon.submit(payload.clone(), service) {
                                    Ok(()) => {
                                        self.stats.submissions.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(_) => self.pending_submit = Some((payload, service)),
                                }
                            }
                            Datapath::PerDatagram => match self.daemon.submit(payload, service) {
                                Ok(()) => {
                                    self.stats.submissions.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    self.stats.submissions_shed.fetch_add(1, Ordering::Relaxed);
                                }
                            },
                        }
                        did_work = true;
                    }
                    Ok(Command::InjectPanic) => {
                        panic!("fault injection: panic requested by test")
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // Every handle is gone; stop at the top of the loop.
                        self.stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }

        // 2. Sockets, in protocol priority order (Section III-D): when the
        //    token has priority, drain the token socket first. One bounded
        //    batch per iteration, so priority is re-evaluated between
        //    batches rather than starving the token behind a data flood.
        let token_first = self.daemon.token_has_priority();
        for pick_token in if token_first {
            [true, false]
        } else {
            [false, true]
        } {
            let received = match self.datapath {
                Datapath::Batched => self.recv_burst(pick_token, outputs),
                Datapath::PerDatagram => self.recv_single(pick_token, outputs),
            };
            if received > 0 {
                did_work = true;
                break; // re-evaluate priority after every batch
            }
        }

        // 3. Timers.
        while let Some((deadline, kind)) = self.daemon.next_timer() {
            if deadline > self.now_ns() {
                break;
            }
            let now = self.now_ns();
            self.daemon.handle(now, Input::Timer(kind), outputs);
            self.flush(outputs);
            did_work = true;
        }

        did_work
    }

    /// Batched receive: drain up to [`RECV_BATCH`] datagrams from one
    /// socket in as few syscalls as the platform allows, parse each in
    /// place from its pooled buffer, then flush all resulting output as
    /// gathered bursts. Returns the number of datagrams received.
    fn recv_burst(&mut self, pick_token: bool, outputs: &mut Vec<Output>) -> usize {
        while self.recv_leases.len() < RECV_BATCH {
            self.recv_leases.push(self.recv_pool.acquire());
        }
        let (outcome, lens) = {
            let leases = &mut self.recv_leases;
            let socket: &dyn DatagramSocket = if pick_token {
                self.token_socket.as_ref()
            } else {
                self.data_socket.as_ref()
            };
            let mut slots: Vec<RecvSlot<'_>> = leases
                .iter_mut()
                .map(|l| RecvSlot::new(l.recv_space()))
                .collect();
            let outcome = socket.recv_batch(&mut slots);
            // Filled slots form a prefix; remember their datagram lengths.
            let lens: Vec<usize> = slots
                .iter()
                .take_while(|s| s.addr.is_some())
                .map(|s| s.len)
                .collect();
            (outcome, lens)
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) if e.kind() == ErrorKind::Interrupted => return 0,
            Err(_) => {
                // The loop must survive recv errors (ECONNREFUSED from a
                // peer's ICMP port-unreachable, ...) but not hide them.
                self.stats.recv_errors.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
        };
        self.stats
            .syscalls_rx
            .fetch_add(outcome.syscalls, Ordering::Relaxed);
        if outcome.received == 0 {
            return 0;
        }
        self.stats
            .datagrams_rx
            .fetch_add(outcome.received as u64, Ordering::Relaxed);
        let used: Vec<BufLease> = self.recv_leases.drain(..outcome.received).collect();
        for (lease, len) in used.into_iter().zip(lens) {
            // Freeze only the datagram prefix: the parse reads in place
            // and any payload slice keeps the pooled buffer leased until
            // the protocol discards the message.
            let mut datagram = lease.freeze_prefix(len);
            if let Some(input) = parse_datagram(&mut datagram) {
                let now = self.now_ns();
                self.daemon.handle(now, input, outputs);
            } else {
                self.stats.decode_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.flush(outputs);
        outcome.received
    }

    /// Legacy receive: one syscall, one datagram, one heap copy. Returns
    /// 1 if a datagram was processed.
    fn recv_single(&mut self, pick_token: bool, outputs: &mut Vec<Output>) -> usize {
        let result = {
            let buf = &mut self.scratch;
            let socket: &dyn DatagramSocket = if pick_token {
                self.token_socket.as_ref()
            } else {
                self.data_socket.as_ref()
            };
            socket.recv_from(buf)
        };
        self.stats.syscalls_rx.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok((len, _from)) => {
                self.stats.datagrams_rx.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_copied
                    .fetch_add(len as u64, Ordering::Relaxed);
                let mut datagram = Bytes::copy_from_slice(&self.scratch[..len]);
                if let Some(input) = parse_datagram(&mut datagram) {
                    let now = self.now_ns();
                    self.daemon.handle(now, input, outputs);
                    self.flush(outputs);
                } else {
                    self.stats.decode_failures.fetch_add(1, Ordering::Relaxed);
                }
                1
            }
            // An empty non-blocking socket is the steady state, not an
            // error.
            Err(e) if e.kind() == ErrorKind::WouldBlock => 0,
            Err(e) if e.kind() == ErrorKind::Interrupted => 0,
            Err(_) => {
                self.stats.recv_errors.fetch_add(1, Ordering::Relaxed);
                0
            }
        }
    }

    /// Graceful departure: keep the protocol running (without new client
    /// commands) until our send queue has gone onto the ring and the
    /// receive buffer has delivered, bounded by the drain budget; then
    /// announce the departure (twice — it rides UDP) so peers fail us by
    /// reciprocity and reform after one gather round.
    fn drain_and_leave(&mut self, outputs: &mut Vec<Output>) {
        // Submissions already queued when the leave flag was set were
        // accepted from the caller's point of view, so they drain out;
        // only commands arriving after this point are refused.
        if let Some((payload, service)) = self.pending_submit.take() {
            match self.daemon.submit(payload, service) {
                Ok(()) => self.stats.submissions.fetch_add(1, Ordering::Relaxed),
                Err(_) => self.stats.submissions_shed.fetch_add(1, Ordering::Relaxed),
            };
        }
        loop {
            match self.cmd_rx.try_recv() {
                Ok(Command::Submit(payload, service)) => {
                    match self.daemon.submit(payload, service) {
                        Ok(()) => self.stats.submissions.fetch_add(1, Ordering::Relaxed),
                        Err(_) => self.stats.submissions_shed.fetch_add(1, Ordering::Relaxed),
                    };
                }
                Ok(Command::InjectPanic) => panic!("fault injection: panic requested by test"),
                Err(_) => break,
            }
        }
        self.flush(outputs);
        let deadline = Instant::now() + Duration::from_nanos(self.drain_ns.load(Ordering::Relaxed));
        while Instant::now() < deadline {
            let drained = self.daemon.state() == StateKind::Operational
                && self.daemon.participant().send_queue_len() == 0
                && self.daemon.participant().buffered() == 0;
            if drained {
                break;
            }
            if !self.step(outputs, false) {
                self.idle_wait();
            }
        }
        self.daemon.announce_leave(outputs);
        self.flush(outputs);
        self.daemon.announce_leave(outputs);
        self.flush(outputs);
        self.publish_ring_info();
    }

    fn publish_ring_info(&self) {
        let stats = self.daemon.stats();
        self.ring_info
            .state
            .store(state_to_u8(self.daemon.state()), Ordering::Relaxed);
        self.ring_info
            .rings_formed
            .store(stats.rings_formed, Ordering::Relaxed);
        self.ring_info
            .tokens_retransmitted
            .store(stats.tokens_retransmitted, Ordering::Relaxed);
        self.ring_info
            .ring_counter
            .store(self.daemon.max_ring_counter(), Ordering::Relaxed);
    }

    fn flush(&mut self, outputs: &mut Vec<Output>) {
        match self.datapath {
            Datapath::Batched => self.flush_batched(outputs),
            Datapath::PerDatagram => self.flush_per_datagram(outputs),
        }
    }

    /// Folds a batch send's outcome into the hot-path counters. UDP send
    /// failures are not retried (the protocol's retransmission machinery
    /// owns recovery) but they are counted per failing destination.
    fn record_send(&self, out: SendOutcome) {
        self.stats
            .datagrams_tx
            .fetch_add(out.sent as u64, Ordering::Relaxed);
        self.stats
            .syscalls_tx
            .fetch_add(out.syscalls, Ordering::Relaxed);
        self.stats
            .send_errors
            .fetch_add(out.errors as u64, Ordering::Relaxed);
    }

    /// Batched flush: each multicast is encoded exactly once into a pooled
    /// buffer, its fanout becomes cheap [`Bytes`] clones of that one
    /// encoding, and the whole output burst — token first, then data —
    /// leaves in as few syscalls as [`DatagramSocket::send_batch`] can
    /// manage. The token burst goes out before the data burst: Accelerated
    /// Ring releases the token before the multicast completes (paper
    /// Section III-B), so the successor starts its protocol work while our
    /// data is still leaving.
    fn flush_batched(&mut self, outputs: &mut Vec<Output>) {
        let mut data_batch = std::mem::take(&mut self.data_batch);
        let mut token_batch = std::mem::take(&mut self.token_batch);
        for output in outputs.drain(..) {
            match output {
                Output::Multicast(msg) => {
                    let mut lease = self.send_pool.acquire();
                    lease.clear();
                    wire::encode_data_into(&msg, &mut lease);
                    let encoded = lease.freeze();
                    for addr in &self.fanout {
                        data_batch.push((encoded.clone(), *addr));
                    }
                }
                Output::SendToken { to, token } => {
                    let mut lease = self.send_pool.acquire();
                    lease.clear();
                    wire::encode_token_into(&token, &mut lease);
                    if let Some(peer) = self.book.get(to) {
                        token_batch.push((lease.freeze(), peer.token));
                    }
                }
                Output::SendControl { to, msg } => {
                    // Control traffic is rare (membership transitions); it
                    // rides the data burst but skips the pool.
                    let encoded = encode_control(&msg);
                    match to {
                        Some(to) => {
                            if to == self.pid {
                                continue;
                            }
                            if let Some(peer) = self.book.get(to) {
                                data_batch.push((encoded, peer.data));
                            }
                        }
                        None => {
                            for addr in &self.fanout {
                                data_batch.push((encoded.clone(), *addr));
                            }
                        }
                    }
                }
                Output::Deliver(d) => {
                    let _ = self.event_tx.send(AppEvent::Delivered(d));
                }
                Output::ConfigChange(c) => {
                    let _ = self.event_tx.send(AppEvent::Config(c));
                }
            }
        }
        if !token_batch.is_empty() {
            let out = self.token_socket.send_batch(&token_batch);
            self.record_send(out);
            token_batch.clear();
        }
        if !data_batch.is_empty() {
            let out = self.data_socket.send_batch(&data_batch);
            self.record_send(out);
            data_batch.clear();
        }
        // Hand the (emptied, capacity-bearing) scratch vectors back.
        self.data_batch = data_batch;
        self.token_batch = token_batch;
    }

    /// Sends one datagram on the legacy path, counting the syscall and any
    /// error.
    fn send_single(&self, socket: &dyn DatagramSocket, encoded: &[u8], addr: SocketAddr) {
        self.stats.syscalls_tx.fetch_add(1, Ordering::Relaxed);
        match socket.send_to(encoded, addr) {
            Ok(_) => {
                self.stats.datagrams_tx.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.send_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Legacy flush: one fresh encode per datagram, one syscall per
    /// datagram — the baseline the packet_path benchmark measures against.
    fn flush_per_datagram(&mut self, outputs: &mut Vec<Output>) {
        for output in outputs.drain(..) {
            match output {
                Output::Multicast(msg) => {
                    let encoded = wire::encode_data(&msg);
                    self.stats.bytes_copied.fetch_add(
                        (encoded.len() * self.fanout.len()) as u64,
                        Ordering::Relaxed,
                    );
                    for addr in &self.fanout {
                        self.send_single(self.data_socket.as_ref(), &encoded, *addr);
                    }
                }
                Output::SendToken { to, token } => {
                    let encoded = wire::encode_token(&token);
                    self.stats
                        .bytes_copied
                        .fetch_add(encoded.len() as u64, Ordering::Relaxed);
                    if let Some(peer) = self.book.get(to) {
                        self.send_single(self.token_socket.as_ref(), &encoded, peer.token);
                    }
                }
                Output::SendControl { to, msg } => {
                    let encoded = encode_control(&msg);
                    match to {
                        Some(to) => {
                            if to == self.pid {
                                continue;
                            }
                            if let Some(peer) = self.book.get(to) {
                                self.send_single(self.data_socket.as_ref(), &encoded, peer.data);
                            }
                        }
                        None => {
                            for addr in &self.fanout {
                                self.send_single(self.data_socket.as_ref(), &encoded, *addr);
                            }
                        }
                    }
                }
                Output::Deliver(d) => {
                    let _ = self.event_tx.send(AppEvent::Delivered(d));
                }
                Output::ConfigChange(c) => {
                    let _ = self.event_tx.send(AppEvent::Config(c));
                }
            }
        }
    }
}

fn parse_datagram(datagram: &mut Bytes) -> Option<Input> {
    match wire::decode_kind(datagram).ok()? {
        wire::Kind::Data => Some(Input::Data(wire::decode_data_body(datagram).ok()?)),
        wire::Kind::Token => Some(Input::Token(wire::decode_token_body(datagram).ok()?)),
        wire::Kind::Opaque => Some(Input::Control(decode_control(datagram).ok()?)),
    }
}
