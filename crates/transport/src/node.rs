//! The single-threaded UDP daemon runtime.
//!
//! One OS thread runs the whole stack (ordering + membership), exactly like
//! the paper's single-threaded daemon implementations: two non-blocking UDP
//! sockets (token and data), read in the protocol's priority order, plus a
//! command channel from local clients.

use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use accelring_core::{wire, Delivery, ParticipantId, ProtocolConfig, Service};
use accelring_membership::{
    decode_control, encode_control, ConfigChange, Input, MembershipConfig, MembershipDaemon, Output,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};

use crate::addr::{AddressBook, NodeAddr};

/// Largest datagram the transport accepts (64 KiB UDP limit).
const MAX_DATAGRAM: usize = 65_536;
/// How long the loop sleeps when completely idle.
const IDLE_SLEEP: Duration = Duration::from_micros(200);
/// Capacity of the client command channel. A full channel surfaces as
/// [`SubmitError::Backlogged`] instead of unbounded memory growth when the
/// ring cannot keep up with local submitters.
const COMMAND_QUEUE_CAPACITY: usize = 4096;

/// Counters exported by a running node; every anomaly the event loop
/// swallows (it must keep running) is visible here instead of vanishing.
#[derive(Debug, Default)]
struct StatsInner {
    datagrams_rx: AtomicU64,
    decode_failures: AtomicU64,
    recv_errors: AtomicU64,
    send_errors: AtomicU64,
    submissions: AtomicU64,
    submissions_shed: AtomicU64,
}

/// A point-in-time copy of a node's transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Datagrams received across both sockets.
    pub datagrams_rx: u64,
    /// Datagrams that failed to parse (truncated, unknown kind, garbage).
    pub decode_failures: u64,
    /// `recv` failures other than `WouldBlock`.
    pub recv_errors: u64,
    /// `send_to` failures.
    pub send_errors: u64,
    /// Client submissions accepted into the daemon.
    pub submissions: u64,
    /// Client submissions the daemon's own pending queue refused.
    pub submissions_shed: u64,
}

impl StatsInner {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            datagrams_rx: self.datagrams_rx.load(Ordering::Relaxed),
            decode_failures: self.decode_failures.load(Ordering::Relaxed),
            recv_errors: self.recv_errors.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            submissions: self.submissions.load(Ordering::Relaxed),
            submissions_shed: self.submissions_shed.load(Ordering::Relaxed),
        }
    }
}

/// Why a [`NodeHandle::submit`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The command queue is full; retry after draining deliveries.
    Backlogged,
    /// The daemon thread has stopped.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backlogged => write!(f, "command queue full (backpressure)"),
            SubmitError::Stopped => write!(f, "daemon thread has stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// An event surfaced to the application.
#[derive(Debug, Clone)]
pub enum AppEvent {
    /// A message was delivered in total order.
    Delivered(Delivery),
    /// An EVS configuration change.
    Config(ConfigChange),
}

#[derive(Debug)]
enum Command {
    Submit(Bytes, Service),
}

/// Errors from starting a transport node.
#[derive(Debug)]
pub enum TransportError {
    /// Binding or configuring a socket failed.
    Io(std::io::Error),
    /// The local participant id is missing from the address book.
    NotInAddressBook(ParticipantId),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::NotInAddressBook(p) => {
                write!(f, "participant {p} is not in the address book")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::NotInAddressBook(_) => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A daemon with bound sockets whose addresses can be shared with peers
/// before the event loop starts (two-phase startup so tests can allocate
/// ephemeral ports).
#[derive(Debug)]
pub struct BoundNode {
    pid: ParticipantId,
    data_socket: UdpSocket,
    token_socket: UdpSocket,
}

impl BoundNode {
    /// Binds the two sockets on `ip` with ephemeral ports.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn bind(pid: ParticipantId, ip: &str) -> Result<BoundNode, TransportError> {
        let data_socket = UdpSocket::bind((ip, 0))?;
        let token_socket = UdpSocket::bind((ip, 0))?;
        Ok(BoundNode {
            pid,
            data_socket,
            token_socket,
        })
    }

    /// Binds the two sockets to explicit addresses (production daemons use
    /// fixed ports published in the address book).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if either bind fails.
    pub fn bind_addrs(
        pid: ParticipantId,
        data: SocketAddr,
        token: SocketAddr,
    ) -> Result<BoundNode, TransportError> {
        Ok(BoundNode {
            pid,
            data_socket: UdpSocket::bind(data)?,
            token_socket: UdpSocket::bind(token)?,
        })
    }

    /// This node's address-book entry.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if the local addresses cannot be read.
    pub fn addr(&self) -> Result<NodeAddr, TransportError> {
        Ok(NodeAddr {
            pid: self.pid,
            data: self.data_socket.local_addr()?,
            token: self.token_socket.local_addr()?,
        })
    }

    /// Starts the event loop on its own thread.
    ///
    /// # Errors
    ///
    /// Returns an error if the sockets cannot be made non-blocking or the
    /// node is missing from `book`.
    pub fn start(
        self,
        book: AddressBook,
        protocol: ProtocolConfig,
        membership: MembershipConfig,
    ) -> Result<NodeHandle, TransportError> {
        if book.get(self.pid).is_none() {
            return Err(TransportError::NotInAddressBook(self.pid));
        }
        self.data_socket.set_nonblocking(true)?;
        self.token_socket.set_nonblocking(true)?;
        let (cmd_tx, cmd_rx) = bounded(COMMAND_QUEUE_CAPACITY);
        let (event_tx, event_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let stats = Arc::new(StatsInner::default());
        let stats2 = Arc::clone(&stats);
        let pid = self.pid;
        let thread = std::thread::Builder::new()
            .name(format!("accelring-{pid}"))
            .spawn(move || {
                run_loop(
                    pid,
                    self.data_socket,
                    self.token_socket,
                    book,
                    protocol,
                    membership,
                    cmd_rx,
                    event_tx,
                    stop2,
                    stats2,
                );
            })
            .expect("spawn daemon thread");
        Ok(NodeHandle {
            pid,
            cmd_tx,
            event_rx,
            stop,
            stats,
            thread: Some(thread),
        })
    }
}

/// Handle to a running daemon thread.
#[derive(Debug)]
pub struct NodeHandle {
    pid: ParticipantId,
    cmd_tx: Sender<Command>,
    event_rx: Receiver<AppEvent>,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// The daemon's participant id.
    pub fn pid(&self) -> ParticipantId {
        self.pid
    }

    /// Submits a message for totally ordered multicast.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Backlogged`] when the bounded command queue
    /// is full — the caller owns the retry/shed decision — and
    /// [`SubmitError::Stopped`] if the daemon thread has exited.
    pub fn submit(&self, payload: Bytes, service: Service) -> Result<(), SubmitError> {
        match self.cmd_tx.try_send(Command::Submit(payload, service)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::Backlogged),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Stopped),
        }
    }

    /// A snapshot of the node's transport counters.
    pub fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    /// The stream of deliveries and configuration changes.
    pub fn events(&self) -> &Receiver<AppEvent> {
        &self.event_rx
    }

    /// Asks the event loop to stop and waits for the thread to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    pid: ParticipantId,
    data_socket: UdpSocket,
    token_socket: UdpSocket,
    book: AddressBook,
    protocol: ProtocolConfig,
    membership: MembershipConfig,
    cmd_rx: Receiver<Command>,
    event_tx: Sender<AppEvent>,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
) {
    let start = Instant::now();
    let now_ns = |start: &Instant| -> u64 { start.elapsed().as_nanos() as u64 };
    let mut daemon = MembershipDaemon::new(pid, protocol, membership);
    let mut outputs = Vec::new();
    daemon.start(now_ns(&start), &mut outputs);
    let fanout = book.fanout_data(pid);
    flush(
        pid,
        &mut outputs,
        &data_socket,
        &token_socket,
        &book,
        &fanout,
        &event_tx,
        &stats,
    );

    let mut buf = vec![0u8; MAX_DATAGRAM];
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let mut did_work = false;

        // 1. Client commands.
        loop {
            match cmd_rx.try_recv() {
                Ok(Command::Submit(payload, service)) => {
                    // The daemon sheds when its own pending queue is full
                    // (the client saw backpressure at the channel already);
                    // count it rather than dropping silently.
                    match daemon.submit(payload, service) {
                        Ok(()) => stats.submissions.fetch_add(1, Ordering::Relaxed),
                        Err(_) => stats.submissions_shed.fetch_add(1, Ordering::Relaxed),
                    };
                    did_work = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }

        // 2. Sockets, in protocol priority order (Section III-D): when the
        //    token has priority, drain the token socket first.
        let token_first = daemon.token_has_priority();
        let order: [&UdpSocket; 2] = if token_first {
            [&token_socket, &data_socket]
        } else {
            [&data_socket, &token_socket]
        };
        for socket in order {
            match socket.recv_from(&mut buf) {
                Ok((len, _from)) => {
                    did_work = true;
                    stats.datagrams_rx.fetch_add(1, Ordering::Relaxed);
                    let mut datagram = Bytes::copy_from_slice(&buf[..len]);
                    if let Some(input) = parse_datagram(&mut datagram) {
                        daemon.handle(now_ns(&start), input, &mut outputs);
                        flush(
                            pid,
                            &mut outputs,
                            &data_socket,
                            &token_socket,
                            &book,
                            &fanout,
                            &event_tx,
                            &stats,
                        );
                    } else {
                        stats.decode_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    break; // re-evaluate priority after every datagram
                }
                // An empty non-blocking socket is the steady state, not an
                // error. Everything else (ECONNREFUSED from a peer's ICMP
                // port-unreachable, EMSGSIZE, ...) is counted: the loop must
                // survive it, but it must not vanish.
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    stats.recv_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // 3. Timers.
        while let Some((deadline, kind)) = daemon.next_timer() {
            if deadline > now_ns(&start) {
                break;
            }
            daemon.handle(now_ns(&start), Input::Timer(kind), &mut outputs);
            flush(
                pid,
                &mut outputs,
                &data_socket,
                &token_socket,
                &book,
                &fanout,
                &event_tx,
                &stats,
            );
            did_work = true;
        }

        if !did_work {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

fn parse_datagram(datagram: &mut Bytes) -> Option<Input> {
    match wire::decode_kind(datagram).ok()? {
        wire::Kind::Data => Some(Input::Data(wire::decode_data_body(datagram).ok()?)),
        wire::Kind::Token => Some(Input::Token(wire::decode_token_body(datagram).ok()?)),
        wire::Kind::Opaque => Some(Input::Control(decode_control(datagram).ok()?)),
    }
}

#[allow(clippy::too_many_arguments)]
fn flush(
    pid: ParticipantId,
    outputs: &mut Vec<Output>,
    data_socket: &UdpSocket,
    token_socket: &UdpSocket,
    book: &AddressBook,
    fanout: &[SocketAddr],
    event_tx: &Sender<AppEvent>,
    stats: &StatsInner,
) {
    // UDP send failures are not retried (the protocol's retransmission
    // machinery owns recovery) but they are counted.
    let send = |socket: &UdpSocket, encoded: &[u8], addr: SocketAddr| {
        if socket.send_to(encoded, addr).is_err() {
            stats.send_errors.fetch_add(1, Ordering::Relaxed);
        }
    };
    for output in outputs.drain(..) {
        match output {
            Output::Multicast(msg) => {
                let encoded = wire::encode_data(&msg);
                for addr in fanout {
                    send(data_socket, &encoded, *addr);
                }
            }
            Output::SendToken { to, token } => {
                let encoded = wire::encode_token(&token);
                if let Some(peer) = book.get(to) {
                    send(token_socket, &encoded, peer.token);
                }
            }
            Output::SendControl { to, msg } => {
                let encoded = encode_control(&msg);
                match to {
                    Some(to) => {
                        if to == pid {
                            continue;
                        }
                        if let Some(peer) = book.get(to) {
                            send(data_socket, &encoded, peer.data);
                        }
                    }
                    None => {
                        for addr in fanout {
                            send(data_socket, &encoded, *addr);
                        }
                    }
                }
            }
            Output::Deliver(d) => {
                let _ = event_tx.send(AppEvent::Delivered(d));
            }
            Output::ConfigChange(c) => {
                let _ = event_tx.send(AppEvent::Config(c));
            }
        }
    }
}
