//! In-process netem: a seeded fault plane underneath the real UDP sockets.
//!
//! A [`FaultPlane`] is shared by every node of a test ring. Each node's two
//! sockets are wrapped in an [`InterposedSocket`] that consults the plane on
//! every send: per-peer-pair drop, duplication, reordering (as extra delay),
//! Gilbert–Elliott burst loss, asymmetric partitions, and token-socket vs
//! data-socket targeting. Interposition happens on the *send* path, so one
//! verdict covers a directed link and asymmetric partitions come for free.
//!
//! Semantics mirror the simulator's chaos hook (`accelring-chaos`):
//!
//! * tokens are dropped and delayed but never duplicated — a duplicated
//!   token is indistinguishable from the protocol's own retransmission and
//!   would not exercise anything new;
//! * a node can always reach itself (the singleton token loop is exempt);
//! * traffic to addresses the plane does not know (not in the address
//!   book) passes untouched.
//!
//! Determinism: the plane's randomness is seeded, so the *distribution* of
//! faults reproduces across runs, but real threads interleave their sends
//! nondeterministically, so individual packet fates do not — unlike the
//! virtual-time simulator. The EVS invariants checked by `accelring-chaos`
//! must hold under every interleaving, which is exactly what makes the live
//! harness a stronger test than a bit-reproducible one.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use accelring_core::ParticipantId;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::AddressBook;
use crate::socket::{DatagramSocket, RecvOutcome, RecvSlot, SendOutcome};

/// Which of a node's two sockets a packet left on. The token travels on
/// its own socket (Section III-D), so targeting a class targets a traffic
/// type: [`SocketClass::Token`] carries only the token, and
/// [`SocketClass::Data`] carries ordered data and membership control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocketClass {
    /// The data socket (ordered messages and membership control).
    Data,
    /// The token socket.
    Token,
}

/// Gilbert–Elliott burst-loss parameters, evaluated per data packet per
/// directed link (each link keeps its own good/bad state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of moving good → bad, per packet.
    pub p_enter: f64,
    /// Probability of moving bad → good, per packet.
    pub p_exit: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A moderate burst profile: mostly clean, with bursts that drop about
    /// half the packets and last tens of packets.
    pub fn bursty() -> GilbertElliott {
        GilbertElliott {
            p_enter: 0.02,
            p_exit: 0.10,
            loss_good: 0.005,
            loss_bad: 0.5,
        }
    }
}

/// Counters of everything the plane has done to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlaneStats {
    /// Data/control datagrams dropped by loss models.
    pub data_dropped: u64,
    /// Tokens dropped (bursts and rate loss).
    pub tokens_dropped: u64,
    /// Datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams held back for later release (reordering/delay).
    pub delayed: u64,
    /// Datagrams dropped by partition or isolation rules.
    pub partition_dropped: u64,
}

#[derive(Debug)]
struct PlaneInner {
    rng: StdRng,
    /// Both of a node's socket addresses map to its pid.
    addr_to_pid: HashMap<SocketAddr, u16>,
    pids: Vec<u16>,
    /// Directed links currently blackholed (`from → to`).
    blocked: HashSet<(u16, u16)>,
    data_loss: f64,
    token_loss: f64,
    ge: Option<GilbertElliott>,
    /// Directed links currently in the Gilbert–Elliott bad state.
    ge_bad: HashSet<(u16, u16)>,
    dup_rate: f64,
    reorder_rate: f64,
    max_extra_delay: Duration,
    drop_tokens: u64,
    last_token_route: Option<(ParticipantId, ParticipantId)>,
    stats: FaultPlaneStats,
}

/// What happens to one send: each entry is a copy to put on the wire after
/// that much extra delay (zero = immediately). Empty = dropped.
#[derive(Debug)]
pub(crate) struct SendFate {
    pub(crate) copies: Vec<Duration>,
}

impl SendFate {
    fn deliver() -> SendFate {
        SendFate {
            copies: vec![Duration::ZERO],
        }
    }

    fn drop() -> SendFate {
        SendFate { copies: Vec::new() }
    }
}

/// The shared fault model for one test ring. Cheap to consult (one mutex
/// acquisition per send); all knobs can be turned while traffic flows.
#[derive(Debug)]
pub struct FaultPlane {
    inner: Mutex<PlaneInner>,
}

impl FaultPlane {
    /// A quiet plane (no faults) with a seeded random source.
    pub fn new(seed: u64) -> Arc<FaultPlane> {
        Arc::new(FaultPlane {
            inner: Mutex::new(PlaneInner {
                rng: StdRng::seed_from_u64(seed ^ 0x11FE_11FE_11FE_11FE),
                addr_to_pid: HashMap::new(),
                pids: Vec::new(),
                blocked: HashSet::new(),
                data_loss: 0.0,
                token_loss: 0.0,
                ge: None,
                ge_bad: HashSet::new(),
                dup_rate: 0.0,
                reorder_rate: 0.0,
                max_extra_delay: Duration::ZERO,
                drop_tokens: 0,
                last_token_route: None,
                stats: FaultPlaneStats::default(),
            }),
        })
    }

    /// Teaches the plane which addresses belong to which participant.
    /// Sends to unregistered addresses pass untouched.
    pub fn register_book(&self, book: &AddressBook) {
        let mut inner = self.lock();
        for peer in book.peers() {
            inner.addr_to_pid.insert(peer.data, peer.pid.as_u16());
            inner.addr_to_pid.insert(peer.token, peer.pid.as_u16());
            if !inner.pids.contains(&peer.pid.as_u16()) {
                inner.pids.push(peer.pid.as_u16());
            }
        }
        inner.pids.sort_unstable();
    }

    /// Independent per-packet loss rates for the data and token classes.
    pub fn set_loss(&self, data_rate: f64, token_rate: f64) {
        let mut inner = self.lock();
        inner.data_loss = data_rate;
        inner.token_loss = token_rate;
    }

    /// Enables (or with `None` disables) Gilbert–Elliott burst loss on the
    /// data class; overrides the flat data rate while active.
    pub fn set_gilbert_elliott(&self, ge: Option<GilbertElliott>) {
        let mut inner = self.lock();
        inner.ge = ge;
        inner.ge_bad.clear();
    }

    /// Duplication and reordering churn. Reordered packets are held back a
    /// uniform `0..=max_extra_delay` and released by whichever socket on
    /// the sending node touches the network next, so they overtake traffic
    /// sent in between.
    pub fn set_churn(&self, dup_rate: f64, reorder_rate: f64, max_extra_delay: Duration) {
        let mut inner = self.lock();
        inner.dup_rate = dup_rate;
        inner.reorder_rate = reorder_rate;
        inner.max_extra_delay = max_extra_delay;
    }

    /// Installs a symmetric partition: links inside a group stay up, links
    /// across groups are blackholed both ways. Nodes absent from every
    /// group are isolated completely. Replaces any previous blocks.
    pub fn partition(&self, groups: &[Vec<u16>]) {
        let mut inner = self.lock();
        let group_of = |pid: u16| groups.iter().position(|g| g.contains(&pid));
        let pids = inner.pids.clone();
        inner.blocked.clear();
        for &a in &pids {
            for &b in &pids {
                if a == b {
                    continue;
                }
                match (group_of(a), group_of(b)) {
                    (Some(ga), Some(gb)) if ga == gb => {}
                    _ => {
                        inner.blocked.insert((a, b));
                    }
                }
            }
        }
    }

    /// Blackholes the directed link `from → to` (asymmetric partition:
    /// the reverse direction is untouched).
    pub fn block_one_way(&self, from: u16, to: u16) {
        self.lock().blocked.insert((from, to));
    }

    /// Cuts every link to and from `node`.
    pub fn isolate(&self, node: u16) {
        let mut inner = self.lock();
        let pids = inner.pids.clone();
        for &p in &pids {
            if p != node {
                inner.blocked.insert((node, p));
                inner.blocked.insert((p, node));
            }
        }
    }

    /// Restores every link to and from `node`.
    pub fn reconnect(&self, node: u16) {
        self.lock().blocked.retain(|&(a, b)| a != node && b != node);
    }

    /// Removes all partition and isolation blocks.
    pub fn heal(&self) {
        self.lock().blocked.clear();
    }

    /// Heals partitions and zeroes every loss and churn knob (delayed
    /// packets already held are still released).
    pub fn quiesce(&self) {
        let mut inner = self.lock();
        inner.blocked.clear();
        inner.data_loss = 0.0;
        inner.token_loss = 0.0;
        inner.ge = None;
        inner.ge_bad.clear();
        inner.dup_rate = 0.0;
        inner.reorder_rate = 0.0;
        inner.max_extra_delay = Duration::ZERO;
        inner.drop_tokens = 0;
    }

    /// Drops the next `n` token sends outright (exercises the token
    /// retransmit timer without touching data).
    pub fn drop_next_tokens(&self, n: u64) {
        self.lock().drop_tokens = n;
    }

    /// The `(from, to)` of the most recent token send observed, dropped or
    /// not — a live approximation of "who holds the token".
    pub fn last_token_route(&self) -> Option<(ParticipantId, ParticipantId)> {
        self.lock().last_token_route
    }

    /// A snapshot of what the plane has done so far.
    pub fn stats(&self) -> FaultPlaneStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlaneInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn fate(&self, from: u16, to: SocketAddr, class: SocketClass) -> SendFate {
        let mut inner = self.lock();
        let Some(&to) = inner.addr_to_pid.get(&to) else {
            return SendFate::deliver();
        };
        if to == from {
            return SendFate::deliver(); // a node always reaches itself
        }
        if class == SocketClass::Token {
            inner.last_token_route = Some((ParticipantId::new(from), ParticipantId::new(to)));
        }
        if inner.blocked.contains(&(from, to)) {
            inner.stats.partition_dropped += 1;
            return SendFate::drop();
        }
        match class {
            SocketClass::Token => {
                if inner.drop_tokens > 0 {
                    inner.drop_tokens -= 1;
                    inner.stats.tokens_dropped += 1;
                    return SendFate::drop();
                }
                let rate = inner.token_loss;
                if rate > 0.0 && inner.rng.random_bool(rate) {
                    inner.stats.tokens_dropped += 1;
                    return SendFate::drop();
                }
            }
            SocketClass::Data => {
                let rate = match inner.ge {
                    Some(ge) => {
                        // Advance this link's two-state chain, then sample
                        // loss at the state we land in.
                        let bad_now = inner.ge_bad.contains(&(from, to));
                        let flip =
                            inner
                                .rng
                                .random_bool(if bad_now { ge.p_exit } else { ge.p_enter });
                        let bad = bad_now != flip;
                        if bad {
                            inner.ge_bad.insert((from, to));
                            ge.loss_bad
                        } else {
                            inner.ge_bad.remove(&(from, to));
                            ge.loss_good
                        }
                    }
                    None => inner.data_loss,
                };
                if rate > 0.0 && inner.rng.random_bool(rate) {
                    inner.stats.data_dropped += 1;
                    return SendFate::drop();
                }
            }
        }
        let mut copies = vec![Duration::ZERO];
        let (reorder_rate, max_extra_delay, dup_rate) =
            (inner.reorder_rate, inner.max_extra_delay, inner.dup_rate);
        if reorder_rate > 0.0 && !max_extra_delay.is_zero() && inner.rng.random_bool(reorder_rate) {
            let max = max_extra_delay.as_nanos() as u64;
            copies[0] = Duration::from_nanos(inner.rng.random_range(1..=max));
            inner.stats.delayed += 1;
        }
        if class == SocketClass::Data && dup_rate > 0.0 && inner.rng.random_bool(dup_rate) {
            copies.push(Duration::ZERO);
            inner.stats.duplicated += 1;
        }
        SendFate { copies }
    }
}

#[derive(Debug)]
struct Held {
    release: Instant,
    seq: u64,
    /// The datagram, held as a cheap reference-counted slice: on the
    /// batched send path this is a clone of the pooled encode buffer, so
    /// delaying or reordering a packet costs no copy.
    buf: Bytes,
    dest: SocketAddr,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.release == other.release && self.seq == other.seq
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release, self.seq).cmp(&(other.release, other.seq))
    }
}

#[derive(Debug, Default)]
struct HeldQueue {
    heap: BinaryHeap<Reverse<Held>>,
    seq: u64,
}

/// A datagram socket filtered through a [`FaultPlane`].
///
/// Generic over the underlying [`DatagramSocket`], so the same interposer
/// (and therefore every chaos suite) runs over kernel UDP sockets and the
/// shared-memory ring backend alike — for shm, fates are applied at
/// slot-publish time, before the datagram ever reaches a ring.
///
/// Delayed copies are queued inside the socket and released (from the real
/// socket, so the source address stays correct) the next time the event
/// loop touches this socket — the loop polls every few hundred
/// microseconds, which bounds the delay granularity.
#[derive(Debug)]
pub struct InterposedSocket<S: DatagramSocket = UdpSocket> {
    inner: S,
    from: u16,
    class: SocketClass,
    plane: Arc<FaultPlane>,
    held: Mutex<HeldQueue>,
}

impl<S: DatagramSocket> InterposedSocket<S> {
    /// Wraps `inner` (already non-blocking) as `from`'s socket of the
    /// given class.
    pub fn new(
        inner: S,
        from: ParticipantId,
        class: SocketClass,
        plane: Arc<FaultPlane>,
    ) -> InterposedSocket<S> {
        InterposedSocket {
            inner,
            from: from.as_u16(),
            class,
            plane,
            held: Mutex::new(HeldQueue::default()),
        }
    }

    fn release_due(&self) {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        while held.heap.peek().is_some_and(|Reverse(h)| h.release <= now) {
            let Reverse(h) = held.heap.pop().expect("peeked");
            // Release-time errors are swallowed: the packet was already
            // fated to be "in the network", where sends do not fail.
            let _ = self.inner.send_to(&h.buf, h.dest);
        }
    }

    fn hold(&self, buf: Bytes, dest: SocketAddr, delay: Duration) {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        held.seq += 1;
        let seq = held.seq;
        held.heap.push(Reverse(Held {
            release: Instant::now() + delay,
            seq,
            buf,
            dest,
        }));
    }
}

impl<S: DatagramSocket> DatagramSocket for InterposedSocket<S> {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> std::io::Result<usize> {
        self.release_due();
        let fate = self.plane.fate(self.from, addr, self.class);
        let mut result = Ok(buf.len());
        for delay in fate.copies {
            if delay.is_zero() {
                if let Err(e) = self.inner.send_to(buf, addr) {
                    result = Err(e);
                }
            } else {
                self.hold(Bytes::copy_from_slice(buf), addr, delay);
            }
        }
        result
    }

    fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
        self.release_due();
        self.inner.recv_from(buf)
    }

    /// Batched send with per-datagram fate: the plane is consulted for
    /// every datagram exactly as on the single-send path (loss, partition,
    /// duplication, and delay semantics are identical), and the surviving
    /// immediate copies go to the wire in one `sendmmsg` burst.
    fn send_batch(&self, batch: &[(Bytes, SocketAddr)]) -> SendOutcome {
        self.release_due();
        let mut wire: Vec<(Bytes, SocketAddr)> = Vec::with_capacity(batch.len());
        for (buf, addr) in batch {
            let fate = self.plane.fate(self.from, *addr, self.class);
            for delay in fate.copies {
                if delay.is_zero() {
                    wire.push((buf.clone(), *addr));
                } else {
                    self.hold(buf.clone(), *addr, delay);
                }
            }
        }
        let inner_out = self.inner.send_batch(&wire);
        // Fate-dropped and delayed datagrams count as sent: from the
        // node's perspective they entered the network.
        SendOutcome {
            sent: batch.len().saturating_sub(inner_out.errors),
            errors: inner_out.errors,
            syscalls: inner_out.syscalls,
        }
    }

    fn recv_batch(&self, slots: &mut [RecvSlot<'_>]) -> std::io::Result<RecvOutcome> {
        self.release_due();
        self.inner.recv_batch(slots)
    }

    /// Sleeping on the inner fd is sound for held (delayed) datagrams
    /// too: the event loop's idle wait is capped well below any chaos
    /// schedule's delay granularity, so a due release is never stalled
    /// longer than the fixed-quantum doze it replaces.
    fn poll_fd(&self) -> Option<i32> {
        self.inner.poll_fd()
    }

    fn prepare_wait(&self) -> bool {
        self.inner.prepare_wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeAddr;

    fn book_of(n: u16) -> (AddressBook, Vec<SocketAddr>) {
        let addrs: Vec<NodeAddr> = (0..n)
            .map(|i| NodeAddr {
                pid: ParticipantId::new(i),
                data: format!("127.0.0.1:{}", 20_000 + 2 * i).parse().unwrap(),
                token: format!("127.0.0.1:{}", 20_001 + 2 * i).parse().unwrap(),
            })
            .collect();
        let data: Vec<SocketAddr> = addrs.iter().map(|a| a.data).collect();
        (AddressBook::new(addrs), data)
    }

    #[test]
    fn quiet_plane_delivers_everything() {
        let (book, data) = book_of(2);
        let plane = FaultPlane::new(1);
        plane.register_book(&book);
        for _ in 0..100 {
            let fate = plane.fate(0, data[1], SocketClass::Data);
            assert_eq!(fate.copies, vec![Duration::ZERO]);
        }
        assert_eq!(plane.stats(), FaultPlaneStats::default());
    }

    #[test]
    fn total_data_loss_drops_all_but_self() {
        let (book, data) = book_of(2);
        let plane = FaultPlane::new(2);
        plane.register_book(&book);
        plane.set_loss(1.0, 0.0);
        assert!(plane.fate(0, data[1], SocketClass::Data).copies.is_empty());
        // Self-sends and the token class are untouched.
        assert!(!plane.fate(0, data[0], SocketClass::Data).copies.is_empty());
        assert!(!plane.fate(0, data[1], SocketClass::Token).copies.is_empty());
        assert!(plane.stats().data_dropped >= 1);
    }

    #[test]
    fn token_burst_counts_down() {
        let (book, data) = book_of(2);
        let plane = FaultPlane::new(3);
        plane.register_book(&book);
        plane.drop_next_tokens(2);
        assert!(plane.fate(0, data[1], SocketClass::Token).copies.is_empty());
        assert!(plane.fate(1, data[0], SocketClass::Token).copies.is_empty());
        assert!(!plane.fate(0, data[1], SocketClass::Token).copies.is_empty());
        assert_eq!(plane.stats().tokens_dropped, 2);
        assert_eq!(
            plane.last_token_route(),
            Some((ParticipantId::new(0), ParticipantId::new(1)))
        );
    }

    #[test]
    fn asymmetric_block_is_one_way() {
        let (book, data) = book_of(2);
        let plane = FaultPlane::new(4);
        plane.register_book(&book);
        plane.block_one_way(0, 1);
        assert!(plane.fate(0, data[1], SocketClass::Data).copies.is_empty());
        assert!(!plane.fate(1, data[0], SocketClass::Data).copies.is_empty());
        plane.heal();
        assert!(!plane.fate(0, data[1], SocketClass::Data).copies.is_empty());
    }

    #[test]
    fn partition_groups_and_isolation() {
        let (book, data) = book_of(4);
        let plane = FaultPlane::new(5);
        plane.register_book(&book);
        // {0,1} | {2} — node 3 in no group is isolated.
        plane.partition(&[vec![0, 1], vec![2]]);
        assert!(!plane.fate(0, data[1], SocketClass::Data).copies.is_empty());
        assert!(plane.fate(0, data[2], SocketClass::Data).copies.is_empty());
        assert!(plane.fate(2, data[1], SocketClass::Data).copies.is_empty());
        assert!(plane.fate(3, data[0], SocketClass::Data).copies.is_empty());
        assert!(plane.fate(1, data[3], SocketClass::Data).copies.is_empty());
        plane.reconnect(3);
        assert!(!plane.fate(3, data[0], SocketClass::Data).copies.is_empty());
        // Still partitioned across {0,1} | {2}.
        assert!(plane.fate(0, data[2], SocketClass::Data).copies.is_empty());
    }

    #[test]
    fn duplication_and_reorder_produce_extra_or_late_copies() {
        let (book, data) = book_of(2);
        let plane = FaultPlane::new(6);
        plane.register_book(&book);
        plane.set_churn(1.0, 0.0, Duration::ZERO);
        let fate = plane.fate(0, data[1], SocketClass::Data);
        assert_eq!(fate.copies.len(), 2, "dup yields two copies");
        // Tokens are never duplicated.
        let fate = plane.fate(0, data[1], SocketClass::Token);
        assert_eq!(fate.copies.len(), 1);
        plane.set_churn(0.0, 1.0, Duration::from_millis(5));
        let fate = plane.fate(0, data[1], SocketClass::Data);
        assert_eq!(fate.copies.len(), 1);
        assert!(!fate.copies[0].is_zero(), "reorder delays the copy");
        assert!(plane.stats().duplicated >= 1);
        assert!(plane.stats().delayed >= 1);
    }

    #[test]
    fn gilbert_elliott_drops_in_bursts() {
        let (book, data) = book_of(2);
        let plane = FaultPlane::new(7);
        plane.register_book(&book);
        plane.set_gilbert_elliott(Some(GilbertElliott {
            p_enter: 0.5,
            p_exit: 0.1,
            loss_good: 0.0,
            loss_bad: 1.0,
        }));
        let dropped = (0..500)
            .filter(|_| plane.fate(0, data[1], SocketClass::Data).copies.is_empty())
            .count();
        // The chain spends most time bad (enter ≫ exit), so well over
        // half the packets must die; exact count is seed-dependent.
        assert!(dropped > 200, "got {dropped}/500 drops");
        plane.set_gilbert_elliott(None);
        assert!(!plane.fate(0, data[1], SocketClass::Data).copies.is_empty());
    }

    #[test]
    fn unknown_destination_passes() {
        let (book, _) = book_of(2);
        let plane = FaultPlane::new(8);
        plane.register_book(&book);
        plane.set_loss(1.0, 1.0);
        plane.partition(&[vec![0], vec![1]]);
        let foreign: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(!plane.fate(0, foreign, SocketClass::Data).copies.is_empty());
    }

    #[test]
    fn batched_send_consults_fate_per_datagram() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let c = UdpSocket::bind("127.0.0.1:0").unwrap();
        for s in [&a, &b, &c] {
            s.set_nonblocking(true).unwrap();
        }
        let addrs = vec![
            NodeAddr {
                pid: ParticipantId::new(0),
                data: a.local_addr().unwrap(),
                token: a.local_addr().unwrap(),
            },
            NodeAddr {
                pid: ParticipantId::new(1),
                data: b.local_addr().unwrap(),
                token: b.local_addr().unwrap(),
            },
            NodeAddr {
                pid: ParticipantId::new(2),
                data: c.local_addr().unwrap(),
                token: c.local_addr().unwrap(),
            },
        ];
        let book = AddressBook::new(addrs);
        let plane = FaultPlane::new(10);
        plane.register_book(&book);
        // Blackhole 0→1; 0→2 stays clean. One batch fanning out to both
        // must deliver to 2 only, while still reporting both as "sent".
        plane.block_one_way(0, 1);
        let dest_b = b.local_addr().unwrap();
        let dest_c = c.local_addr().unwrap();
        let sock =
            InterposedSocket::new(a, ParticipantId::new(0), SocketClass::Data, plane.clone());
        let batch = vec![
            (Bytes::from_static(b"to-b"), dest_b),
            (Bytes::from_static(b"to-c"), dest_c),
        ];
        let out = sock.send_batch(&batch);
        assert_eq!(out.sent, 2);
        assert_eq!(out.errors, 0);
        std::thread::sleep(Duration::from_millis(20));
        let mut buf = [0u8; 16];
        assert!(b.recv_from(&mut buf).is_err(), "partitioned link");
        let (len, _) = c.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"to-c");
        assert_eq!(plane.stats().partition_dropped, 1);
    }

    #[test]
    fn batched_send_holds_delayed_copies_without_copying() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let addrs = vec![
            NodeAddr {
                pid: ParticipantId::new(0),
                data: a.local_addr().unwrap(),
                token: a.local_addr().unwrap(),
            },
            NodeAddr {
                pid: ParticipantId::new(1),
                data: b.local_addr().unwrap(),
                token: b.local_addr().unwrap(),
            },
        ];
        let book = AddressBook::new(addrs);
        let plane = FaultPlane::new(11);
        plane.register_book(&book);
        plane.set_churn(0.0, 1.0, Duration::from_millis(10));
        let dest = b.local_addr().unwrap();
        let sock =
            InterposedSocket::new(a, ParticipantId::new(0), SocketClass::Data, plane.clone());
        let out = sock.send_batch(&[(Bytes::from_static(b"late"), dest)]);
        assert_eq!(out.sent, 1);
        let mut buf = [0u8; 16];
        assert!(b.recv_from(&mut buf).is_err(), "held back");
        std::thread::sleep(Duration::from_millis(25));
        let _ = sock.recv_from(&mut buf); // any touch releases due packets
        std::thread::sleep(Duration::from_millis(5));
        let (len, _) = b.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"late");
    }

    #[test]
    fn interposed_socket_delivers_and_delays() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let addrs = vec![
            NodeAddr {
                pid: ParticipantId::new(0),
                data: a.local_addr().unwrap(),
                token: a.local_addr().unwrap(),
            },
            NodeAddr {
                pid: ParticipantId::new(1),
                data: b.local_addr().unwrap(),
                token: b.local_addr().unwrap(),
            },
        ];
        let book = AddressBook::new(addrs);
        let plane = FaultPlane::new(9);
        plane.register_book(&book);
        let dest = b.local_addr().unwrap();
        let sock =
            InterposedSocket::new(a, ParticipantId::new(0), SocketClass::Data, plane.clone());

        // Clean pass-through.
        sock.send_to(b"one", dest).unwrap();
        let mut buf = [0u8; 16];
        std::thread::sleep(Duration::from_millis(20));
        let (len, _) = b.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"one");

        // Delayed copy arrives after the release deadline passes.
        plane.set_churn(0.0, 1.0, Duration::from_millis(10));
        sock.send_to(b"two", dest).unwrap();
        assert!(b.recv_from(&mut buf).is_err(), "held back");
        std::thread::sleep(Duration::from_millis(25));
        // Any further socket touch releases it.
        let _ = sock.recv_from(&mut buf);
        std::thread::sleep(Duration::from_millis(5));
        let (len, _) = b.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"two");
    }
}
