//! The shared readiness wait used by every event loop in the stack.
//!
//! Both the ring node's event loop ([`crate::node`]) and the daemon
//! layer's session-frontend reactor park the same way when idle: `ppoll`
//! on their socket descriptors, capped by the next protocol timer, so a
//! datagram wakes the loop the moment it lands instead of a fixed-quantum
//! doze quantizing the whole pipeline. This type factors that wait into
//! one place — the Linux path rides the hand-rolled `ppoll` FFI in
//! [`crate::mmsg`]; every other platform degrades to a plain sleep, which
//! callers must treat as "maybe ready" exactly like a `ppoll` timeout.

use std::time::Duration;

/// A reusable readiness waiter over a fixed set of file descriptors.
///
/// `Poller` is deliberately stateless beyond its descriptor list: each
/// [`wait`](Poller::wait) issues one `ppoll` and returns when a
/// descriptor is readable or the timeout lapses. Registering no
/// descriptors turns every wait into a plain bounded sleep.
///
/// # Examples
///
/// ```no_run
/// use std::time::Duration;
/// use accelring_transport::Poller;
///
/// let mut poller = Poller::new();
/// poller.set_fds(&[]);
/// poller.wait(Duration::from_millis(1)); // bounded doze, no fds
/// ```
#[derive(Debug, Default)]
pub struct Poller {
    fds: Vec<i32>,
}

impl Poller {
    /// A poller with no registered descriptors (waits are plain sleeps
    /// until [`set_fds`](Poller::set_fds) is called).
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Replaces the descriptor set future waits park on. `None` entries
    /// of a socket that cannot expose a descriptor are simply skipped by
    /// passing only the `Some` values.
    pub fn set_fds(&mut self, fds: &[i32]) {
        self.fds.clear();
        self.fds.extend_from_slice(fds);
    }

    /// The registered descriptors.
    pub fn fds(&self) -> &[i32] {
        &self.fds
    }

    /// Parks until any registered descriptor is readable or `timeout`
    /// passes, whichever is first. A zero timeout returns immediately.
    ///
    /// There is no readiness return value on purpose: platforms without
    /// `ppoll` can only sleep, so callers must re-poll their sockets
    /// after every wait regardless of why it ended (the non-blocking
    /// sockets make a spurious re-poll free).
    pub fn wait(&self, timeout: Duration) {
        if timeout.is_zero() {
            return;
        }
        #[cfg(target_os = "linux")]
        if !self.fds.is_empty() {
            crate::mmsg::wait_readable(&self.fds, timeout);
            return;
        }
        std::thread::sleep(timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::time::Instant;

    #[test]
    fn empty_poller_sleeps_the_timeout() {
        let p = Poller::new();
        let t0 = Instant::now();
        p.wait(Duration::from_millis(20));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn zero_timeout_returns_immediately() {
        let p = Poller::new();
        let t0 = Instant::now();
        p.wait(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(10));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn readable_fd_cuts_the_wait_short() {
        use std::os::fd::AsRawFd;
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(b"wake", rx.local_addr().unwrap()).unwrap();
        // Give the loopback datagram a moment to land.
        std::thread::sleep(Duration::from_millis(10));
        let mut p = Poller::new();
        p.set_fds(&[rx.as_raw_fd()]);
        let t0 = Instant::now();
        p.wait(Duration::from_secs(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "a waiting datagram must wake the poller immediately"
        );
    }
}
