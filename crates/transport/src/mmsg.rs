//! `sendmmsg`/`recvmmsg` shim: many datagrams per syscall on Linux.
//!
//! The container deliberately carries no `libc` crate, so the handful of
//! kernel ABI types the two syscalls need (`iovec`, `msghdr`, `mmsghdr`,
//! `sockaddr_in[6]`) are declared here by hand, `#[repr(C)]`, matching the
//! x86-64/aarch64 Linux layouts. Together with the shared-memory ring
//! backend in [`crate::shm`] this is the only unsafe code in the
//! workspace; everything above the [`crate::socket::DatagramSocket`] trait
//! stays safe.
//!
//! Batches are chunked to [`MMSG_CHUNK`] headers built on the stack — no
//! heap allocation per syscall. Error semantics mirror the kernel's:
//! `sendmmsg` stops at the first failing message, so the wrapper retries
//! from the failure point and attributes exactly one error to the datagram
//! that refused to go out, then keeps sending the rest of the batch.

use std::io;
use std::net::{SocketAddr, SocketAddrV4, SocketAddrV6, UdpSocket};
use std::os::fd::AsRawFd;
use std::ptr;

use bytes::Bytes;

use crate::socket::{RecvOutcome, RecvSlot, SendOutcome};

/// Messages per `sendmmsg`/`recvmmsg` invocation (headers live on the
/// stack; 32 already amortizes the syscall to noise).
pub(crate) const MMSG_CHUNK: usize = 32;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
/// Size of the largest sockaddr we handle (`sockaddr_in6`).
const SOCKADDR_MAX: usize = 28;

#[repr(C)]
struct IoVec {
    base: *mut std::ffi::c_void,
    len: usize,
}

#[repr(C)]
struct MsgHdr {
    name: *mut std::ffi::c_void,
    namelen: u32,
    iov: *mut IoVec,
    iovlen: usize,
    control: *mut std::ffi::c_void,
    controllen: usize,
    flags: i32,
}

#[repr(C)]
struct MMsgHdr {
    hdr: MsgHdr,
    len: u32,
}

extern "C" {
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    fn recvmmsg(
        fd: i32,
        msgvec: *mut MMsgHdr,
        vlen: u32,
        flags: i32,
        timeout: *mut std::ffi::c_void,
    ) -> i32;
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> i32;
    fn ppoll(
        fds: *mut PollFd,
        nfds: u64,
        timeout: *const TimeSpec,
        sigmask: *const std::ffi::c_void,
    ) -> i32;
}

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[repr(C)]
struct TimeSpec {
    sec: i64,
    nsec: i64,
}

const POLLIN: i16 = 1;

/// Blocks until one of `fds` is readable or `timeout` passes.
///
/// The event loop's idle wait: a datagram wakes it immediately instead
/// of it sleeping a fixed quantum and finding the token stale — on a
/// busy ring the token spends its life in flight, so fixed-quantum
/// dozing quantizes the whole rotation.
pub(crate) fn wait_readable(fds: &[i32], timeout: std::time::Duration) {
    let mut pollfds: Vec<PollFd> = fds
        .iter()
        .map(|&fd| PollFd {
            fd,
            events: POLLIN,
            revents: 0,
        })
        .collect();
    let ts = TimeSpec {
        sec: timeout.as_secs() as i64,
        nsec: i64::from(timeout.subsec_nanos()),
    };
    // SAFETY: `pollfds` and `ts` outlive the call; a null sigmask means
    // "don't touch the signal mask", per the ppoll contract.
    let _ = unsafe { ppoll(pollfds.as_mut_ptr(), pollfds.len() as u64, &ts, ptr::null()) };
}

const SOL_SOCKET: i32 = 1;
const SO_RCVBUF: i32 = 8;
const SO_SNDBUF: i32 = 7;

/// Asks the kernel for `bytes`-deep receive and send buffers on `sock`.
///
/// Gathered sends burst a whole encode-once fanout into each receiver at
/// memory speed; the default ~208 KiB receive buffer is about one
/// accelerated window deep, so an unlucky scheduling gap tail-drops the
/// burst and the protocol pays a retransmission round. Best-effort: the
/// kernel clamps to `net.core.{r,w}mem_max` and failure is ignored — the
/// protocol's retransmission machinery still owns correctness.
pub(crate) fn set_buffer_sizes(sock: &UdpSocket, bytes: i32) {
    let fd = sock.as_raw_fd();
    for opt in [SO_RCVBUF, SO_SNDBUF] {
        // SAFETY: optval points at a live i32 for the duration of the
        // call; optlen matches.
        let _ = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&bytes as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
    }
}

const EMPTY_IOV: IoVec = IoVec {
    base: ptr::null_mut(),
    len: 0,
};

const EMPTY_HDR: MMsgHdr = MMsgHdr {
    hdr: MsgHdr {
        name: ptr::null_mut(),
        namelen: 0,
        iov: ptr::null_mut(),
        iovlen: 0,
        control: ptr::null_mut(),
        controllen: 0,
        flags: 0,
    },
    len: 0,
};

/// Serializes `addr` into `buf` as a kernel sockaddr, returning the
/// sockaddr length.
fn write_sockaddr(buf: &mut [u8; SOCKADDR_MAX], addr: SocketAddr) -> u32 {
    match addr {
        SocketAddr::V4(v4) => {
            buf[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
            buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v4.ip().octets());
            buf[8..16].fill(0);
            16
        }
        SocketAddr::V6(v6) => {
            buf[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
            buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            28
        }
    }
}

/// Parses the kernel-filled sockaddr back into a [`SocketAddr`].
fn read_sockaddr(buf: &[u8; SOCKADDR_MAX]) -> io::Result<SocketAddr> {
    let family = u16::from_ne_bytes([buf[0], buf[1]]);
    match family {
        AF_INET => {
            let port = u16::from_be_bytes([buf[2], buf[3]]);
            let ip: [u8; 4] = buf[4..8].try_into().expect("fixed slice");
            Ok(SocketAddr::V4(SocketAddrV4::new(ip.into(), port)))
        }
        AF_INET6 => {
            let port = u16::from_be_bytes([buf[2], buf[3]]);
            let flowinfo = u32::from_be_bytes(buf[4..8].try_into().expect("fixed slice"));
            let ip: [u8; 16] = buf[8..24].try_into().expect("fixed slice");
            let scope = u32::from_ne_bytes(buf[24..28].try_into().expect("fixed slice"));
            Ok(SocketAddr::V6(SocketAddrV6::new(
                ip.into(),
                port,
                flowinfo,
                scope,
            )))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected sockaddr family {other}"),
        )),
    }
}

/// Sends the whole batch through `sendmmsg`, one syscall per
/// [`MMSG_CHUNK`] datagrams plus one retry syscall per failing
/// destination.
pub(crate) fn send_batch(sock: &UdpSocket, batch: &[(Bytes, SocketAddr)]) -> SendOutcome {
    let fd = sock.as_raw_fd();
    let mut out = SendOutcome::default();
    let mut offset = 0;
    while offset < batch.len() {
        let chunk = &batch[offset..batch.len().min(offset + MMSG_CHUNK)];
        let mut names = [[0u8; SOCKADDR_MAX]; MMSG_CHUNK];
        let mut iovs = [EMPTY_IOV; MMSG_CHUNK];
        let mut hdrs = [EMPTY_HDR; MMSG_CHUNK];
        for (i, (buf, addr)) in chunk.iter().enumerate() {
            let namelen = write_sockaddr(&mut names[i], *addr);
            iovs[i] = IoVec {
                // sendmmsg never writes through the iov; the mut cast is
                // an artifact of iovec being shared with the recv path.
                base: buf.as_ref().as_ptr() as *mut std::ffi::c_void,
                len: buf.len(),
            };
            hdrs[i] = MMsgHdr {
                hdr: MsgHdr {
                    name: names[i].as_mut_ptr().cast(),
                    namelen,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            };
        }
        out.syscalls += 1;
        // SAFETY: every pointer in `hdrs` targets stack arrays or the
        // batch's `Bytes`, all of which outlive the call.
        let n = unsafe { sendmmsg(fd, hdrs.as_mut_ptr(), chunk.len() as u32, 0) };
        if n < 1 {
            // The head datagram of the chunk failed; skip just it and
            // carry on with the rest of the batch.
            out.errors += 1;
            offset += 1;
        } else {
            out.sent += n as usize;
            offset += n as usize;
        }
    }
    out
}

/// Fills `slots` through `recvmmsg`; returns `received == 0` when the
/// socket is drained.
pub(crate) fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot<'_>]) -> io::Result<RecvOutcome> {
    let fd = sock.as_raw_fd();
    let mut out = RecvOutcome::default();
    let mut offset = 0;
    while offset < slots.len() {
        let chunk_len = (slots.len() - offset).min(MMSG_CHUNK);
        let mut names = [[0u8; SOCKADDR_MAX]; MMSG_CHUNK];
        let mut iovs = [EMPTY_IOV; MMSG_CHUNK];
        let mut hdrs = [EMPTY_HDR; MMSG_CHUNK];
        for (i, slot) in slots[offset..offset + chunk_len].iter_mut().enumerate() {
            iovs[i] = IoVec {
                base: slot.buf.as_mut_ptr().cast(),
                len: slot.buf.len(),
            };
            hdrs[i] = MMsgHdr {
                hdr: MsgHdr {
                    name: names[i].as_mut_ptr().cast(),
                    namelen: SOCKADDR_MAX as u32,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            };
        }
        out.syscalls += 1;
        // SAFETY: every pointer in `hdrs` targets stack arrays or the
        // caller's slot buffers, all of which outlive the call; the
        // socket is non-blocking so a null timeout cannot stall.
        let n = unsafe { recvmmsg(fd, hdrs.as_mut_ptr(), chunk_len as u32, 0, ptr::null_mut()) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::WouldBlock || out.received > 0 {
                return Ok(out);
            }
            return Err(e);
        }
        let n = n as usize;
        for (i, slot) in slots[offset..offset + n].iter_mut().enumerate() {
            slot.len = hdrs[i].len as usize;
            slot.addr = Some(read_sockaddr(&names[i])?);
        }
        out.received += n;
        offset += n;
        if n < chunk_len {
            break; // socket drained
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockaddr_v4_roundtrip() {
        let addr: SocketAddr = "192.0.2.7:4567".parse().unwrap();
        let mut buf = [0u8; SOCKADDR_MAX];
        assert_eq!(write_sockaddr(&mut buf, addr), 16);
        assert_eq!(read_sockaddr(&buf).unwrap(), addr);
    }

    #[test]
    fn sockaddr_v6_roundtrip() {
        let addr: SocketAddr = "[2001:db8::1]:9000".parse().unwrap();
        let mut buf = [0u8; SOCKADDR_MAX];
        assert_eq!(write_sockaddr(&mut buf, addr), 28);
        assert_eq!(read_sockaddr(&buf).unwrap(), addr);
    }

    #[test]
    fn unknown_family_rejected() {
        let mut buf = [0u8; SOCKADDR_MAX];
        buf[0..2].copy_from_slice(&99u16.to_ne_bytes());
        assert!(read_sockaddr(&buf).is_err());
    }

    #[test]
    fn abi_struct_layout() {
        // The hand-declared kernel structs must match the well-known
        // 64-bit Linux sizes, or the syscalls would scribble.
        assert_eq!(std::mem::size_of::<IoVec>(), 16);
        assert_eq!(std::mem::size_of::<MsgHdr>(), 56);
        assert_eq!(std::mem::size_of::<MMsgHdr>(), 64);
    }
}
