//! Shared-memory intra-host transport: a [`DatagramSocket`] backend over
//! lock-free SPSC ring buffers (ROADMAP item 3, DESIGN.md §15).
//!
//! Colocated daemons pay two syscalls per datagram over UDP loopback even
//! after `sendmmsg` batching amortizes them. This backend removes the
//! kernel from the intra-host path entirely: each directed link between
//! two endpoints is a single-producer single-consumer ring carved out of
//! a host-wide shared segment, datagrams are published by one memcpy into
//! fixed-size slots and a release-store of the tail cursor, and consumed
//! by one memcpy out. Zero syscalls move data; the only syscalls left are
//! the eventfd doorbell writes that wake a parked consumer, and those
//! vanish at saturation because a busy consumer never arms the doorbell.
//!
//! ## Ring protocol
//!
//! A ring is `RING_SLOTS` slots of `SLOT_LEN` bytes plus two cache-line
//! separated free-running cursors: `head` (consumer-owned) and `tail`
//! (producer-owned). A record is an 8-byte header `[len: u32 LE]
//! [kind: u32 LE]` followed by the payload, occupying `ceil((8+len)/
//! SLOT_LEN)` *contiguous* slots; when a record would wrap past the end
//! of the slot array the producer publishes a `PAD` record filling the
//! rest of the array and restarts at slot 0, so payloads are always one
//! contiguous memcpy on both sides. The producer Acquire-loads `head`
//! for the space check and Release-stores `tail` after writing the
//! bytes; the consumer Acquire-loads `tail` and Release-stores `head`
//! after copying out — the classic message-passing pairing, data-race
//! free without any lock.
//!
//! A full ring drops the datagram (counted as
//! [`ring_full_drops`](accelring_core::ShmPathStats::ring_full_drops))
//! and reports it sent, exactly as UDP surfaces a full socket buffer as
//! silent loss; the protocol's retransmission machinery recovers. A
//! blocking send could deadlock two daemons publishing into each other's
//! full rings, so the backend never blocks.
//!
//! ## Doorbell
//!
//! The event loop parks in `ppoll` when idle. Kernel sockets wake it via
//! their fds; shm rings live in userspace, so each endpoint carries an
//! eventfd doorbell plus an `armed` flag. The consumer's
//! [`prepare_wait`](DatagramSocket::prepare_wait) arms the flag and only
//! then re-checks its rings (SeqCst fencing makes the producer's
//! tail-publish and the consumer's arm visible in some total order): if
//! a datagram slipped in, it disarms and skips the sleep; otherwise any
//! later producer observes `armed`, swaps it clear, and writes the
//! eventfd, which is just another fd in the [`crate::poller::Poller`]
//! set — mixing shm links with real UDP sockets in one ppoll works
//! unchanged. On non-Linux hosts there is no doorbell and `poll_fd`
//! returns `None`; the poller falls back to its bounded doze, which the
//! "maybe ready" wait contract already allows.
//!
//! ## Naming and lifecycle
//!
//! Endpoints register in a process-wide registry keyed by synthetic
//! `127.99.x.y` socket addresses (ephemeral binds) or caller-chosen
//! addresses (rebinds after a restart). The registry holds only `Weak`
//! references: dropping the socket frees the name, so a crashed daemon's
//! restart can rebind its old address once the dead event loop's socket
//! is gone — the same race the UDP path resolves with bind retries.
//! Producers hold `Weak` endpoint references too and lazily re-resolve
//! after a peer restarts, building a fresh ring to the new incarnation;
//! sends to a dead or unknown address succeed and vanish, matching UDP
//! fire-and-forget semantics. Ring memory is carved from mmap'd
//! host-wide segments and recycled through a free list when both sides
//! of a link are gone.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use bytes::Bytes;

use accelring_core::ShmPathStats;

use crate::socket::{DatagramSocket, RecvOutcome, RecvSlot, SendOutcome};

/// Bytes per ring slot. One slot holds the protocol's common case (a
/// ~1.4 KiB data message plus headers) without internal fragmentation
/// pressure; larger datagrams span contiguous slots.
pub const SLOT_LEN: usize = 2048;

/// Slots per ring: 512 KiB of payload capacity per directed link, the
/// same depth the UDP path provisions via `SO_RCVBUF`.
pub const RING_SLOTS: u64 = 256;

/// Largest datagram the backend accepts — the transport-wide datagram
/// ceiling. `ceil((8 + 65536) / SLOT_LEN) = 33` slots, comfortably under
/// the ring size even after padding.
pub const MAX_SHM_DATAGRAM: usize = 65_536;

const HDR_LEN: usize = 8;
const REC_DATA: u32 = 0;
const REC_PAD: u32 = 1;

/// Cursor block ahead of the slot array: `head` at offset 0 and `tail`
/// at offset 64 so the two sides never share a cache line.
const CTRL_LEN: usize = 128;
const RING_BYTES: usize = CTRL_LEN + RING_SLOTS as usize * SLOT_LEN;

/// Rings carved per mapped segment (8 MiB segments; a 4-node ring uses
/// 24 directed links counting both socket classes).
const SEGMENT_RINGS: usize = 16;
const SEGMENT_BYTES: usize = SEGMENT_RINGS * RING_BYTES;

// ---------------------------------------------------------------------------
// Syscall shims (Linux) and portable fallbacks.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! Hand-rolled declarations for the five libc entry points the shm
    //! backend needs, in the same no-dependency style as `crate::mmsg`.

    use std::ffi::c_void;
    use std::io;

    const PROT_READ: i32 = 0x1;
    const PROT_WRITE: i32 = 0x2;
    const MAP_SHARED: i32 = 0x01;
    const MAP_ANONYMOUS: i32 = 0x20;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EFD_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// Maps a zero-filled shared anonymous segment. Segments live for the
    /// process lifetime (ring blocks inside them are recycled through the
    /// host free list), so no munmap counterpart is declared.
    pub(super) fn map_segment(len: usize) -> io::Result<*mut u8> {
        // SAFETY: a NULL-addr anonymous mapping with a valid length; the
        // kernel picks the placement and the fd/offset pair is ignored
        // for MAP_ANONYMOUS.
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if p as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(p.cast())
    }

    /// A nonblocking eventfd used as the idle-wait doorbell.
    #[derive(Debug)]
    pub(super) struct Doorbell {
        fd: i32,
    }

    impl Doorbell {
        pub(super) fn new() -> io::Result<Doorbell> {
            // SAFETY: plain syscall, no pointers involved.
            let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Doorbell { fd })
        }

        /// Makes the fd readable, waking any `ppoll` parked on it. A full
        /// counter (`EAGAIN`) is fine — the fd is already readable.
        pub(super) fn ring(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack variable to an fd
            // this struct owns.
            let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Clears the counter; returns true when the doorbell had been
        /// rung since the last drain.
        pub(super) fn drain(&self) -> bool {
            let mut val: u64 = 0;
            // SAFETY: reads at most 8 bytes into a live stack variable
            // from an fd this struct owns (nonblocking: returns EAGAIN
            // rather than parking when the counter is zero).
            let n = unsafe { read(self.fd, (&mut val as *mut u64).cast(), 8) };
            n == 8 && val > 0
        }

        pub(super) fn fd(&self) -> Option<i32> {
            Some(self.fd)
        }
    }

    impl Drop for Doorbell {
        fn drop(&mut self) {
            // SAFETY: closing an fd this struct exclusively owns.
            let _ = unsafe { close(self.fd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallbacks: heap-allocated segments and a no-op doorbell.
    //! Without a doorbell `poll_fd` is `None`, so the poller falls back
    //! to its bounded idle doze — correct under the "maybe ready" wait
    //! contract, just less prompt.

    use std::alloc::{alloc_zeroed, Layout};
    use std::io;

    pub(super) fn map_segment(len: usize) -> io::Result<*mut u8> {
        let layout = Layout::from_size_align(len, 64).expect("segment layout");
        // SAFETY: a valid non-zero-size layout; the segment is never
        // freed (it lives in the process-wide host registry), so the
        // pointer never dangles.
        let p = unsafe { alloc_zeroed(layout) };
        if p.is_null() {
            return Err(io::Error::other("shm segment allocation failed"));
        }
        Ok(p)
    }

    #[derive(Debug)]
    pub(super) struct Doorbell;

    impl Doorbell {
        pub(super) fn new() -> io::Result<Doorbell> {
            Ok(Doorbell)
        }

        pub(super) fn ring(&self) {}

        pub(super) fn drain(&self) -> bool {
            false
        }

        pub(super) fn fd(&self) -> Option<i32> {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Ring memory: host-wide segments, fixed-size ring blocks, the SPSC ring.
// ---------------------------------------------------------------------------

/// Base pointer of one mapped segment. Segments are owned by the static
/// host registry and never unmapped; `Send` is sound because the pointer
/// is only ever carved into disjoint ring blocks under the registry lock.
#[derive(Debug)]
struct Segment(*mut u8);

// SAFETY: see `Segment` — the raw pointer is only dereferenced through
// `RingBlock`s handed out under the registry lock, each covering a
// disjoint RING_BYTES range.
unsafe impl Send for Segment {}

/// Exclusive ownership of one RING_BYTES range inside a segment, handed
/// out by the host allocator and returned to its free list on drop of
/// the owning ring.
#[derive(Debug)]
struct RingBlock(*mut u8);

// SAFETY: a block is exclusively owned by one `RingShared`; the atomics
// inside it are what the two sides actually share.
unsafe impl Send for RingBlock {}
// SAFETY: as above — all shared access goes through the atomic cursors
// with acquire/release pairing.
unsafe impl Sync for RingBlock {}

/// The raw SPSC ring over one block: free-running u64 cursors plus the
/// slot array. All slot access is ordered by the cursor protocol (see
/// the module docs), so the non-atomic byte copies are data-race free.
#[derive(Debug)]
struct RawRing {
    block: RingBlock,
}

impl RawRing {
    fn new(block: RingBlock) -> RawRing {
        let ring = RawRing { block };
        // Blocks are recycled: a fresh ring must not inherit the previous
        // tenant's cursors.
        ring.head().store(0, Ordering::Relaxed);
        ring.tail().store(0, Ordering::Relaxed);
        ring
    }

    fn head(&self) -> &AtomicU64 {
        // SAFETY: offset 0 of an exclusively-owned, zero-initialized,
        // 64-byte-aligned block; AtomicU64 is valid for any bit pattern.
        unsafe { &*(self.block.0 as *const AtomicU64) }
    }

    fn tail(&self) -> &AtomicU64 {
        // SAFETY: offset 64 of the same block, 8-byte aligned.
        unsafe { &*(self.block.0.add(64) as *const AtomicU64) }
    }

    fn slot(&self, idx: u64) -> *mut u8 {
        debug_assert!(idx < RING_SLOTS);
        // SAFETY: idx < RING_SLOTS keeps the pointer inside the block.
        unsafe { self.block.0.add(CTRL_LEN + idx as usize * SLOT_LEN) }
    }

    fn write_hdr(p: *mut u8, len: u32, kind: u32) {
        // SAFETY: callers pass a slot pointer with at least HDR_LEN bytes
        // of exclusive (cursor-protected) space; slot starts are 8-aligned.
        unsafe {
            (p as *mut u32).write(len.to_le());
            (p.add(4) as *mut u32).write(kind.to_le());
        }
    }

    fn read_hdr(p: *const u8) -> (u32, u32) {
        // SAFETY: as `write_hdr`, on the consumer side of the cursors.
        unsafe {
            (
                u32::from_le((p as *const u32).read()),
                u32::from_le((p.add(4) as *const u32).read()),
            )
        }
    }

    /// Publishes one datagram; returns the slots consumed (pad + data) or
    /// `None` when the ring lacks space.
    fn push(&self, buf: &[u8]) -> Option<u64> {
        let needed = (HDR_LEN + buf.len()).div_ceil(SLOT_LEN) as u64;
        let tail = self.tail().load(Ordering::Relaxed);
        let head = self.head().load(Ordering::Acquire);
        let idx = tail % RING_SLOTS;
        let pad = if idx + needed > RING_SLOTS {
            RING_SLOTS - idx
        } else {
            0
        };
        if tail + pad + needed - head > RING_SLOTS {
            return None;
        }
        if pad > 0 {
            Self::write_hdr(self.slot(idx), 0, REC_PAD);
        }
        let at = if pad > 0 { 0 } else { idx };
        let p = self.slot(at);
        Self::write_hdr(p, buf.len() as u32, REC_DATA);
        // SAFETY: the space check above guarantees `needed` contiguous
        // free slots starting at `at` (pad restarts at slot 0), and the
        // consumer cannot touch them until the Release store below.
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), p.add(HDR_LEN), buf.len());
        }
        self.tail().store(tail + pad + needed, Ordering::Release);
        Some(pad + needed)
    }

    /// Drains one datagram into `out` (truncating like UDP if `out` is
    /// short); returns `(payload_len_written, slots_freed)`.
    fn pop(&self, out: &mut [u8]) -> Option<(usize, u64)> {
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let mut h = head;
        let mut idx = h % RING_SLOTS;
        let (mut len, kind) = Self::read_hdr(self.slot(idx));
        if kind == REC_PAD {
            // A pad is only ever published together with the record that
            // follows it at slot 0, so the ring cannot be empty here.
            h += RING_SLOTS - idx;
            idx = 0;
            debug_assert!(h < tail);
            let (l, k) = Self::read_hdr(self.slot(idx));
            debug_assert_eq!(k, REC_DATA);
            len = l;
        }
        let len = len as usize;
        let n = len.min(out.len());
        // SAFETY: the Acquire load of `tail` ordered these bytes after the
        // producer's writes; the record is contiguous by construction.
        unsafe {
            std::ptr::copy_nonoverlapping(self.slot(idx).add(HDR_LEN), out.as_mut_ptr(), n);
        }
        let slots = (HDR_LEN + len).div_ceil(SLOT_LEN) as u64;
        let freed = (h - head) + slots;
        self.head().store(h + slots, Ordering::Release);
        Some((n, freed))
    }

    /// Consumer-side emptiness probe (used by `prepare_wait`).
    fn has_data(&self) -> bool {
        self.head().load(Ordering::Relaxed) != self.tail().load(Ordering::Acquire)
    }
}

/// One directed link's ring plus its link metadata: the producer's
/// address (reported as the datagram source on receive) and a closed
/// flag the producer raises on drop so the consumer can prune the ring
/// once it has been drained.
#[derive(Debug)]
struct RingShared {
    ring: RawRing,
    src: SocketAddr,
    closed: AtomicBool,
}

impl Drop for RingShared {
    fn drop(&mut self) {
        host_release_block(RingBlock(self.ring.block.0));
    }
}

// ---------------------------------------------------------------------------
// Endpoints and the host registry.
// ---------------------------------------------------------------------------

/// The consumer side of a bound shm address: the inbound ring list
/// producers register into, the doorbell, and the armed flag of the
/// sleep/wake protocol.
#[derive(Debug)]
struct EndpointShared {
    addr: SocketAddr,
    inbound: Mutex<Vec<Arc<RingShared>>>,
    /// Bumped on every inbound registration so consumers refresh their
    /// lock-free cached ring list.
    epoch: AtomicU64,
    armed: AtomicU32,
    doorbell: sys::Doorbell,
}

impl EndpointShared {
    fn new(addr: SocketAddr) -> io::Result<EndpointShared> {
        Ok(EndpointShared {
            addr,
            inbound: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            armed: AtomicU32::new(0),
            doorbell: sys::Doorbell::new()?,
        })
    }

    fn register(&self, ring: Arc<RingShared>) {
        self.inbound.lock().expect("shm inbound lock").push(ring);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Producer half of the Dekker-style wakeup: runs after the tail
    /// publish. The SeqCst fence pairs with the consumer's arm-then-check
    /// fence so at least one side observes the other.
    fn notify(&self, counters: &ShmCounters) {
        fence(Ordering::SeqCst);
        if self.armed.swap(0, Ordering::SeqCst) == 1 {
            self.doorbell.ring();
            counters.doorbell_rings.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct HostInner {
    endpoints: HashMap<SocketAddr, Weak<EndpointShared>>,
    segments: Vec<Segment>,
    carved: usize,
    free: Vec<RingBlock>,
    next_ephemeral: u64,
}

fn host() -> &'static Mutex<HostInner> {
    static HOST: OnceLock<Mutex<HostInner>> = OnceLock::new();
    HOST.get_or_init(|| {
        Mutex::new(HostInner {
            endpoints: HashMap::new(),
            segments: Vec::new(),
            carved: SEGMENT_RINGS,
            free: Vec::new(),
            next_ephemeral: 0,
        })
    })
}

/// Carves a fresh ring block, mapping another segment when the current
/// one is exhausted and no recycled block is available.
fn host_alloc_block() -> io::Result<RingBlock> {
    let mut h = host().lock().expect("shm host lock");
    if let Some(b) = h.free.pop() {
        return Ok(b);
    }
    if h.carved == SEGMENT_RINGS {
        let base = sys::map_segment(SEGMENT_BYTES)?;
        h.segments.push(Segment(base));
        h.carved = 0;
    }
    let base = h.segments.last().expect("segment just ensured").0;
    let at = h.carved;
    h.carved += 1;
    // SAFETY: `at < SEGMENT_RINGS` keeps the block inside the segment.
    Ok(RingBlock(unsafe { base.add(at * RING_BYTES) }))
}

fn host_release_block(block: RingBlock) {
    host().lock().expect("shm host lock").free.push(block);
}

fn host_lookup(addr: SocketAddr) -> Option<Arc<EndpointShared>> {
    host()
        .lock()
        .expect("shm host lock")
        .endpoints
        .get(&addr)
        .and_then(Weak::upgrade)
}

/// Registers an endpoint under `addr` (or a synthesized ephemeral address
/// when `addr` is `None`). A still-live registration under the same name
/// fails with `AddrInUse`, mirroring a kernel bind; dead `Weak` entries
/// are reclaimed in place.
fn host_bind(addr: Option<SocketAddr>) -> io::Result<Arc<EndpointShared>> {
    let mut h = host().lock().expect("shm host lock");
    let addr = match addr {
        Some(a) => {
            if h.endpoints.get(&a).is_some_and(|w| w.upgrade().is_some()) {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("shm address {a} already bound"),
                ));
            }
            a
        }
        None => loop {
            let n = h.next_ephemeral;
            h.next_ephemeral += 1;
            let hi = (n / 60_000) as u32;
            let a = SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::new(127, 99, ((hi >> 8) & 0xff) as u8, (hi & 0xff) as u8),
                1024 + (n % 60_000) as u16,
            ));
            if h.endpoints.get(&a).is_none_or(|w| w.upgrade().is_none()) {
                break a;
            }
        },
    };
    let ep = Arc::new(EndpointShared::new(addr)?);
    h.endpoints.insert(addr, Arc::downgrade(&ep));
    h.endpoints.retain(|_, w| w.strong_count() > 0);
    Ok(ep)
}

// ---------------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------------

/// Shared atomic counters behind [`ShmPathStats`]: one instance per node,
/// shared by its data and token sockets and snapshotted by the transport
/// probe.
#[derive(Debug, Default)]
pub struct ShmCounters {
    slots_published: AtomicU64,
    slots_consumed: AtomicU64,
    datagrams_published: AtomicU64,
    datagrams_consumed: AtomicU64,
    doorbell_rings: AtomicU64,
    doorbell_wakeups: AtomicU64,
    ring_full_drops: AtomicU64,
}

impl ShmCounters {
    /// A fresh all-zero counter block.
    pub fn new() -> Arc<ShmCounters> {
        Arc::new(ShmCounters::default())
    }

    /// Snapshots the counters into the plain stats struct.
    pub fn snapshot(&self) -> ShmPathStats {
        ShmPathStats {
            slots_published: self.slots_published.load(Ordering::Relaxed),
            slots_consumed: self.slots_consumed.load(Ordering::Relaxed),
            datagrams_published: self.datagrams_published.load(Ordering::Relaxed),
            datagrams_consumed: self.datagrams_consumed.load(Ordering::Relaxed),
            doorbell_rings: self.doorbell_rings.load(Ordering::Relaxed),
            doorbell_wakeups: self.doorbell_wakeups.load(Ordering::Relaxed),
            ring_full_drops: self.ring_full_drops.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The socket.
// ---------------------------------------------------------------------------

/// A producer link to one destination: the peer endpoint (held weakly so
/// a restarted peer is re-resolved) and our ring into it. Dropping the
/// link closes the ring so the consumer can prune it once drained.
#[derive(Debug)]
struct Link {
    endpoint: Weak<EndpointShared>,
    ring: Arc<RingShared>,
}

impl Drop for Link {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

/// Consumer-side cache of the endpoint's inbound ring list, refreshed on
/// epoch change so the hot path takes no lock; `next` rotates the drain
/// start for fairness across producers.
#[derive(Debug, Default)]
struct InboundCache {
    rings: Vec<Arc<RingShared>>,
    epoch: u64,
    next: usize,
}

/// The shared-memory [`DatagramSocket`]: zero syscalls on the datagram
/// path, eventfd doorbell for idle waits, UDP loss semantics under
/// backpressure. Bind one per socket class per daemon, exactly like the
/// UDP pair.
///
/// Interior mutability is `RefCell`, which is sound here: the trait is
/// `Send` but not `Sync`, and every socket is owned by exactly one event
/// loop thread — the *shared* state (rings, doorbells) is all atomics
/// and mutexes.
pub struct ShmSocket {
    local: Arc<EndpointShared>,
    counters: Arc<ShmCounters>,
    links: RefCell<HashMap<SocketAddr, Link>>,
    inbound: RefCell<InboundCache>,
}

impl std::fmt::Debug for ShmSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmSocket")
            .field("addr", &self.local.addr)
            .finish()
    }
}

impl ShmSocket {
    /// Binds a fresh endpoint under a synthesized ephemeral address.
    ///
    /// # Errors
    ///
    /// Propagates doorbell/segment setup failures.
    pub fn bind_ephemeral(counters: Arc<ShmCounters>) -> io::Result<ShmSocket> {
        Ok(ShmSocket::wrap(host_bind(None)?, counters))
    }

    /// Binds the given address, failing with `AddrInUse` while a previous
    /// incarnation's socket is still alive (restart paths retry, exactly
    /// as they do against the kernel).
    ///
    /// # Errors
    ///
    /// `AddrInUse` when the name is still held; otherwise doorbell or
    /// segment setup failures.
    pub fn bind(addr: SocketAddr, counters: Arc<ShmCounters>) -> io::Result<ShmSocket> {
        Ok(ShmSocket::wrap(host_bind(Some(addr))?, counters))
    }

    fn wrap(local: Arc<EndpointShared>, counters: Arc<ShmCounters>) -> ShmSocket {
        ShmSocket {
            local,
            counters,
            links: RefCell::new(HashMap::new()),
            inbound: RefCell::new(InboundCache::default()),
        }
    }

    /// The bound (synthetic) address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local.addr
    }

    /// Resolves (or builds) the link to `addr`; `None` means the peer
    /// does not exist right now and the datagram should vanish.
    fn link_to(&self, addr: SocketAddr) -> io::Result<Option<Arc<EndpointShared>>> {
        let mut links = self.links.borrow_mut();
        if let Some(link) = links.get(&addr) {
            if let Some(ep) = link.endpoint.upgrade() {
                return Ok(Some(ep));
            }
            // Peer endpoint died (crash or rebind): close our ring into
            // the old incarnation and re-resolve below.
            links.remove(&addr);
        }
        let Some(ep) = host_lookup(addr) else {
            return Ok(None);
        };
        let ring = Arc::new(RingShared {
            ring: RawRing::new(host_alloc_block()?),
            src: self.local.addr,
            closed: AtomicBool::new(false),
        });
        ep.register(Arc::clone(&ring));
        links.insert(
            addr,
            Link {
                endpoint: Arc::downgrade(&ep),
                ring,
            },
        );
        Ok(Some(ep))
    }

    /// Publishes one datagram; returns the endpoint to ring the doorbell
    /// of, if the datagram actually landed in a ring.
    fn publish(&self, buf: &[u8], addr: SocketAddr) -> io::Result<Option<Arc<EndpointShared>>> {
        if buf.len() > MAX_SHM_DATAGRAM {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "datagram exceeds shm transport maximum",
            ));
        }
        let Some(ep) = self.link_to(addr)? else {
            // Unknown or dead destination: the datagram vanishes, as UDP
            // datagrams to an unbound port do.
            return Ok(None);
        };
        let links = self.links.borrow();
        let link = links.get(&addr).expect("link just resolved");
        match link.ring.ring.push(buf) {
            Some(slots) => {
                self.counters
                    .slots_published
                    .fetch_add(slots, Ordering::Relaxed);
                self.counters
                    .datagrams_published
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Some(ep))
            }
            None => {
                self.counters
                    .ring_full_drops
                    .fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    fn refresh_inbound(&self) {
        let epoch = self.local.epoch.load(Ordering::SeqCst);
        let mut cache = self.inbound.borrow_mut();
        if cache.epoch != epoch {
            cache.rings = self.local.inbound.lock().expect("shm inbound lock").clone();
            cache.epoch = epoch;
        }
    }

    /// Drops rings whose producer is gone and whose slots are drained,
    /// from both the shared inbound list and the local cache. Removed
    /// ring handles are dropped only after the lock is released (ring
    /// drop takes the host lock; see the lock-order note on `host`).
    fn prune_inbound(&self) {
        let mut cache = self.inbound.borrow_mut();
        if !cache
            .rings
            .iter()
            .any(|r| r.closed.load(Ordering::Acquire) && !r.ring.has_data())
        {
            return;
        }
        let mut removed: Vec<Arc<RingShared>> = Vec::new();
        {
            let mut inbound = self.local.inbound.lock().expect("shm inbound lock");
            inbound.retain(|r| {
                let dead = r.closed.load(Ordering::Acquire) && !r.ring.has_data();
                if dead {
                    removed.push(Arc::clone(r));
                }
                !dead
            });
        }
        cache
            .rings
            .retain(|r| !removed.iter().any(|d| Arc::ptr_eq(d, r)));
        drop(cache);
        drop(removed);
    }

    fn pending(&self) -> bool {
        self.refresh_inbound();
        self.inbound
            .borrow()
            .rings
            .iter()
            .any(|r| r.ring.has_data())
    }
}

impl DatagramSocket for ShmSocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        if let Some(ep) = self.publish(buf, addr)? {
            ep.notify(&self.counters);
        }
        Ok(buf.len())
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.refresh_inbound();
        let mut cache = self.inbound.borrow_mut();
        let n = cache.rings.len();
        for k in 0..n {
            let i = (cache.next + k) % n;
            if let Some((len, slots)) = cache.rings[i].ring.pop(buf) {
                cache.next = (i + 1) % n;
                self.counters
                    .slots_consumed
                    .fetch_add(slots, Ordering::Relaxed);
                self.counters
                    .datagrams_consumed
                    .fetch_add(1, Ordering::Relaxed);
                return Ok((len, cache.rings[i].src));
            }
        }
        Err(io::Error::new(io::ErrorKind::WouldBlock, "shm rings empty"))
    }

    fn send_batch(&self, batch: &[(Bytes, SocketAddr)]) -> SendOutcome {
        let mut out = SendOutcome::default();
        // One doorbell ring per touched endpoint per batch, after all of
        // the batch's slots are published.
        let mut wake: Vec<Arc<EndpointShared>> = Vec::new();
        for (buf, addr) in batch {
            match self.publish(buf, *addr) {
                Ok(Some(ep)) => {
                    out.sent += 1;
                    if !wake.iter().any(|w| Arc::ptr_eq(w, &ep)) {
                        wake.push(ep);
                    }
                }
                // Vanished (unknown peer) and ring-full drops both count
                // as sent: the datagram left the node's hands.
                Ok(None) => out.sent += 1,
                Err(_) => out.errors += 1,
            }
        }
        for ep in wake {
            ep.notify(&self.counters);
        }
        out
    }

    fn recv_batch(&self, slots: &mut [RecvSlot<'_>]) -> io::Result<RecvOutcome> {
        self.refresh_inbound();
        let mut filled = 0;
        {
            let mut cache = self.inbound.borrow_mut();
            let n = cache.rings.len();
            if n > 0 {
                let start = cache.next % n;
                'rings: for k in 0..n {
                    let ring = &cache.rings[(start + k) % n];
                    while filled < slots.len() {
                        match ring.ring.pop(slots[filled].buf) {
                            Some((len, freed)) => {
                                slots[filled].len = len;
                                slots[filled].addr = Some(ring.src);
                                filled += 1;
                                self.counters
                                    .slots_consumed
                                    .fetch_add(freed, Ordering::Relaxed);
                            }
                            None => continue 'rings,
                        }
                    }
                    break;
                }
                cache.next = (start + 1) % n;
            }
        }
        if filled > 0 {
            self.counters
                .datagrams_consumed
                .fetch_add(filled as u64, Ordering::Relaxed);
        } else {
            self.prune_inbound();
        }
        Ok(RecvOutcome {
            received: filled,
            syscalls: 0,
        })
    }

    fn poll_fd(&self) -> Option<i32> {
        self.local.doorbell.fd()
    }

    fn prepare_wait(&self) -> bool {
        if self.local.doorbell.drain() {
            self.counters
                .doorbell_wakeups
                .fetch_add(1, Ordering::Relaxed);
        }
        self.local.armed.store(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.pending() {
            self.local.armed.store(0, Ordering::SeqCst);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock() -> ShmSocket {
        ShmSocket::bind_ephemeral(ShmCounters::new()).unwrap()
    }

    fn recv_one(s: &ShmSocket) -> Option<(Vec<u8>, SocketAddr)> {
        let mut buf = vec![0u8; MAX_SHM_DATAGRAM];
        match s.recv_from(&mut buf) {
            Ok((n, a)) => Some((buf[..n].to_vec(), a)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
            Err(e) => panic!("recv: {e}"),
        }
    }

    #[test]
    fn roundtrip_reports_source_address() {
        let a = sock();
        let b = sock();
        a.send_to(b"hello ring", b.local_addr()).unwrap();
        let (payload, from) = recv_one(&b).expect("datagram");
        assert_eq!(payload, b"hello ring");
        assert_eq!(from, a.local_addr());
        assert!(recv_one(&b).is_none());
    }

    #[test]
    fn send_to_unknown_address_vanishes_ok() {
        let a = sock();
        let ghost: SocketAddr = "127.99.255.255:9".parse().unwrap();
        assert_eq!(a.send_to(b"into the void", ghost).unwrap(), 13);
        assert_eq!(a.counters.snapshot().datagrams_published, 0);
    }

    #[test]
    fn wraparound_preserves_order_and_content() {
        let a = sock();
        let b = sock();
        // Far more traffic than one ring holds, drained in lockstep so
        // the cursors lap the slot array many times.
        let mut expect = 0u32;
        for i in 0u32..4000 {
            let msg = vec![(i % 251) as u8; 100 + (i as usize % 900)];
            a.send_to(&msg, b.local_addr()).unwrap();
            if i % 3 == 0 {
                while let Some((got, _)) = recv_one(&b) {
                    assert_eq!(got[0], (expect % 251) as u8);
                    assert_eq!(got.len(), 100 + (expect as usize % 900));
                    expect += 1;
                }
            }
        }
        while let Some((got, _)) = recv_one(&b) {
            assert_eq!(got[0], (expect % 251) as u8);
            expect += 1;
        }
        assert_eq!(expect, 4000);
        assert_eq!(a.counters.snapshot().ring_full_drops, 0);
    }

    #[test]
    fn jumbo_datagram_spans_slots() {
        let a = sock();
        let b = sock();
        let jumbo: Vec<u8> = (0..60_000u32).map(|i| (i % 256) as u8).collect();
        // A small record first so the jumbo lands mid-array and pads.
        a.send_to(b"lead", b.local_addr()).unwrap();
        a.send_to(&jumbo, b.local_addr()).unwrap();
        assert_eq!(recv_one(&b).unwrap().0, b"lead");
        assert_eq!(recv_one(&b).unwrap().0, jumbo);
        let snap = a.counters.snapshot();
        assert!(snap.slots_published >= 30, "jumbo spans many slots");
        assert!(a
            .send_to(&vec![0u8; MAX_SHM_DATAGRAM + 1], b.local_addr())
            .is_err());
    }

    #[test]
    fn full_ring_drops_and_recovers() {
        let a = sock();
        let b = sock();
        let big = vec![7u8; SLOT_LEN * 4];
        let mut sent_ok = 0u64;
        for _ in 0..200 {
            a.send_to(&big, b.local_addr()).unwrap();
        }
        let snap = a.counters.snapshot();
        assert!(snap.ring_full_drops > 0, "ring must saturate");
        while recv_one(&b).is_some() {
            sent_ok += 1;
        }
        assert_eq!(sent_ok, snap.datagrams_published);
        // Drained ring accepts traffic again.
        a.send_to(b"after", b.local_addr()).unwrap();
        assert_eq!(recv_one(&b).unwrap().0, b"after");
    }

    #[test]
    fn named_bind_conflicts_until_dropped() {
        let addr: SocketAddr = "127.99.77.1:4321".parse().unwrap();
        let first = ShmSocket::bind(addr, ShmCounters::new()).unwrap();
        let again = ShmSocket::bind(addr, ShmCounters::new());
        assert_eq!(again.unwrap_err().kind(), io::ErrorKind::AddrInUse);
        drop(first);
        let third = ShmSocket::bind(addr, ShmCounters::new()).unwrap();
        assert_eq!(third.local_addr(), addr);
    }

    #[test]
    fn restarted_peer_gets_fresh_ring() {
        let addr: SocketAddr = "127.99.77.2:4321".parse().unwrap();
        let a = sock();
        let b1 = ShmSocket::bind(addr, ShmCounters::new()).unwrap();
        a.send_to(b"one", addr).unwrap();
        assert_eq!(recv_one(&b1).unwrap().0, b"one");
        drop(b1);
        // Peer gone: sends vanish but still succeed.
        a.send_to(b"lost", addr).unwrap();
        let b2 = ShmSocket::bind(addr, ShmCounters::new()).unwrap();
        a.send_to(b"two", addr).unwrap();
        assert_eq!(recv_one(&b2).unwrap().0, b"two");
        assert!(recv_one(&b2).is_none());
    }

    #[test]
    fn batch_roundtrip_zero_syscalls() {
        let a = sock();
        let b = sock();
        let batch: Vec<(Bytes, SocketAddr)> = (0u8..9)
            .map(|i| (Bytes::from(vec![i; 5 + i as usize]), b.local_addr()))
            .collect();
        let out = a.send_batch(&batch);
        assert_eq!(out.sent, 9);
        assert_eq!(out.errors, 0);
        assert_eq!(out.syscalls, 0);
        let mut bufs = vec![[0u8; 64]; 16];
        let mut slots: Vec<RecvSlot<'_>> = bufs.iter_mut().map(|b| RecvSlot::new(b)).collect();
        let out = b.recv_batch(&mut slots).unwrap();
        assert_eq!(out.received, 9);
        assert_eq!(out.syscalls, 0);
        for (i, slot) in slots.iter().take(9).enumerate() {
            assert_eq!(slot.len, 5 + i);
            assert_eq!(&slot.buf[..slot.len], vec![i as u8; 5 + i].as_slice());
            assert_eq!(slot.addr, Some(a.local_addr()));
        }
        assert!(slots[9].addr.is_none());
    }

    #[test]
    fn prepare_wait_arms_and_detects_pending() {
        let a = sock();
        let b = sock();
        // Empty rings: the wait may proceed.
        assert!(!b.prepare_wait());
        // A send while armed must ring the doorbell...
        a.send_to(b"wake", b.local_addr()).unwrap();
        assert_eq!(a.counters.snapshot().doorbell_rings, 1);
        // ...and the next wait preparation sees the pending datagram and
        // refuses to sleep.
        assert!(b.prepare_wait());
        let _ = recv_one(&b).unwrap();
        // A send while NOT armed skips the doorbell entirely.
        a.send_to(b"quiet", b.local_addr()).unwrap();
        assert_eq!(a.counters.snapshot().doorbell_rings, 1);
    }

    #[test]
    fn self_send_roundtrips() {
        let a = sock();
        a.send_to(b"loop", a.local_addr()).unwrap();
        let (payload, from) = recv_one(&a).unwrap();
        assert_eq!(payload, b"loop");
        assert_eq!(from, a.local_addr());
    }

    #[test]
    fn counters_balance_after_drain() {
        let a = sock();
        let b = sock();
        for i in 0..500u32 {
            a.send_to(&i.to_le_bytes(), b.local_addr()).unwrap();
            if i % 100 == 99 {
                while recv_one(&b).is_some() {}
            }
        }
        while recv_one(&b).is_some() {}
        let tx = a.counters.snapshot();
        let rx = b.counters.snapshot();
        assert_eq!(tx.datagrams_published + tx.ring_full_drops, 500);
        assert_eq!(rx.datagrams_consumed, tx.datagrams_published);
        assert_eq!(tx.slots_published, rx.slots_consumed);
        assert_eq!(
            tx.ring_full_drops, 0,
            "drain every 100 keeps the ring clear"
        );
    }
}
