//! The client-level protocol: what a daemon packs into the ordered
//! messages' payloads on behalf of its clients.
//!
//! Group joins and leaves travel through the same total order as data, so
//! every daemon applies group-membership changes at the same point in the
//! message stream — this is how lightweight (client-level) group
//! membership stays consistent without extra agreement rounds.

use accelring_core::wire::DecodeError;
use accelring_core::ParticipantId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum length of a client or group name, mirroring Spread's fixed-size
/// descriptive names.
pub const MAX_NAME: usize = 64;
/// Maximum groups addressed by one multi-group multicast.
pub const MAX_GROUPS: usize = 32;

/// A client identity: the daemon it is attached to plus its name (unique
/// per daemon).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId {
    /// The daemon the client is connected to.
    pub daemon: ParticipantId,
    /// The client's name at that daemon.
    pub name: String,
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.name, self.daemon)
    }
}

/// What a group-layer message does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupAction {
    /// Application data multicast to one or more groups (open-group
    /// semantics: the sender need not be a member).
    Data {
        /// Target groups.
        groups: Vec<String>,
        /// Application payload.
        payload: Bytes,
    },
    /// The sender joins a group.
    Join {
        /// The group being joined.
        group: String,
    },
    /// The sender leaves a group.
    Leave {
        /// The group being left.
        group: String,
    },
    /// The client disconnected; it leaves every group.
    Disconnect,
}

/// A complete group-layer message: who did what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMessage {
    /// The client this message is on behalf of.
    pub sender: ClientId,
    /// Client-session sequence number for duplicate suppression across
    /// reconnects; `0` means unsequenced (no suppression). Sequenced
    /// clients stamp data messages from a per-session counter starting at
    /// 1, and every engine remembers the highest sequence seen per client
    /// *name* — so a message resubmitted through a different daemon after
    /// a reconnect is recognized and dropped.
    pub seq: u64,
    /// The operation.
    pub action: GroupAction,
}

/// Errors constructing group messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupProtoError {
    /// A name exceeds [`MAX_NAME`] bytes or is empty.
    BadName(String),
    /// More than [`MAX_GROUPS`] groups in one multicast, or none.
    BadGroupCount(usize),
}

impl std::fmt::Display for GroupProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupProtoError::BadName(n) => write!(f, "invalid name {n:?}"),
            GroupProtoError::BadGroupCount(n) => write!(f, "invalid group count {n}"),
        }
    }
}

impl std::error::Error for GroupProtoError {}

/// Validates a client or group name.
///
/// # Errors
///
/// Returns [`GroupProtoError::BadName`] if empty or longer than
/// [`MAX_NAME`] bytes.
pub fn validate_name(name: &str) -> Result<(), GroupProtoError> {
    if name.is_empty() || name.len() > MAX_NAME {
        return Err(GroupProtoError::BadName(name.to_string()));
    }
    Ok(())
}

const ACT_DATA: u8 = 1;
const ACT_JOIN: u8 = 2;
const ACT_LEAVE: u8 = 3;
const ACT_DISCONNECT: u8 = 4;

fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

fn get_name(buf: &mut Bytes) -> Result<String, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if len > MAX_NAME || buf.remaining() < len {
        return Err(DecodeError::BadLength {
            declared: len,
            available: buf.remaining(),
        });
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Truncated)
}

/// Encodes a group message into an ordered-multicast payload.
pub fn encode_group_message(msg: &GroupMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u16_le(msg.sender.daemon.as_u16());
    put_name(&mut buf, &msg.sender.name);
    buf.put_u64_le(msg.seq);
    match &msg.action {
        GroupAction::Data { groups, payload } => {
            buf.put_u8(ACT_DATA);
            buf.put_u8(groups.len() as u8);
            for g in groups {
                put_name(&mut buf, g);
            }
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }
        GroupAction::Join { group } => {
            buf.put_u8(ACT_JOIN);
            put_name(&mut buf, group);
        }
        GroupAction::Leave { group } => {
            buf.put_u8(ACT_LEAVE);
            put_name(&mut buf, group);
        }
        GroupAction::Disconnect => buf.put_u8(ACT_DISCONNECT),
    }
    buf.freeze()
}

/// Decodes a group message from an ordered-multicast payload.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode_group_message(buf: &mut Bytes) -> Result<GroupMessage, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let daemon = ParticipantId::new(buf.get_u16_le());
    let name = get_name(buf)?;
    let sender = ClientId { daemon, name };
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let seq = buf.get_u64_le();
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let action = match buf.get_u8() {
        ACT_DATA => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u8() as usize;
            if n == 0 || n > MAX_GROUPS {
                return Err(DecodeError::BadLength {
                    declared: n,
                    available: MAX_GROUPS,
                });
            }
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(get_name(buf)?);
            }
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DecodeError::BadLength {
                    declared: len,
                    available: buf.remaining(),
                });
            }
            GroupAction::Data {
                groups,
                payload: buf.split_to(len),
            }
        }
        ACT_JOIN => GroupAction::Join {
            group: get_name(buf)?,
        },
        ACT_LEAVE => GroupAction::Leave {
            group: get_name(buf)?,
        },
        ACT_DISCONNECT => GroupAction::Disconnect,
        other => return Err(DecodeError::BadKind(other)),
    };
    Ok(GroupMessage {
        sender,
        seq,
        action,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(d: u16, name: &str) -> ClientId {
        ClientId {
            daemon: ParticipantId::new(d),
            name: name.to_string(),
        }
    }

    fn roundtrip(msg: &GroupMessage) -> GroupMessage {
        let mut enc = encode_group_message(msg);
        decode_group_message(&mut enc).unwrap()
    }

    #[test]
    fn data_roundtrip() {
        let msg = GroupMessage {
            sender: client(3, "trader-7"),
            seq: 0,
            action: GroupAction::Data {
                groups: vec!["orders".into(), "audit-log".into()],
                payload: Bytes::from_static(b"BUY 100 XYZ"),
            },
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn join_leave_disconnect_roundtrip() {
        for action in [
            GroupAction::Join { group: "g".into() },
            GroupAction::Leave { group: "g".into() },
            GroupAction::Disconnect,
        ] {
            let msg = GroupMessage {
                sender: client(0, "c"),
                seq: 0,
                action,
            };
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn empty_payload_roundtrip() {
        let msg = GroupMessage {
            sender: client(1, "x"),
            seq: 7,
            action: GroupAction::Data {
                groups: vec!["g".into()],
                payload: Bytes::new(),
            },
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let msg = GroupMessage {
            sender: client(3, "client"),
            seq: 42,
            action: GroupAction::Data {
                groups: vec!["group-a".into()],
                payload: Bytes::from_static(b"xy"),
            },
        };
        let full = encode_group_message(&msg);
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_group_message(&mut b).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_zero_groups() {
        // Hand-craft a data message with zero groups.
        let mut buf = BytesMut::new();
        buf.put_u16_le(0);
        buf.put_u16_le(1);
        buf.put_slice(b"c");
        buf.put_u64_le(0);
        buf.put_u8(ACT_DATA);
        buf.put_u8(0);
        let mut b = buf.freeze();
        assert!(decode_group_message(&mut b).is_err());
    }

    #[test]
    fn rejects_oversized_name() {
        let long = "x".repeat(MAX_NAME + 1);
        assert!(validate_name(&long).is_err());
        assert!(validate_name("").is_err());
        assert!(validate_name("ok-name").is_ok());
    }

    #[test]
    fn client_id_display() {
        assert_eq!(client(2, "abc").to_string(), "abc#P2");
    }

    #[test]
    fn error_display() {
        assert!(!GroupProtoError::BadName("x".into()).to_string().is_empty());
        assert!(!GroupProtoError::BadGroupCount(0).to_string().is_empty());
    }
}
